//! Artifact serialization for System F values and bytecode.
//!
//! Extends the core wire format ([`implicit_core::wire`]) with the
//! elaborated-language types this crate owns: [`FType`]/[`FExpr`]
//! trees, runtime [`Value`] graphs (including closures and their
//! captured [`Env`] spines), and compiled [`CodeParts`] for either
//! ISA.
//!
//! Value graphs share structure aggressively — environment spines are
//! built incrementally, so every closure in the prelude environment
//! captures a prefix of the same spine. The encoder therefore memoizes
//! every `Rc`-shared node (environments, values, value vectors, record
//! field vectors, expression bodies, VM closures) by pointer identity
//! and emits backreferences, and the decoder rebuilds the same
//! sharing. Indices are assigned in postorder on both sides (the
//! encoder registers a node *after* encoding its content, the decoder
//! pushes *after* decoding it), so the two tables stay aligned through
//! arbitrary nesting.
//!
//! Environment spines are encoded iteratively (outermost new node
//! first) rather than by recursing on `next`, so a thousand-binding
//! prelude cannot overflow the stack; by the time a node's binding is
//! encoded, everything outward of it is already memoized, which keeps
//! the recursion depth bounded by value depth, not spine length.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use implicit_core::symbol::Symbol;
use implicit_core::syntax::TyCon;
use implicit_core::wire::{cap, Dec, Enc, WireError};

use crate::compile::{CapSrc, CodeParts, FuncCode, FuncKind, Instr, Isa, MatchArmCode, MatchTable};
use crate::eval::{Binding, Env, EnvNode, Value};
use crate::syntax::{FExpr, FMatchArm, FType};
use crate::vm::VmClosure;

fn err<T>(msg: String) -> Result<T, WireError> {
    Err(WireError(msg))
}

/// Encoder context for System F data: wraps a core [`Enc`] with the
/// pointer-memo tables value graphs need.
pub struct SfEnc<'a> {
    /// The underlying byte encoder (shared symbol/type memo).
    pub e: &'a mut Enc,
    envs: HashMap<usize, u32>,
    vals: HashMap<usize, u32>,
    valvecs: HashMap<usize, u32>,
    recfields: HashMap<usize, u32>,
    fexprs: HashMap<usize, u32>,
    vmclosures: HashMap<usize, u32>,
}

impl<'a> SfEnc<'a> {
    /// Wraps `e` with fresh memo tables.
    pub fn new(e: &'a mut Enc) -> SfEnc<'a> {
        SfEnc {
            e,
            envs: HashMap::new(),
            vals: HashMap::new(),
            valvecs: HashMap::new(),
            recfields: HashMap::new(),
            fexprs: HashMap::new(),
            vmclosures: HashMap::new(),
        }
    }

    /// Writes an elaborated type.
    pub fn ftype(&mut self, t: &FType) {
        match t {
            FType::Var(x) => {
                self.e.u8(0);
                self.e.sym(*x);
            }
            FType::Int => self.e.u8(1),
            FType::Bool => self.e.u8(2),
            FType::Str => self.e.u8(3),
            FType::Unit => self.e.u8(4),
            FType::Arrow(a, b) => {
                self.e.u8(5);
                self.ftype(a);
                self.ftype(b);
            }
            FType::Prod(a, b) => {
                self.e.u8(6);
                self.ftype(a);
                self.ftype(b);
            }
            FType::List(t) => {
                self.e.u8(7);
                self.ftype(t);
            }
            FType::Con(name, args) => {
                self.e.u8(8);
                self.e.sym(*name);
                self.e.len(args.len());
                for a in args {
                    self.ftype(a);
                }
            }
            FType::VarApp(f, args) => {
                self.e.u8(9);
                self.e.sym(*f);
                self.e.len(args.len());
                for a in args {
                    self.ftype(a);
                }
            }
            FType::Ctor(TyCon::List) => self.e.u8(10),
            FType::Ctor(TyCon::Named(n)) => {
                self.e.u8(11);
                self.e.sym(*n);
            }
            FType::Forall(a, body) => {
                self.e.u8(12);
                self.e.sym(*a);
                self.ftype(body);
            }
        }
    }

    /// Writes a shared expression body, memoized by pointer.
    pub fn fexpr_rc(&mut self, r: &Rc<FExpr>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.fexprs.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.fexpr(r);
        let ix = u32::try_from(self.fexprs.len()).expect("fexpr memo overflow");
        self.fexprs.insert(key, ix);
    }

    /// Writes an elaborated expression.
    #[allow(clippy::too_many_lines)]
    pub fn fexpr(&mut self, x: &FExpr) {
        match x {
            FExpr::Int(n) => {
                self.e.u8(0);
                self.e.i64(*n);
            }
            FExpr::Bool(b) => {
                self.e.u8(1);
                self.e.bool(*b);
            }
            FExpr::Str(s) => {
                self.e.u8(2);
                self.e.str(s);
            }
            FExpr::Unit => self.e.u8(3),
            FExpr::Var(v) => {
                self.e.u8(4);
                self.e.sym(*v);
            }
            FExpr::Lam(p, t, b) => {
                self.e.u8(5);
                self.e.sym(*p);
                self.ftype(t);
                self.fexpr_rc(b);
            }
            FExpr::App(f, a) => {
                self.e.u8(6);
                self.fexpr_rc(f);
                self.fexpr_rc(a);
            }
            FExpr::TyAbs(a, b) => {
                self.e.u8(7);
                self.e.sym(*a);
                self.fexpr_rc(b);
            }
            FExpr::TyApp(f, t) => {
                self.e.u8(8);
                self.fexpr_rc(f);
                self.ftype(t);
            }
            FExpr::If(c, t, f) => {
                self.e.u8(9);
                self.fexpr_rc(c);
                self.fexpr_rc(t);
                self.fexpr_rc(f);
            }
            FExpr::BinOp(op, a, b) => {
                self.e.u8(10);
                self.e.binop(*op);
                self.fexpr_rc(a);
                self.fexpr_rc(b);
            }
            FExpr::UnOp(op, a) => {
                self.e.u8(11);
                self.e.unop(*op);
                self.fexpr_rc(a);
            }
            FExpr::Pair(a, b) => {
                self.e.u8(12);
                self.fexpr_rc(a);
                self.fexpr_rc(b);
            }
            FExpr::Fst(p) => {
                self.e.u8(13);
                self.fexpr_rc(p);
            }
            FExpr::Snd(p) => {
                self.e.u8(14);
                self.fexpr_rc(p);
            }
            FExpr::Nil(t) => {
                self.e.u8(15);
                self.ftype(t);
            }
            FExpr::Cons(h, t) => {
                self.e.u8(16);
                self.fexpr_rc(h);
                self.fexpr_rc(t);
            }
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => {
                self.e.u8(17);
                self.fexpr_rc(scrut);
                self.fexpr_rc(nil);
                self.e.sym(*head);
                self.e.sym(*tail);
                self.fexpr_rc(cons);
            }
            FExpr::Fix(x, t, b) => {
                self.e.u8(18);
                self.e.sym(*x);
                self.ftype(t);
                self.fexpr_rc(b);
            }
            FExpr::Make(name, tys, fields) => {
                self.e.u8(19);
                self.e.sym(*name);
                self.e.len(tys.len());
                for t in tys {
                    self.ftype(t);
                }
                self.e.len(fields.len());
                for (f, v) in fields {
                    self.e.sym(*f);
                    self.fexpr(v);
                }
            }
            FExpr::Proj(r, f) => {
                self.e.u8(20);
                self.fexpr_rc(r);
                self.e.sym(*f);
            }
            FExpr::Inject(ctor, tys, args) => {
                self.e.u8(21);
                self.e.sym(*ctor);
                self.e.len(tys.len());
                for t in tys {
                    self.ftype(t);
                }
                self.e.len(args.len());
                for a in args {
                    self.fexpr(a);
                }
            }
            FExpr::Match(scrut, arms) => {
                self.e.u8(22);
                self.fexpr_rc(scrut);
                self.e.len(arms.len());
                for arm in arms {
                    self.e.sym(arm.ctor);
                    self.e.len(arm.binders.len());
                    for b in &arm.binders {
                        self.e.sym(*b);
                    }
                    self.fexpr(&arm.body);
                }
            }
        }
    }

    /// Writes a runtime value.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Int(n) => {
                self.e.u8(0);
                self.e.i64(*n);
            }
            Value::Bool(b) => {
                self.e.u8(1);
                self.e.bool(*b);
            }
            Value::Str(s) => {
                self.e.u8(2);
                self.e.str(s);
            }
            Value::Unit => self.e.u8(3),
            Value::Pair(a, b) => {
                self.e.u8(4);
                self.val_rc(a);
                self.val_rc(b);
            }
            Value::List(xs) => {
                self.e.u8(5);
                self.valvec(xs);
            }
            Value::Closure { param, body, env } => {
                self.e.u8(6);
                self.e.sym(*param);
                self.fexpr_rc(body);
                self.env(env);
            }
            Value::TyClosure { body, env } => {
                self.e.u8(7);
                self.fexpr_rc(body);
                self.env(env);
            }
            Value::Record { name, fields } => {
                self.e.u8(8);
                self.e.sym(*name);
                self.recfields(fields);
            }
            Value::Data { ctor, fields } => {
                self.e.u8(9);
                self.e.sym(*ctor);
                self.valvec(fields);
            }
            Value::CompiledClosure(c) => {
                self.e.u8(10);
                self.vmclosure(c);
            }
            Value::CompiledTyClosure(c) => {
                self.e.u8(11);
                self.vmclosure(c);
            }
            Value::CompiledRec(c) => {
                self.e.u8(12);
                self.vmclosure(c);
            }
        }
    }

    /// Writes a shared value, memoized by pointer.
    pub fn val_rc(&mut self, r: &Rc<Value>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.vals.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.value(r);
        let ix = u32::try_from(self.vals.len()).expect("value memo overflow");
        self.vals.insert(key, ix);
    }

    fn valvec(&mut self, r: &Rc<Vec<Value>>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.valvecs.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.len(r.len());
        for v in r.iter() {
            self.value(v);
        }
        let ix = u32::try_from(self.valvecs.len()).expect("valvec memo overflow");
        self.valvecs.insert(key, ix);
    }

    fn recfields(&mut self, r: &Rc<Vec<(Symbol, Value)>>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.recfields.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.len(r.len());
        for (f, v) in r.iter() {
            self.e.sym(*f);
            self.value(v);
        }
        let ix = u32::try_from(self.recfields.len()).expect("recfields memo overflow");
        self.recfields.insert(key, ix);
    }

    fn vmclosure(&mut self, r: &Rc<VmClosure>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.vmclosures.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.u32(r.func);
        self.e.len(r.captures.len());
        for v in &r.captures {
            self.value(v);
        }
        let ix = u32::try_from(self.vmclosures.len()).expect("vmclosure memo overflow");
        self.vmclosures.insert(key, ix);
    }

    /// Writes an environment spine.
    ///
    /// Layout: `u32` count of nodes not yet memoized, a tail (0 =
    /// empty environment, 1 + index = backreference to a shared
    /// node), then the new nodes outermost-first.
    pub fn env(&mut self, env: &Env) {
        let mut fresh: Vec<Rc<EnvNode>> = Vec::new();
        let mut tail: Option<u32> = None;
        for n in env.nodes() {
            let key = Rc::as_ptr(n) as usize;
            if let Some(&ix) = self.envs.get(&key) {
                tail = Some(ix);
                break;
            }
            fresh.push(n.clone());
        }
        self.e.len(fresh.len());
        match tail {
            None => self.e.u8(0),
            Some(ix) => {
                self.e.u8(1);
                self.e.u32(ix);
            }
        }
        for n in fresh.iter().rev() {
            self.e.sym(n.name);
            match &n.value {
                Binding::Done(v) => {
                    self.e.u8(0);
                    self.value(v);
                }
                Binding::Rec { body, env } => {
                    self.e.u8(1);
                    self.fexpr_rc(body);
                    self.env(env);
                }
            }
            let key = Rc::as_ptr(n) as usize;
            let ix = u32::try_from(self.envs.len()).expect("env memo overflow");
            self.envs.insert(key, ix);
        }
    }

    /// Writes compiled code parts for rehydrating a [`crate::compile::Compiler`].
    pub fn code_parts(&mut self, p: &CodeParts) {
        self.e.u8(match p.isa {
            Isa::Register => 0,
            Isa::Stack => 1,
        });
        self.e.bool(p.fusion);
        self.e.len(p.globals.len());
        for g in &p.globals {
            self.e.sym(*g);
        }
        self.e.len(p.consts.len());
        for v in &p.consts {
            self.value(v);
        }
        self.e.len(p.field_lists.len());
        for fl in &p.field_lists {
            self.e.len(fl.len());
            for f in fl.iter() {
                self.e.sym(*f);
            }
        }
        self.e.len(p.match_tables.len());
        for mt in &p.match_tables {
            self.e.len(mt.arms.len());
            for arm in &mt.arms {
                self.e.sym(arm.ctor);
                self.e.u16(arm.binder_base);
                self.e.u16(arm.binders);
                self.e.u32(arm.target);
            }
        }
        self.e.len(p.funcs.len());
        for f in &p.funcs {
            self.func_code(f);
        }
    }

    fn func_code(&mut self, f: &FuncCode) {
        self.e.u8(match f.kind {
            FuncKind::Lambda => 0,
            FuncKind::TyAbs => 1,
            FuncKind::FixBody => 2,
            FuncKind::Main => 3,
        });
        self.e.u16(f.nslots);
        self.e.len(f.captures.len());
        for c in &f.captures {
            match c {
                CapSrc::Local(s) => {
                    self.e.u8(0);
                    self.e.u16(*s);
                }
                CapSrc::Capture(s) => {
                    self.e.u8(1);
                    self.e.u16(*s);
                }
                CapSrc::Rec => self.e.u8(2),
            }
        }
        self.e.len(f.code.len());
        for i in &f.code {
            self.instr(i);
        }
    }

    /// Writes one instruction.
    #[allow(clippy::too_many_lines)]
    pub fn instr(&mut self, i: &Instr) {
        let e = &mut *self.e;
        match *i {
            Instr::Const(k) => {
                e.u8(0);
                e.u32(k);
            }
            Instr::Local(s) => {
                e.u8(1);
                e.u16(s);
            }
            Instr::Capture(s) => {
                e.u8(2);
                e.u16(s);
            }
            Instr::Global(g) => {
                e.u8(3);
                e.u32(g);
            }
            Instr::Rec => e.u8(4),
            Instr::Closure(f) => {
                e.u8(5);
                e.u32(f);
            }
            Instr::TyClosure(f) => {
                e.u8(6);
                e.u32(f);
            }
            Instr::EnterFix(f) => {
                e.u8(7);
                e.u32(f);
            }
            Instr::Call => e.u8(8),
            Instr::TailCall => e.u8(9),
            Instr::Force => e.u8(10),
            Instr::Ret => e.u8(11),
            Instr::Jump(t) => {
                e.u8(12);
                e.u32(t);
            }
            Instr::JumpIfFalse(t) => {
                e.u8(13);
                e.u32(t);
            }
            Instr::Bin(op) => {
                e.u8(14);
                e.binop(op);
            }
            Instr::Un(op) => {
                e.u8(15);
                e.unop(op);
            }
            Instr::MakePair => e.u8(16),
            Instr::Fst => e.u8(17),
            Instr::Snd => e.u8(18),
            Instr::PushNil => e.u8(19),
            Instr::ConsList => e.u8(20),
            Instr::CaseList {
                head,
                tail,
                nil_target,
            } => {
                e.u8(21);
                e.u16(head);
                e.u16(tail);
                e.u32(nil_target);
            }
            Instr::MakeRecord { name, fields } => {
                e.u8(22);
                e.sym(name);
                e.u32(fields);
            }
            Instr::Project(f) => {
                e.u8(23);
                e.sym(f);
            }
            Instr::Inject { ctor, argc } => {
                e.u8(24);
                e.sym(ctor);
                e.u16(argc);
            }
            Instr::Match(t) => {
                e.u8(25);
                e.u32(t);
            }
            Instr::LocalConst { slot, konst } => {
                e.u8(26);
                e.u16(slot);
                e.u32(konst);
            }
            Instr::LocalLocal { a, b } => {
                e.u8(27);
                e.u16(a);
                e.u16(b);
            }
            Instr::ConstBin { konst, op } => {
                e.u8(28);
                e.u32(konst);
                e.binop(op);
            }
            Instr::LocalBin { slot, op } => {
                e.u8(29);
                e.u16(slot);
                e.binop(op);
            }
            Instr::BinJumpIfFalse { op, target } => {
                e.u8(30);
                e.binop(op);
                e.u32(target);
            }
            Instr::ConstRet { konst } => {
                e.u8(31);
                e.u32(konst);
            }
            Instr::LocalRet { slot } => {
                e.u8(32);
                e.u16(slot);
            }
            Instr::LocalConstBin { slot, konst, op } => {
                e.u8(33);
                e.u16(slot);
                e.u32(konst);
                e.binop(op);
            }
            Instr::LocalLocalBin { a, b, op } => {
                e.u8(34);
                e.u16(a);
                e.u16(b);
                e.binop(op);
            }
            Instr::LocalConstBinJump {
                slot,
                konst,
                op,
                target,
            } => {
                e.u8(35);
                e.u16(slot);
                e.u32(konst);
                e.binop(op);
                e.u32(target);
            }
            Instr::LocalConstBinTail { slot, konst, op } => {
                e.u8(36);
                e.u16(slot);
                e.u32(konst);
                e.binop(op);
            }
            Instr::RConst { dst, konst } => {
                e.u8(37);
                e.u16(dst);
                e.u32(konst);
            }
            Instr::RMove { dst, src } => {
                e.u8(38);
                e.u16(dst);
                e.u16(src);
            }
            Instr::RCapture { dst, idx } => {
                e.u8(39);
                e.u16(dst);
                e.u16(idx);
            }
            Instr::RGlobal { dst, idx } => {
                e.u8(40);
                e.u16(dst);
                e.u32(idx);
            }
            Instr::RRec { dst } => {
                e.u8(41);
                e.u16(dst);
            }
            Instr::RClosure { dst, func } => {
                e.u8(42);
                e.u16(dst);
                e.u32(func);
            }
            Instr::RTyClosure { dst, func } => {
                e.u8(43);
                e.u16(dst);
                e.u32(func);
            }
            Instr::REnterFix { dst, func } => {
                e.u8(44);
                e.u16(dst);
                e.u32(func);
            }
            Instr::RCall { dst, f, arg } => {
                e.u8(45);
                e.u16(dst);
                e.u16(f);
                e.u16(arg);
            }
            Instr::RTailCall { f, arg } => {
                e.u8(46);
                e.u16(f);
                e.u16(arg);
            }
            Instr::RForce { dst, src } => {
                e.u8(47);
                e.u16(dst);
                e.u16(src);
            }
            Instr::RRet { src } => {
                e.u8(48);
                e.u16(src);
            }
            Instr::RJumpIfFalse { cond, target } => {
                e.u8(49);
                e.u16(cond);
                e.u32(target);
            }
            Instr::RBin { op, dst, a, b } => {
                e.u8(50);
                e.binop(op);
                e.u16(dst);
                e.u16(a);
                e.u16(b);
            }
            Instr::RUn { op, dst, src } => {
                e.u8(51);
                e.unop(op);
                e.u16(dst);
                e.u16(src);
            }
            Instr::RPair { dst, a, b } => {
                e.u8(52);
                e.u16(dst);
                e.u16(a);
                e.u16(b);
            }
            Instr::RFst { dst, src } => {
                e.u8(53);
                e.u16(dst);
                e.u16(src);
            }
            Instr::RSnd { dst, src } => {
                e.u8(54);
                e.u16(dst);
                e.u16(src);
            }
            Instr::RCons { dst, head, tail } => {
                e.u8(55);
                e.u16(dst);
                e.u16(head);
                e.u16(tail);
            }
            Instr::RCaseList {
                src,
                head,
                tail,
                nil_target,
            } => {
                e.u8(56);
                e.u16(src);
                e.u16(head);
                e.u16(tail);
                e.u32(nil_target);
            }
            Instr::RMakeRecord {
                dst,
                base,
                name,
                fields,
            } => {
                e.u8(57);
                e.u16(dst);
                e.u16(base);
                e.sym(name);
                e.u32(fields);
            }
            Instr::RProject { dst, src, field } => {
                e.u8(58);
                e.u16(dst);
                e.u16(src);
                e.sym(field);
            }
            Instr::RInject {
                dst,
                base,
                ctor,
                argc,
            } => {
                e.u8(59);
                e.u16(dst);
                e.u16(base);
                e.sym(ctor);
                e.u16(argc);
            }
            Instr::RMatch { src, tbl } => {
                e.u8(60);
                e.u16(src);
                e.u32(tbl);
            }
            Instr::RBinJump { op, a, b, target } => {
                e.u8(61);
                e.binop(op);
                e.u16(a);
                e.u16(b);
                e.u32(target);
            }
            Instr::RBinRet { op, a, b } => {
                e.u8(62);
                e.binop(op);
                e.u16(a);
                e.u16(b);
            }
            Instr::RBinTail { op, f, a, b } => {
                e.u8(63);
                e.binop(op);
                e.u16(f);
                e.u16(a);
                e.u16(b);
            }
            Instr::RCapBinTail { op, idx, a, b } => {
                e.u8(64);
                e.binop(op);
                e.u16(idx);
                e.u16(a);
                e.u16(b);
            }
        }
    }
}

/// Decoder context mirroring [`SfEnc`].
pub struct SfDec<'a, 'b> {
    /// The underlying byte decoder.
    pub d: &'b mut Dec<'a>,
    /// When set, decoded VM-closure function indices must be below
    /// this bound (set it after decoding [`CodeParts`] so a corrupted
    /// artifact cannot smuggle an out-of-range code pointer).
    pub func_limit: Option<u32>,
    envs: Vec<Rc<EnvNode>>,
    vals: Vec<Rc<Value>>,
    valvecs: Vec<Rc<Vec<Value>>>,
    recfields: Vec<Rc<Vec<(Symbol, Value)>>>,
    fexprs: Vec<Rc<FExpr>>,
    vmclosures: Vec<Rc<VmClosure>>,
}

impl<'a, 'b> SfDec<'a, 'b> {
    /// Wraps `d` with fresh memo tables.
    pub fn new(d: &'b mut Dec<'a>) -> SfDec<'a, 'b> {
        SfDec {
            d,
            func_limit: None,
            envs: Vec::new(),
            vals: Vec::new(),
            valvecs: Vec::new(),
            recfields: Vec::new(),
            fexprs: Vec::new(),
            vmclosures: Vec::new(),
        }
    }

    /// Reads an elaborated type.
    pub fn ftype(&mut self) -> Result<FType, WireError> {
        Ok(match self.d.u8()? {
            0 => FType::Var(self.d.sym()?),
            1 => FType::Int,
            2 => FType::Bool,
            3 => FType::Str,
            4 => FType::Unit,
            5 => {
                let a = self.ftype()?;
                let b = self.ftype()?;
                FType::Arrow(Rc::new(a), Rc::new(b))
            }
            6 => {
                let a = self.ftype()?;
                let b = self.ftype()?;
                FType::Prod(Rc::new(a), Rc::new(b))
            }
            7 => FType::List(Rc::new(self.ftype()?)),
            8 => {
                let name = self.d.sym()?;
                let n = self.d.len()?;
                let mut args = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    args.push(self.ftype()?);
                }
                FType::Con(name, args)
            }
            9 => {
                let f = self.d.sym()?;
                let n = self.d.len()?;
                let mut args = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    args.push(self.ftype()?);
                }
                FType::VarApp(f, args)
            }
            10 => FType::Ctor(TyCon::List),
            11 => FType::Ctor(TyCon::Named(self.d.sym()?)),
            12 => {
                let a = self.d.sym()?;
                FType::Forall(a, Rc::new(self.ftype()?))
            }
            t => return err(format!("bad ftype tag {t}")),
        })
    }

    /// Reads a shared expression body.
    pub fn fexpr_rc(&mut self) -> Result<Rc<FExpr>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.fexprs
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("fexpr backref {ix} out of range")))
            }
            1 => {
                let x = Rc::new(self.fexpr()?);
                self.fexprs.push(x.clone());
                Ok(x)
            }
            t => err(format!("bad fexpr memo tag {t}")),
        }
    }

    /// Reads an elaborated expression.
    #[allow(clippy::too_many_lines)]
    pub fn fexpr(&mut self) -> Result<FExpr, WireError> {
        Ok(match self.d.u8()? {
            0 => FExpr::Int(self.d.i64()?),
            1 => FExpr::Bool(self.d.bool()?),
            2 => FExpr::Str(self.d.str()?),
            3 => FExpr::Unit,
            4 => FExpr::Var(self.d.sym()?),
            5 => {
                let p = self.d.sym()?;
                let t = self.ftype()?;
                FExpr::Lam(p, t, self.fexpr_rc()?)
            }
            6 => {
                let f = self.fexpr_rc()?;
                FExpr::App(f, self.fexpr_rc()?)
            }
            7 => {
                let a = self.d.sym()?;
                FExpr::TyAbs(a, self.fexpr_rc()?)
            }
            8 => {
                let f = self.fexpr_rc()?;
                FExpr::TyApp(f, self.ftype()?)
            }
            9 => {
                let c = self.fexpr_rc()?;
                let t = self.fexpr_rc()?;
                FExpr::If(c, t, self.fexpr_rc()?)
            }
            10 => {
                let op = self.d.binop()?;
                let a = self.fexpr_rc()?;
                FExpr::BinOp(op, a, self.fexpr_rc()?)
            }
            11 => {
                let op = self.d.unop()?;
                FExpr::UnOp(op, self.fexpr_rc()?)
            }
            12 => {
                let a = self.fexpr_rc()?;
                FExpr::Pair(a, self.fexpr_rc()?)
            }
            13 => FExpr::Fst(self.fexpr_rc()?),
            14 => FExpr::Snd(self.fexpr_rc()?),
            15 => FExpr::Nil(self.ftype()?),
            16 => {
                let h = self.fexpr_rc()?;
                FExpr::Cons(h, self.fexpr_rc()?)
            }
            17 => {
                let scrut = self.fexpr_rc()?;
                let nil = self.fexpr_rc()?;
                let head = self.d.sym()?;
                let tail = self.d.sym()?;
                let cons = self.fexpr_rc()?;
                FExpr::ListCase {
                    scrut,
                    nil,
                    head,
                    tail,
                    cons,
                }
            }
            18 => {
                let x = self.d.sym()?;
                let t = self.ftype()?;
                FExpr::Fix(x, t, self.fexpr_rc()?)
            }
            19 => {
                let name = self.d.sym()?;
                let nt = self.d.len()?;
                let mut tys = Vec::with_capacity(cap(nt));
                for _ in 0..nt {
                    tys.push(self.ftype()?);
                }
                let nf = self.d.len()?;
                let mut fields = Vec::with_capacity(cap(nf));
                for _ in 0..nf {
                    let f = self.d.sym()?;
                    fields.push((f, self.fexpr()?));
                }
                FExpr::Make(name, tys, fields)
            }
            20 => {
                let r = self.fexpr_rc()?;
                FExpr::Proj(r, self.d.sym()?)
            }
            21 => {
                let ctor = self.d.sym()?;
                let nt = self.d.len()?;
                let mut tys = Vec::with_capacity(cap(nt));
                for _ in 0..nt {
                    tys.push(self.ftype()?);
                }
                let na = self.d.len()?;
                let mut args = Vec::with_capacity(cap(na));
                for _ in 0..na {
                    args.push(self.fexpr()?);
                }
                FExpr::Inject(ctor, tys, args)
            }
            22 => {
                let scrut = self.fexpr_rc()?;
                let n = self.d.len()?;
                let mut arms = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    let ctor = self.d.sym()?;
                    let nb = self.d.len()?;
                    let mut binders = Vec::with_capacity(cap(nb));
                    for _ in 0..nb {
                        binders.push(self.d.sym()?);
                    }
                    let body = self.fexpr()?;
                    arms.push(FMatchArm {
                        ctor,
                        binders,
                        body,
                    });
                }
                FExpr::Match(scrut, arms)
            }
            t => return err(format!("bad fexpr tag {t}")),
        })
    }

    /// Reads a runtime value.
    pub fn value(&mut self) -> Result<Value, WireError> {
        Ok(match self.d.u8()? {
            0 => Value::Int(self.d.i64()?),
            1 => Value::Bool(self.d.bool()?),
            2 => Value::Str(Rc::from(self.d.str()?.as_str())),
            3 => Value::Unit,
            4 => {
                let a = self.val_rc()?;
                Value::Pair(a, self.val_rc()?)
            }
            5 => Value::List(self.valvec()?),
            6 => {
                let param = self.d.sym()?;
                let body = self.fexpr_rc()?;
                let env = self.env()?;
                Value::Closure { param, body, env }
            }
            7 => {
                let body = self.fexpr_rc()?;
                let env = self.env()?;
                Value::TyClosure { body, env }
            }
            8 => {
                let name = self.d.sym()?;
                let fields = self.recfields()?;
                Value::Record { name, fields }
            }
            9 => {
                let ctor = self.d.sym()?;
                let fields = self.valvec()?;
                Value::Data { ctor, fields }
            }
            10 => Value::CompiledClosure(self.vmclosure()?),
            11 => Value::CompiledTyClosure(self.vmclosure()?),
            12 => Value::CompiledRec(self.vmclosure()?),
            t => return err(format!("bad value tag {t}")),
        })
    }

    /// Reads a shared value.
    pub fn val_rc(&mut self) -> Result<Rc<Value>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.vals
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("value backref {ix} out of range")))
            }
            1 => {
                let v = Rc::new(self.value()?);
                self.vals.push(v.clone());
                Ok(v)
            }
            t => err(format!("bad value memo tag {t}")),
        }
    }

    fn valvec(&mut self) -> Result<Rc<Vec<Value>>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.valvecs
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("valvec backref {ix} out of range")))
            }
            1 => {
                let n = self.d.len()?;
                let mut xs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    xs.push(self.value()?);
                }
                let rc = Rc::new(xs);
                self.valvecs.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad valvec memo tag {t}")),
        }
    }

    fn recfields(&mut self) -> Result<Rc<Vec<(Symbol, Value)>>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.recfields
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("recfields backref {ix} out of range")))
            }
            1 => {
                let n = self.d.len()?;
                let mut xs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let f = self.d.sym()?;
                    xs.push((f, self.value()?));
                }
                let rc = Rc::new(xs);
                self.recfields.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad recfields memo tag {t}")),
        }
    }

    fn vmclosure(&mut self) -> Result<Rc<VmClosure>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.vmclosures
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("vmclosure backref {ix} out of range")))
            }
            1 => {
                let func = self.d.u32()?;
                if let Some(limit) = self.func_limit {
                    if func >= limit {
                        return err(format!("vm closure func {func} out of range (< {limit})"));
                    }
                }
                let n = self.d.len()?;
                let mut captures = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    captures.push(self.value()?);
                }
                let rc = Rc::new(VmClosure { func, captures });
                self.vmclosures.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad vmclosure memo tag {t}")),
        }
    }

    /// Reads an environment spine.
    pub fn env(&mut self) -> Result<Env, WireError> {
        let n = self.d.len()?;
        let mut env = match self.d.u8()? {
            0 => Env::new(),
            1 => {
                let ix = self.d.u32()? as usize;
                let node = self
                    .envs
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("env backref {ix} out of range")))?;
                Env { node: Some(node) }
            }
            t => return err(format!("bad env tail tag {t}")),
        };
        for _ in 0..n {
            let name = self.d.sym()?;
            let value = match self.d.u8()? {
                0 => Binding::Done(self.value()?),
                1 => {
                    let body = self.fexpr_rc()?;
                    let renv = self.env()?;
                    Binding::Rec { body, env: renv }
                }
                t => return err(format!("bad binding tag {t}")),
            };
            let node = Rc::new(EnvNode {
                name,
                value,
                next: env,
            });
            self.envs.push(node.clone());
            env = Env { node: Some(node) };
        }
        Ok(env)
    }

    /// Reads compiled code parts.
    pub fn code_parts(&mut self) -> Result<CodeParts, WireError> {
        let isa = match self.d.u8()? {
            0 => Isa::Register,
            1 => Isa::Stack,
            t => return err(format!("bad isa tag {t}")),
        };
        let fusion = self.d.bool()?;
        let ng = self.d.len()?;
        let mut globals = Vec::with_capacity(ng.min(1 << 16));
        for _ in 0..ng {
            globals.push(self.d.sym()?);
        }
        let nc = self.d.len()?;
        let mut consts = Vec::with_capacity(nc.min(1 << 16));
        for _ in 0..nc {
            consts.push(self.value()?);
        }
        let nfl = self.d.len()?;
        let mut field_lists = Vec::with_capacity(nfl.min(1 << 16));
        for _ in 0..nfl {
            let n = self.d.len()?;
            let mut fl = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                fl.push(self.d.sym()?);
            }
            field_lists.push(Rc::from(fl.into_boxed_slice()));
        }
        let nmt = self.d.len()?;
        let mut match_tables = Vec::with_capacity(nmt.min(1 << 16));
        for _ in 0..nmt {
            let na = self.d.len()?;
            let mut arms = Vec::with_capacity(na.min(1 << 16));
            for _ in 0..na {
                let ctor = self.d.sym()?;
                let binder_base = self.d.u16()?;
                let binders = self.d.u16()?;
                let target = self.d.u32()?;
                arms.push(MatchArmCode {
                    ctor,
                    binder_base,
                    binders,
                    target,
                });
            }
            match_tables.push(MatchTable {
                arms,
                // Inline caches are process-local: always reset.
                ic: Cell::new(u32::MAX),
            });
        }
        let nf = self.d.len()?;
        let mut funcs = Vec::with_capacity(nf.min(1 << 16));
        for _ in 0..nf {
            funcs.push(self.func_code()?);
        }
        // VM closures decoded after this point must reference one of
        // these functions.
        let limit = u32::try_from(funcs.len()).unwrap_or(u32::MAX);
        self.func_limit = Some(limit);
        // The constant pool decodes before the function table, so its
        // closures bypassed the inline bounds check in `vmclosure`;
        // the memo table holds every closure decoded so far (however
        // deeply nested), so sweep it now that the limit is known.
        for c in &self.vmclosures {
            if c.func >= limit {
                return err(format!(
                    "const-pool vm closure func {} out of range (< {limit})",
                    c.func
                ));
            }
        }
        Ok(CodeParts {
            isa,
            funcs,
            consts,
            field_lists,
            match_tables,
            globals,
            fusion,
        })
    }

    fn func_code(&mut self) -> Result<FuncCode, WireError> {
        let kind = match self.d.u8()? {
            0 => FuncKind::Lambda,
            1 => FuncKind::TyAbs,
            2 => FuncKind::FixBody,
            3 => FuncKind::Main,
            t => return err(format!("bad funckind tag {t}")),
        };
        let nslots = self.d.u16()?;
        let ncap = self.d.len()?;
        let mut captures = Vec::with_capacity(ncap.min(1 << 16));
        for _ in 0..ncap {
            captures.push(match self.d.u8()? {
                0 => CapSrc::Local(self.d.u16()?),
                1 => CapSrc::Capture(self.d.u16()?),
                2 => CapSrc::Rec,
                t => return err(format!("bad capsrc tag {t}")),
            });
        }
        let ni = self.d.len()?;
        let mut code = Vec::with_capacity(ni.min(1 << 16));
        for _ in 0..ni {
            code.push(self.instr()?);
        }
        Ok(FuncCode {
            kind,
            nslots,
            captures,
            code,
        })
    }

    /// Reads one instruction.
    #[allow(clippy::too_many_lines)]
    pub fn instr(&mut self) -> Result<Instr, WireError> {
        let d = &mut *self.d;
        Ok(match d.u8()? {
            0 => Instr::Const(d.u32()?),
            1 => Instr::Local(d.u16()?),
            2 => Instr::Capture(d.u16()?),
            3 => Instr::Global(d.u32()?),
            4 => Instr::Rec,
            5 => Instr::Closure(d.u32()?),
            6 => Instr::TyClosure(d.u32()?),
            7 => Instr::EnterFix(d.u32()?),
            8 => Instr::Call,
            9 => Instr::TailCall,
            10 => Instr::Force,
            11 => Instr::Ret,
            12 => Instr::Jump(d.u32()?),
            13 => Instr::JumpIfFalse(d.u32()?),
            14 => Instr::Bin(d.binop()?),
            15 => Instr::Un(d.unop()?),
            16 => Instr::MakePair,
            17 => Instr::Fst,
            18 => Instr::Snd,
            19 => Instr::PushNil,
            20 => Instr::ConsList,
            21 => {
                let head = d.u16()?;
                let tail = d.u16()?;
                let nil_target = d.u32()?;
                Instr::CaseList {
                    head,
                    tail,
                    nil_target,
                }
            }
            22 => {
                let name = d.sym()?;
                let fields = d.u32()?;
                Instr::MakeRecord { name, fields }
            }
            23 => Instr::Project(d.sym()?),
            24 => {
                let ctor = d.sym()?;
                let argc = d.u16()?;
                Instr::Inject { ctor, argc }
            }
            25 => Instr::Match(d.u32()?),
            26 => {
                let slot = d.u16()?;
                let konst = d.u32()?;
                Instr::LocalConst { slot, konst }
            }
            27 => {
                let a = d.u16()?;
                let b = d.u16()?;
                Instr::LocalLocal { a, b }
            }
            28 => {
                let konst = d.u32()?;
                let op = d.binop()?;
                Instr::ConstBin { konst, op }
            }
            29 => {
                let slot = d.u16()?;
                let op = d.binop()?;
                Instr::LocalBin { slot, op }
            }
            30 => {
                let op = d.binop()?;
                let target = d.u32()?;
                Instr::BinJumpIfFalse { op, target }
            }
            31 => Instr::ConstRet { konst: d.u32()? },
            32 => Instr::LocalRet { slot: d.u16()? },
            33 => {
                let slot = d.u16()?;
                let konst = d.u32()?;
                let op = d.binop()?;
                Instr::LocalConstBin { slot, konst, op }
            }
            34 => {
                let a = d.u16()?;
                let b = d.u16()?;
                let op = d.binop()?;
                Instr::LocalLocalBin { a, b, op }
            }
            35 => {
                let slot = d.u16()?;
                let konst = d.u32()?;
                let op = d.binop()?;
                let target = d.u32()?;
                Instr::LocalConstBinJump {
                    slot,
                    konst,
                    op,
                    target,
                }
            }
            36 => {
                let slot = d.u16()?;
                let konst = d.u32()?;
                let op = d.binop()?;
                Instr::LocalConstBinTail { slot, konst, op }
            }
            37 => {
                let dst = d.u16()?;
                let konst = d.u32()?;
                Instr::RConst { dst, konst }
            }
            38 => {
                let dst = d.u16()?;
                let src = d.u16()?;
                Instr::RMove { dst, src }
            }
            39 => {
                let dst = d.u16()?;
                let idx = d.u16()?;
                Instr::RCapture { dst, idx }
            }
            40 => {
                let dst = d.u16()?;
                let idx = d.u32()?;
                Instr::RGlobal { dst, idx }
            }
            41 => Instr::RRec { dst: d.u16()? },
            42 => {
                let dst = d.u16()?;
                let func = d.u32()?;
                Instr::RClosure { dst, func }
            }
            43 => {
                let dst = d.u16()?;
                let func = d.u32()?;
                Instr::RTyClosure { dst, func }
            }
            44 => {
                let dst = d.u16()?;
                let func = d.u32()?;
                Instr::REnterFix { dst, func }
            }
            45 => {
                let dst = d.u16()?;
                let f = d.u16()?;
                let arg = d.u16()?;
                Instr::RCall { dst, f, arg }
            }
            46 => {
                let f = d.u16()?;
                let arg = d.u16()?;
                Instr::RTailCall { f, arg }
            }
            47 => {
                let dst = d.u16()?;
                let src = d.u16()?;
                Instr::RForce { dst, src }
            }
            48 => Instr::RRet { src: d.u16()? },
            49 => {
                let cond = d.u16()?;
                let target = d.u32()?;
                Instr::RJumpIfFalse { cond, target }
            }
            50 => {
                let op = d.binop()?;
                let dst = d.u16()?;
                let a = d.u16()?;
                let b = d.u16()?;
                Instr::RBin { op, dst, a, b }
            }
            51 => {
                let op = d.unop()?;
                let dst = d.u16()?;
                let src = d.u16()?;
                Instr::RUn { op, dst, src }
            }
            52 => {
                let dst = d.u16()?;
                let a = d.u16()?;
                let b = d.u16()?;
                Instr::RPair { dst, a, b }
            }
            53 => {
                let dst = d.u16()?;
                let src = d.u16()?;
                Instr::RFst { dst, src }
            }
            54 => {
                let dst = d.u16()?;
                let src = d.u16()?;
                Instr::RSnd { dst, src }
            }
            55 => {
                let dst = d.u16()?;
                let head = d.u16()?;
                let tail = d.u16()?;
                Instr::RCons { dst, head, tail }
            }
            56 => {
                let src = d.u16()?;
                let head = d.u16()?;
                let tail = d.u16()?;
                let nil_target = d.u32()?;
                Instr::RCaseList {
                    src,
                    head,
                    tail,
                    nil_target,
                }
            }
            57 => {
                let dst = d.u16()?;
                let base = d.u16()?;
                let name = d.sym()?;
                let fields = d.u32()?;
                Instr::RMakeRecord {
                    dst,
                    base,
                    name,
                    fields,
                }
            }
            58 => {
                let dst = d.u16()?;
                let src = d.u16()?;
                let field = d.sym()?;
                Instr::RProject { dst, src, field }
            }
            59 => {
                let dst = d.u16()?;
                let base = d.u16()?;
                let ctor = d.sym()?;
                let argc = d.u16()?;
                Instr::RInject {
                    dst,
                    base,
                    ctor,
                    argc,
                }
            }
            60 => {
                let src = d.u16()?;
                let tbl = d.u32()?;
                Instr::RMatch { src, tbl }
            }
            61 => {
                let op = d.binop()?;
                let a = d.u16()?;
                let b = d.u16()?;
                let target = d.u32()?;
                Instr::RBinJump { op, a, b, target }
            }
            62 => {
                let op = d.binop()?;
                let a = d.u16()?;
                let b = d.u16()?;
                Instr::RBinRet { op, a, b }
            }
            63 => {
                let op = d.binop()?;
                let f = d.u16()?;
                let a = d.u16()?;
                let b = d.u16()?;
                Instr::RBinTail { op, f, a, b }
            }
            64 => {
                let op = d.binop()?;
                let idx = d.u16()?;
                let a = d.u16()?;
                let b = d.u16()?;
                Instr::RCapBinTail { op, idx, a, b }
            }
            t => return err(format!("bad instr tag {t}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiler;
    use crate::eval::Evaluator;
    use crate::vm::Vm;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn roundtrip_value(v: &Value) -> Value {
        let mut e = Enc::new();
        {
            let mut sf = SfEnc::new(&mut e);
            sf.value(v);
        }
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).expect("checksum");
        let mut sf = SfDec::new(&mut d);
        sf.value().expect("decode")
    }

    #[test]
    fn first_order_values_roundtrip() {
        let v = Value::Pair(
            Rc::new(Value::Int(42)),
            Rc::new(Value::List(Rc::new(vec![
                Value::Bool(true),
                Value::Str(Rc::from("hi")),
                Value::Unit,
            ]))),
        );
        let back = roundtrip_value(&v);
        assert_eq!(v.try_eq(&back), Some(true));
    }

    #[test]
    fn shared_values_stay_shared() {
        let shared = Rc::new(Value::Int(7));
        let v = Value::Pair(Rc::new(Value::Pair(shared.clone(), shared.clone())), shared);
        let back = roundtrip_value(&v);
        let Value::Pair(inner, c) = &back else {
            panic!("not a pair")
        };
        let Value::Pair(a, b) = &**inner else {
            panic!("not a pair")
        };
        assert!(Rc::ptr_eq(a, b), "sharing lost between siblings");
        assert!(Rc::ptr_eq(a, c), "sharing lost across levels");
    }

    #[test]
    fn closures_and_envs_roundtrip() {
        // let f = fix f. λn. if n < 1 then 0 else f (n - 2); serialize
        // the resulting closure (whose env holds a Rec binding) and
        // apply both sides.
        let f = sym("f");
        let n = sym("n");
        use implicit_core::syntax::BinOp;
        let body = FExpr::Lam(
            n,
            FType::Int,
            Rc::new(FExpr::If(
                Rc::new(FExpr::BinOp(
                    BinOp::Lt,
                    Rc::new(FExpr::Var(n)),
                    Rc::new(FExpr::Int(1)),
                )),
                Rc::new(FExpr::Int(0)),
                Rc::new(FExpr::App(
                    Rc::new(FExpr::Var(f)),
                    Rc::new(FExpr::BinOp(
                        BinOp::Sub,
                        Rc::new(FExpr::Var(n)),
                        Rc::new(FExpr::Int(2)),
                    )),
                )),
            )),
        );
        let fix = FExpr::Fix(f, FType::arrow(FType::Int, FType::Int), Rc::new(body));
        let mut ev = Evaluator::new();
        let clo = ev.eval(&fix).expect("eval");
        let back = roundtrip_value(&clo);
        let a = ev.apply(clo, Value::Int(9)).expect("apply original");
        let b = ev.apply(back, Value::Int(9)).expect("apply decoded");
        assert_eq!(a.try_eq(&b), Some(true));
    }

    #[test]
    fn compiled_code_roundtrips_on_both_isas() {
        use implicit_core::syntax::BinOp;
        // (λx. x * x) 12 — exercises funcs, consts and captures.
        let x = sym("x");
        let prog = FExpr::App(
            Rc::new(FExpr::Lam(
                x,
                FType::Int,
                Rc::new(FExpr::BinOp(
                    BinOp::Mul,
                    Rc::new(FExpr::Var(x)),
                    Rc::new(FExpr::Var(x)),
                )),
            )),
            Rc::new(FExpr::Int(12)),
        );
        for isa in [Isa::Register, Isa::Stack] {
            let mut c = Compiler::new_with_isa(isa);
            let main = c.compile(&prog).expect("compile");
            let snap = c.snapshot();
            let parts = c.export_parts(&snap);

            let mut e = Enc::new();
            {
                let mut sf = SfEnc::new(&mut e);
                sf.code_parts(&parts);
            }
            let bytes = e.finish();
            let mut d = Dec::new(&bytes).expect("checksum");
            let mut sf = SfDec::new(&mut d);
            let parts2 = sf.code_parts().expect("decode");
            let c2 = Compiler::from_parts(parts2);

            let mut vm = Vm::new();
            let v1 = vm.run(c.code(), main, &[]).expect("run original");
            let v2 = vm.run(c2.code(), main, &[]).expect("run decoded");
            assert_eq!(v1.try_eq(&v2), Some(true));
            assert_eq!(format!("{v1:?}"), format!("{v2:?}"));
        }
    }

    #[test]
    fn vmclosure_func_limit_is_enforced() {
        let clo = Value::CompiledClosure(Rc::new(VmClosure {
            func: 5,
            captures: vec![],
        }));
        let mut e = Enc::new();
        {
            let mut sf = SfEnc::new(&mut e);
            sf.value(&clo);
        }
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).expect("checksum");
        let mut sf = SfDec::new(&mut d);
        sf.func_limit = Some(3);
        assert!(sf.value().is_err(), "out-of-range func index accepted");
    }
}
