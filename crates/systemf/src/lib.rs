//! # `systemf` — the System F elaboration target
//!
//! The implicit calculus gives its dynamic semantics by a
//! type-directed translation into System F (§4 of the paper):
//! implicit contexts become explicit λ-parameters, quantifiers become
//! `Λ` binders, and every query is statically resolved to evidence.
//! This crate provides the target language: System F with the same
//! host fragment as λ⇒ (ints, bools, strings, pairs, lists, nominal
//! records, `if`, `fix`, primitive operators), a type checker
//! (appendix Figure "System F Type System") and a call-by-value
//! big-step evaluator.
//!
//! ```
//! use systemf::syntax::{FDeclarations, FExpr, FType};
//! use systemf::{eval::eval, typeck::typecheck};
//! use implicit_core::symbol::Symbol;
//!
//! // (Λα. λ(x:α). (x,x)) Int 3
//! let a = Symbol::intern("a");
//! let pair = FExpr::ty_abs([a], FExpr::lam("x", FType::Var(a),
//!     FExpr::Pair(FExpr::var("x").into(), FExpr::var("x").into())));
//! let e = FExpr::app(FExpr::TyApp(pair.into(), FType::Int), FExpr::Int(3));
//! let ty = typecheck(&FDeclarations::new(), &e).unwrap();
//! assert_eq!(ty, FType::prod(FType::Int, FType::Int));
//! assert_eq!(eval(&e).unwrap().to_string(), "(3, 3)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compile;
pub mod eval;
pub mod syntax;
pub mod typeck;
pub mod vm;
pub mod wire;

pub use compile::{CodeObject, CodeSnapshot, CompileError, Compiler, Isa};
pub use eval::{eval, EvalError, Evaluator, Value};
pub use syntax::{FDeclarations, FExpr, FInterfaceDecl, FType};
pub use typeck::{typecheck, FTypeError};
pub use vm::{compile_and_run, compile_and_run_isa, Vm, VmStats};
