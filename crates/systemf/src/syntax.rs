//! Abstract syntax of System F, the elaboration target (§4).
//!
//! ```text
//! Types        T ::= α | T → T | ∀α.T | Int | ()          (+ host types)
//! Expressions  E ::= x | λ(x:T).E | E E | Λα.E | E T | n | ()
//! ```
//!
//! extended with the same host fragment as λ⇒ (booleans, strings,
//! pairs, lists, records, `if`, `fix`, primitive operators) so that
//! the elaboration of §4 is homomorphic on that fragment.

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use implicit_core::symbol::{base_name, fresh, Symbol};
pub use implicit_core::syntax::{BinOp, UnOp};

/// A System F type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum FType {
    /// Type variable.
    Var(Symbol),
    /// Integer type.
    Int,
    /// Boolean type.
    Bool,
    /// String type.
    Str,
    /// Unit type.
    Unit,
    /// Function type.
    Arrow(Rc<FType>, Rc<FType>),
    /// Product type.
    Prod(Rc<FType>, Rc<FType>),
    /// List type.
    List(Rc<FType>),
    /// Nominal record type.
    Con(Symbol, Vec<FType>),
    /// An applied type variable `f T̄` (the F_ω-lite extension
    /// mirroring the core calculus).
    VarApp(Symbol, Vec<FType>),
    /// A type-constructor reference (instantiation argument for an
    /// arrow-kinded quantifier).
    Ctor(implicit_core::syntax::TyCon),
    /// Universal quantification `∀α.T`.
    Forall(Symbol, Rc<FType>),
}

impl FType {
    /// Builds an arrow type.
    pub fn arrow(from: FType, to: FType) -> FType {
        FType::Arrow(Rc::new(from), Rc::new(to))
    }

    /// Builds a product type.
    pub fn prod(left: FType, right: FType) -> FType {
        FType::Prod(Rc::new(left), Rc::new(right))
    }

    /// Builds a list type.
    pub fn list(elem: FType) -> FType {
        FType::List(Rc::new(elem))
    }

    /// `∀ᾱ.T`, folding a sequence of quantifiers.
    pub fn forall(vars: impl IntoIterator<Item = Symbol>, body: FType) -> FType {
        let vars: Vec<Symbol> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| FType::Forall(v, Rc::new(acc)))
    }

    /// Curried arrow `T₁ → … → Tₙ → R`.
    pub fn arrows(args: impl IntoIterator<Item = FType>, ret: FType) -> FType {
        let args: Vec<FType> = args.into_iter().collect();
        args.into_iter()
            .rev()
            .fold(ret, |acc, a| FType::arrow(a, acc))
    }

    /// Free type variables.
    pub fn ftv(&self) -> BTreeSet<Symbol> {
        let mut acc = BTreeSet::new();
        self.ftv_into(&mut acc);
        acc
    }

    fn ftv_into(&self, acc: &mut BTreeSet<Symbol>) {
        match self {
            FType::Var(a) => {
                acc.insert(*a);
            }
            FType::Int | FType::Bool | FType::Str | FType::Unit => {}
            FType::Arrow(a, b) | FType::Prod(a, b) => {
                a.ftv_into(acc);
                b.ftv_into(acc);
            }
            FType::List(a) => a.ftv_into(acc),
            FType::Con(_, args) => args.iter().for_each(|t| t.ftv_into(acc)),
            FType::VarApp(f, args) => {
                acc.insert(*f);
                args.iter().for_each(|t| t.ftv_into(acc));
            }
            FType::Ctor(_) => {}
            FType::Forall(v, b) => {
                let mut inner = BTreeSet::new();
                b.ftv_into(&mut inner);
                inner.remove(v);
                acc.extend(inner);
            }
        }
    }

    /// Capture-avoiding substitution `[a ↦ ty] self`.
    pub fn subst(&self, a: Symbol, ty: &FType) -> FType {
        match self {
            FType::Var(b) if *b == a => ty.clone(),
            FType::Var(_) | FType::Int | FType::Bool | FType::Str | FType::Unit => self.clone(),
            FType::Arrow(l, r) => FType::arrow(l.subst(a, ty), r.subst(a, ty)),
            FType::Prod(l, r) => FType::prod(l.subst(a, ty), r.subst(a, ty)),
            FType::List(l) => FType::list(l.subst(a, ty)),
            FType::Con(n, args) => FType::Con(*n, args.iter().map(|t| t.subst(a, ty)).collect()),
            FType::VarApp(f, args) => {
                let args2: Vec<FType> = args.iter().map(|t| t.subst(a, ty)).collect();
                if *f == a {
                    match ty {
                        FType::Var(g) => FType::VarApp(*g, args2),
                        FType::Con(n, empty) if empty.is_empty() => FType::Con(*n, args2),
                        FType::Ctor(implicit_core::syntax::TyCon::List) => {
                            assert_eq!(args2.len(), 1, "List takes one argument");
                            FType::list(args2.into_iter().next().expect("len checked"))
                        }
                        FType::Ctor(implicit_core::syntax::TyCon::Named(n)) => {
                            FType::Con(*n, args2)
                        }
                        other => panic!(
                            "ill-kinded System F substitution: applied variable mapped to `{other}`"
                        ),
                    }
                } else {
                    FType::VarApp(*f, args2)
                }
            }
            FType::Ctor(_) => self.clone(),
            FType::Forall(v, b) => {
                if *v == a {
                    self.clone()
                } else if ty.ftv().contains(v) {
                    // Rename the binder apart to avoid capture.
                    let v2 = fresh(base_name(*v));
                    let renamed = b.subst(*v, &FType::Var(v2));
                    FType::Forall(v2, Rc::new(renamed.subst(a, ty)))
                } else {
                    FType::Forall(*v, Rc::new(b.subst(a, ty)))
                }
            }
        }
    }

    /// α-equivalence.
    pub fn alpha_eq(&self, other: &FType) -> bool {
        fn go(a: &FType, b: &FType, env: &mut Vec<(Symbol, Symbol)>) -> bool {
            match (a, b) {
                (FType::Var(x), FType::Var(y)) => {
                    match env.iter().rev().find(|(l, r)| l == x || r == y) {
                        Some((l, r)) => l == x && r == y,
                        None => x == y,
                    }
                }
                (FType::Int, FType::Int)
                | (FType::Bool, FType::Bool)
                | (FType::Str, FType::Str)
                | (FType::Unit, FType::Unit) => true,
                (FType::Arrow(a1, b1), FType::Arrow(a2, b2))
                | (FType::Prod(a1, b1), FType::Prod(a2, b2)) => go(a1, a2, env) && go(b1, b2, env),
                (FType::List(a1), FType::List(a2)) => go(a1, a2, env),
                (FType::Con(n1, a1), FType::Con(n2, a2)) => {
                    n1 == n2
                        && a1.len() == a2.len()
                        && a1.iter().zip(a2).all(|(x, y)| go(x, y, env))
                }
                (FType::VarApp(f1, a1), FType::VarApp(f2, a2)) => {
                    let heads = match env.iter().rev().find(|(l, r)| l == f1 || r == f2) {
                        Some((l, r)) => l == f1 && r == f2,
                        None => f1 == f2,
                    };
                    heads && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| go(x, y, env))
                }
                (FType::Ctor(c1), FType::Ctor(c2)) => c1 == c2,
                (FType::Ctor(implicit_core::syntax::TyCon::Named(a)), FType::Con(b, bs))
                | (FType::Con(b, bs), FType::Ctor(implicit_core::syntax::TyCon::Named(a)))
                    if bs.is_empty() =>
                {
                    a == b
                }
                (FType::Forall(v1, b1), FType::Forall(v2, b2)) => {
                    env.push((*v1, *v2));
                    let r = go(b1, b2, env);
                    env.pop();
                    r
                }
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }
}

/// A System F expression.
#[derive(Clone, PartialEq, Debug)]
pub enum FExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Unit literal.
    Unit,
    /// Term variable.
    Var(Symbol),
    /// `λ(x:T).E`
    Lam(Symbol, FType, Rc<FExpr>),
    /// Application.
    App(Rc<FExpr>, Rc<FExpr>),
    /// `Λα.E`
    TyAbs(Symbol, Rc<FExpr>),
    /// Type application `E T`.
    TyApp(Rc<FExpr>, FType),
    /// Conditional.
    If(Rc<FExpr>, Rc<FExpr>, Rc<FExpr>),
    /// Primitive binary operation.
    BinOp(BinOp, Rc<FExpr>, Rc<FExpr>),
    /// Primitive unary operation.
    UnOp(UnOp, Rc<FExpr>),
    /// Pair introduction.
    Pair(Rc<FExpr>, Rc<FExpr>),
    /// First projection.
    Fst(Rc<FExpr>),
    /// Second projection.
    Snd(Rc<FExpr>),
    /// Empty list at element type.
    Nil(FType),
    /// List cons.
    Cons(Rc<FExpr>, Rc<FExpr>),
    /// List elimination.
    ListCase {
        /// Scrutinee.
        scrut: Rc<FExpr>,
        /// Empty-list branch.
        nil: Rc<FExpr>,
        /// Head binder.
        head: Symbol,
        /// Tail binder.
        tail: Symbol,
        /// Cons branch.
        cons: Rc<FExpr>,
    },
    /// General recursion at function type.
    Fix(Symbol, FType, Rc<FExpr>),
    /// Record construction.
    Make(Symbol, Vec<FType>, Vec<(Symbol, FExpr)>),
    /// Field projection.
    Proj(Rc<FExpr>, Symbol),
    /// Data-constructor application.
    Inject(Symbol, Vec<FType>, Vec<FExpr>),
    /// Data elimination.
    Match(Rc<FExpr>, Vec<FMatchArm>),
}

/// One arm of an [`FExpr::Match`].
#[derive(Clone, PartialEq, Debug)]
pub struct FMatchArm {
    /// Constructor name.
    pub ctor: Symbol,
    /// Binders for the constructor arguments.
    pub binders: Vec<Symbol>,
    /// Arm body.
    pub body: FExpr,
}

impl FExpr {
    /// `λ(x:T).E`
    pub fn lam(x: impl Into<Symbol>, ty: FType, body: FExpr) -> FExpr {
        FExpr::Lam(x.into(), ty, Rc::new(body))
    }

    /// Application.
    pub fn app(f: FExpr, a: FExpr) -> FExpr {
        FExpr::App(Rc::new(f), Rc::new(a))
    }

    /// n-ary application.
    pub fn apps(f: FExpr, args: impl IntoIterator<Item = FExpr>) -> FExpr {
        args.into_iter().fold(f, FExpr::app)
    }

    /// `Λᾱ.E`
    pub fn ty_abs(vars: impl IntoIterator<Item = Symbol>, body: FExpr) -> FExpr {
        let vars: Vec<Symbol> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| FExpr::TyAbs(v, Rc::new(acc)))
    }

    /// n-ary type application.
    pub fn ty_apps(f: FExpr, tys: impl IntoIterator<Item = FType>) -> FExpr {
        tys.into_iter()
            .fold(f, |acc, t| FExpr::TyApp(Rc::new(acc), t))
    }

    /// Term variable.
    pub fn var(x: impl Into<Symbol>) -> FExpr {
        FExpr::Var(x.into())
    }
}

/// A nominal record (interface) declaration for System F.
#[derive(Clone, PartialEq, Debug)]
pub struct FInterfaceDecl {
    /// Name.
    pub name: Symbol,
    /// Type parameters.
    pub vars: Vec<Symbol>,
    /// Fields.
    pub fields: Vec<(Symbol, FType)>,
}

impl FInterfaceDecl {
    /// Type of `field` at instantiation `args`.
    ///
    /// # Panics
    ///
    /// Panics when `args.len() != self.vars.len()`.
    pub fn field_type(&self, field: Symbol, args: &[FType]) -> Option<FType> {
        assert_eq!(args.len(), self.vars.len(), "interface arity mismatch");
        let (_, t) = self.fields.iter().find(|(u, _)| *u == field)?;
        let mut out = t.clone();
        // Simultaneous substitution via fresh intermediates to avoid
        // clashes between parameters and arguments.
        let temps: Vec<Symbol> = self.vars.iter().map(|v| fresh(base_name(*v))).collect();
        for (v, tmp) in self.vars.iter().zip(&temps) {
            out = out.subst(*v, &FType::Var(*tmp));
        }
        for (tmp, a) in temps.iter().zip(args) {
            out = out.subst(*tmp, a);
        }
        Some(out)
    }
}

/// A System F data-type declaration (mirroring the core calculus).
#[derive(Clone, PartialEq, Debug)]
pub struct FDataDecl {
    /// Type name.
    pub name: Symbol,
    /// Type parameters (kinds are tracked by the core checker; at
    /// the F level substitution handles constructor arguments).
    pub params: Vec<Symbol>,
    /// Constructors with argument types.
    pub ctors: Vec<(Symbol, Vec<FType>)>,
}

impl FDataDecl {
    /// Instantiated argument types of `ctor` at `args`.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.params.len()`.
    pub fn ctor_arg_types(&self, ctor: Symbol, args: &[FType]) -> Option<Vec<FType>> {
        assert_eq!(args.len(), self.params.len(), "data arity mismatch");
        let (_, tys) = self.ctors.iter().find(|(c, _)| *c == ctor)?;
        let temps: Vec<Symbol> = self.params.iter().map(|p| fresh(base_name(*p))).collect();
        Some(
            tys.iter()
                .map(|t| {
                    let mut out = t.clone();
                    for (p, tmp) in self.params.iter().zip(&temps) {
                        out = out.subst(*p, &FType::Var(*tmp));
                    }
                    for (tmp, a) in temps.iter().zip(args) {
                        out = out.subst(*tmp, a);
                    }
                    out
                })
                .collect(),
        )
    }
}

/// Interface and data declaration table.
#[derive(Clone, Default, Debug)]
pub struct FDeclarations {
    interfaces: Vec<FInterfaceDecl>,
    datas: Vec<FDataDecl>,
}

impl FDeclarations {
    /// Empty table.
    pub fn new() -> FDeclarations {
        FDeclarations::default()
    }

    /// Adds a declaration, replacing any previous one with the same
    /// name.
    pub fn declare(&mut self, decl: FInterfaceDecl) {
        self.interfaces.retain(|d| d.name != decl.name);
        self.interfaces.push(decl);
    }

    /// Adds a data declaration, replacing any previous one with the
    /// same name.
    pub fn declare_data(&mut self, decl: FDataDecl) {
        self.datas.retain(|d| d.name != decl.name);
        self.datas.push(decl);
    }

    /// Looks up a declaration.
    pub fn lookup(&self, name: Symbol) -> Option<&FInterfaceDecl> {
        self.interfaces.iter().find(|d| d.name == name)
    }

    /// Looks up a data declaration.
    pub fn lookup_data(&self, name: Symbol) -> Option<&FDataDecl> {
        self.datas.iter().find(|d| d.name == name)
    }

    /// Finds the data type declaring `ctor`.
    pub fn lookup_ctor(&self, ctor: Symbol) -> Option<&FDataDecl> {
        self.datas
            .iter()
            .find(|d| d.ctors.iter().any(|(c, _)| *c == ctor))
    }
}

impl fmt::Display for FType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(t: &FType) -> u8 {
            match t {
                FType::Forall(..) => 0,
                FType::Arrow(..) => 1,
                FType::Prod(..) => 2,
                FType::Con(_, args) if !args.is_empty() => 3,
                FType::VarApp(_, _) => 3,
                _ => 4,
            }
        }
        fn go(t: &FType, min: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let p = prec(t);
            if p < min {
                f.write_str("(")?;
            }
            match t {
                FType::Var(v) => write!(f, "{}", base_name(*v))?,
                FType::Int => f.write_str("Int")?,
                FType::Bool => f.write_str("Bool")?,
                FType::Str => f.write_str("String")?,
                FType::Unit => f.write_str("Unit")?,
                FType::Arrow(a, b) => {
                    go(a, 2, f)?;
                    f.write_str(" -> ")?;
                    go(b, 1, f)?;
                }
                FType::Prod(a, b) => {
                    go(a, 3, f)?;
                    f.write_str(" * ")?;
                    go(b, 3, f)?;
                }
                FType::List(a) => {
                    f.write_str("[")?;
                    go(a, 0, f)?;
                    f.write_str("]")?;
                }
                FType::Con(n, args) => {
                    write!(f, "{n}")?;
                    for a in args {
                        f.write_str(" ")?;
                        go(a, 4, f)?;
                    }
                }
                FType::VarApp(h, args) => {
                    write!(f, "{}", base_name(*h))?;
                    for a in args {
                        f.write_str(" ")?;
                        go(a, 4, f)?;
                    }
                }
                FType::Ctor(c) => write!(f, "{c}")?,
                FType::Forall(v, b) => {
                    write!(f, "forall {}. ", base_name(*v))?;
                    go(b, 0, f)?;
                }
            }
            if p < min {
                f.write_str(")")?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

impl fmt::Display for FExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A compact, unambiguous rendering (not meant to be re-parsed).
        match self {
            FExpr::Int(n) => write!(f, "{n}"),
            FExpr::Bool(b) => write!(f, "{b}"),
            FExpr::Str(s) => write!(f, "{s:?}"),
            FExpr::Unit => f.write_str("()"),
            FExpr::Var(x) => write!(f, "{}", base_name(*x)),
            FExpr::Lam(x, t, b) => write!(f, "(\\({}:{t}). {b})", base_name(*x)),
            FExpr::App(g, a) => write!(f, "({g} {a})"),
            FExpr::TyAbs(v, b) => write!(f, "(/\\{}. {b})", base_name(*v)),
            FExpr::TyApp(g, t) => write!(f, "({g} [{t}])"),
            FExpr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            FExpr::BinOp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            FExpr::UnOp(op, a) => write!(f, "({op:?} {a})"),
            FExpr::Pair(a, b) => write!(f, "({a}, {b})"),
            FExpr::Fst(a) => write!(f, "(fst {a})"),
            FExpr::Snd(a) => write!(f, "(snd {a})"),
            FExpr::Nil(t) => write!(f, "(nil [{t}])"),
            FExpr::Cons(h, t) => write!(f, "({h} :: {t})"),
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => write!(
                f,
                "(case {scrut} of nil -> {nil} | {} :: {} -> {cons})",
                base_name(*head),
                base_name(*tail)
            ),
            FExpr::Fix(x, t, b) => write!(f, "(fix {}:{t}. {b})", base_name(*x)),
            FExpr::Make(n, args, fields) => {
                write!(f, "{n}")?;
                if !args.is_empty() {
                    f.write_str(" [")?;
                    for (i, t) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    f.write_str("]")?;
                }
                f.write_str(" { ")?;
                for (i, (u, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{u} = {e}")?;
                }
                f.write_str(" }")
            }
            FExpr::Proj(e, u) => write!(f, "({e}.{u})"),
            FExpr::Inject(c, ts, args) => {
                write!(f, "(con {c}")?;
                if !ts.is_empty() {
                    f.write_str(" [")?;
                    for (i, t) in ts.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    f.write_str("]")?;
                }
                f.write_str(" (")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("))")
            }
            FExpr::Match(scrut, arms) => {
                write!(f, "(match {scrut} {{ ")?;
                for (i, arm) in arms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" | ")?;
                    }
                    write!(f, "{}", arm.ctor)?;
                    for b in &arm.binders {
                        write!(f, " {}", base_name(*b))?;
                    }
                    write!(f, " -> {}", arm.body)?;
                }
                f.write_str(" })")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn forall_folds_right() {
        let t = FType::forall([v("a"), v("b")], FType::Var(v("a")));
        match t {
            FType::Forall(a, inner) => {
                assert_eq!(a, v("a"));
                assert!(matches!(&*inner, FType::Forall(b, _) if *b == v("b")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrows_fold_right() {
        let t = FType::arrows([FType::Int, FType::Bool], FType::Str);
        assert_eq!(
            t,
            FType::arrow(FType::Int, FType::arrow(FType::Bool, FType::Str))
        );
    }

    #[test]
    fn subst_avoids_capture() {
        // [b ↦ a](∀a. b → a) must rename the binder.
        let t = FType::Forall(
            v("a"),
            Rc::new(FType::arrow(FType::Var(v("b")), FType::Var(v("a")))),
        );
        let out = t.subst(v("b"), &FType::Var(v("a")));
        match &out {
            FType::Forall(binder, body) => {
                assert_ne!(*binder, v("a"));
                match &**body {
                    FType::Arrow(dom, _) => assert_eq!(**dom, FType::Var(v("a"))),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(out.ftv().contains(&v("a")));
    }

    #[test]
    fn alpha_eq_ignores_binder_names() {
        let t1 = FType::Forall(v("a"), Rc::new(FType::Var(v("a"))));
        let t2 = FType::Forall(v("b"), Rc::new(FType::Var(v("b"))));
        assert!(t1.alpha_eq(&t2));
        let t3 = FType::Forall(v("a"), Rc::new(FType::Var(v("c"))));
        assert!(!t1.alpha_eq(&t3));
    }

    #[test]
    fn alpha_eq_distinguishes_quantifier_structure() {
        let t1 = FType::forall(
            [v("a"), v("b")],
            FType::arrow(FType::Var(v("a")), FType::Var(v("b"))),
        );
        let t2 = FType::forall(
            [v("a"), v("b")],
            FType::arrow(FType::Var(v("b")), FType::Var(v("a"))),
        );
        assert!(!t1.alpha_eq(&t2));
    }

    #[test]
    fn field_types_instantiate_simultaneously() {
        // interface Swap a b = { get : b → a } at (b, a): must swap
        // without interference.
        let d = FInterfaceDecl {
            name: v("Swap"),
            vars: vec![v("a"), v("b")],
            fields: vec![(
                v("get"),
                FType::arrow(FType::Var(v("b")), FType::Var(v("a"))),
            )],
        };
        let t = d
            .field_type(v("get"), &[FType::Var(v("b")), FType::Var(v("a"))])
            .unwrap();
        assert_eq!(t, FType::arrow(FType::Var(v("a")), FType::Var(v("b"))));
    }

    #[test]
    fn display_is_reasonable() {
        let t = FType::forall(
            [v("a")],
            FType::arrow(FType::Var(v("a")), FType::Var(v("a"))),
        );
        assert_eq!(t.to_string(), "forall a. a -> a");
        let e = FExpr::ty_abs(
            [v("a")],
            FExpr::lam("x", FType::Var(v("a")), FExpr::var("x")),
        );
        assert_eq!(e.to_string(), "(/\\a. (\\(x:a). x))");
    }
}
