//! Call-by-value big-step evaluation of System F.
//!
//! The paper defines the dynamic semantics of λ⇒ as elaboration into
//! System F followed by System F's standard call-by-value reduction;
//! this module provides that reduction as an environment-based
//! big-step interpreter (types are erased at runtime — a type
//! abstraction is a value, and type application forces its body).

use std::fmt;
use std::rc::Rc;

use implicit_core::symbol::Symbol;

use crate::syntax::{BinOp, FExpr, UnOp};

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<str>),
    /// Unit.
    Unit,
    /// Pair.
    Pair(Rc<Value>, Rc<Value>),
    /// List (strict).
    List(Rc<Vec<Value>>),
    /// Function closure.
    Closure {
        /// Parameter name.
        param: Symbol,
        /// Body.
        body: Rc<FExpr>,
        /// Captured environment.
        env: Env,
    },
    /// Type-abstraction closure (`Λα.E` is a value).
    TyClosure {
        /// Body.
        body: Rc<FExpr>,
        /// Captured environment.
        env: Env,
    },
    /// Record value.
    Record {
        /// Interface name.
        name: Symbol,
        /// Field values.
        fields: Rc<Vec<(Symbol, Value)>>,
    },
    /// Data value (tagged constructor application).
    Data {
        /// Constructor name.
        ctor: Symbol,
        /// Constructor arguments.
        fields: Rc<Vec<Value>>,
    },
    /// A compiled-backend function closure (code index + flat
    /// captures; see [`crate::vm`]).
    CompiledClosure(Rc<crate::vm::VmClosure>),
    /// A compiled-backend type-abstraction thunk (`Λα.E` erased to a
    /// nullary closure so type application still delays evaluation).
    CompiledTyClosure(Rc<crate::vm::VmClosure>),
    /// A compiled-backend `fix` self-reference. Loading it from a
    /// frame slot or capture unfolds the recursion one step; it is
    /// never observable as a program result.
    CompiledRec(Rc<crate::vm::VmClosure>),
}

impl Value {
    /// Structural equality on first-order values (`None` for values
    /// containing closures).
    pub fn try_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a == b),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (Value::Unit, Value::Unit) => Some(true),
            (Value::Pair(a1, b1), Value::Pair(a2, b2)) => Some(a1.try_eq(a2)? && b1.try_eq(b2)?),
            (Value::List(xs), Value::List(ys)) => {
                if xs.len() != ys.len() {
                    return Some(false);
                }
                for (x, y) in xs.iter().zip(ys.iter()) {
                    if !x.try_eq(y)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            (
                Value::Data {
                    ctor: c1,
                    fields: f1,
                },
                Value::Data {
                    ctor: c2,
                    fields: f2,
                },
            ) => {
                if c1 != c2 || f1.len() != f2.len() {
                    return Some(false);
                }
                for (x, y) in f1.iter().zip(f2.iter()) {
                    if !x.try_eq(y)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            (
                Value::Record {
                    name: n1,
                    fields: f1,
                },
                Value::Record {
                    name: n2,
                    fields: f2,
                },
            ) => {
                if n1 != n2 || f1.len() != f2.len() {
                    return Some(false);
                }
                for ((u1, v1), (u2, v2)) in f1.iter().zip(f2.iter()) {
                    if u1 != u2 {
                        return Some(false);
                    }
                    if !v1.try_eq(v2)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Unit => f.write_str("()"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::List(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Value::Closure { .. } | Value::CompiledClosure(_) => f.write_str("<closure>"),
            Value::TyClosure { .. } | Value::CompiledTyClosure(_) => f.write_str("<type-closure>"),
            Value::CompiledRec(_) => f.write_str("<fix>"),
            Value::Record { name, fields } => {
                write!(f, "{name} {{ ")?;
                for (i, (u, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{u} = {v}")?;
                }
                f.write_str(" }")
            }
            Value::Data { ctor, fields } => {
                write!(f, "{ctor}")?;
                for v in fields.iter() {
                    // Parenthesize nested compound values for
                    // readability.
                    match v {
                        Value::Data { fields: inner, .. } if !inner.is_empty() => {
                            write!(f, " ({v})")?
                        }
                        _ => write!(f, " {v}")?,
                    }
                }
                Ok(())
            }
        }
    }
}

/// A persistent evaluation environment (linked list of bindings).
#[derive(Clone, Default, Debug)]
pub struct Env {
    pub(crate) node: Option<Rc<EnvNode>>,
}

#[derive(Debug)]
pub(crate) struct EnvNode {
    pub(crate) name: Symbol,
    pub(crate) value: Binding,
    pub(crate) next: Env,
}

#[derive(Clone, Debug)]
pub(crate) enum Binding {
    Done(Value),
    /// A `fix x:T. e` binding: re-evaluating `e` in `env` (with `x`
    /// bound recursively) unfolds the recursion one step.
    Rec {
        body: Rc<FExpr>,
        env: Env,
    },
}

impl Env {
    /// Iterates the binding spine outward (innermost binding first),
    /// for the artifact serializer.
    pub(crate) fn nodes(&self) -> impl Iterator<Item = &Rc<EnvNode>> {
        std::iter::successors(self.node.as_ref(), |n| n.next.node.as_ref())
    }

    /// The spine as `(name, value)` pairs, outermost binding first;
    /// `None` for recursive (`fix`) bindings. Used by the session
    /// artifact layer to recover per-binding prelude values.
    pub fn bindings_outermost_first(&self) -> Vec<(Symbol, Option<Value>)> {
        let mut out: Vec<(Symbol, Option<Value>)> = self
            .nodes()
            .map(|n| {
                let v = match &n.value {
                    Binding::Done(v) => Some(v.clone()),
                    Binding::Rec { .. } => None,
                };
                (n.name, v)
            })
            .collect();
        out.reverse();
        out
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        // Environments form long linked spines; drop them
        // iteratively so deep recursion cannot overflow the stack in
        // the destructor.
        let mut cur = self.node.take();
        while let Some(rc) = cur {
            match Rc::try_unwrap(rc) {
                Ok(mut node) => cur = node.next.node.take(),
                Err(_) => break,
            }
        }
    }
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Extends with a value binding.
    pub fn bind(&self, name: Symbol, value: Value) -> Env {
        Env {
            node: Some(Rc::new(EnvNode {
                name,
                value: Binding::Done(value),
                next: self.clone(),
            })),
        }
    }

    /// Extends with a recursive binding: looking `name` up re-creates
    /// this same environment and evaluates `body` in it, unfolding
    /// the recursion one step per lookup (no interior mutability or
    /// reference cycles needed).
    fn bind_rec(&self, name: Symbol, body: Rc<FExpr>) -> Env {
        Env {
            node: Some(Rc::new(EnvNode {
                name,
                value: Binding::Rec {
                    body,
                    env: self.clone(),
                },
                next: self.clone(),
            })),
        }
    }

    fn get(&self, name: Symbol) -> Option<&EnvNode> {
        let mut cur = self;
        while let Some(node) = &cur.node {
            if node.name == name {
                return Some(node);
            }
            cur = &node.next;
        }
        None
    }
}

/// A runtime error (evaluation of well-typed terms only hits these
/// through primitive partiality or resource exhaustion).
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// Unbound variable — indicates an elaboration or typing bug.
    UnboundVar(Symbol),
    /// A non-function was applied — indicates a typing bug.
    NotAFunction(String),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Evaluation exceeded the step budget (diverging `fix`).
    OutOfFuel,
    /// A primitive was applied to a value of the wrong shape —
    /// indicates a typing bug.
    Stuck(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(x) => write!(f, "unbound variable `{x}` at runtime"),
            EvalError::NotAFunction(v) => write!(f, "cannot apply non-function value {v}"),
            EvalError::DivisionByZero => f.write_str("division by zero"),
            EvalError::OutOfFuel => f.write_str("evaluation exceeded its step budget"),
            EvalError::Stuck(m) => write!(f, "evaluation stuck: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluator, carrying a step budget so that diverging programs
/// return [`EvalError::OutOfFuel`] instead of hanging.
pub struct Evaluator {
    fuel: u64,
    initial_fuel: u64,
}

impl Default for Evaluator {
    fn default() -> Evaluator {
        Evaluator::with_fuel(10_000_000)
    }
}

impl Evaluator {
    /// An evaluator with the default step budget.
    pub fn new() -> Evaluator {
        Evaluator::default()
    }

    /// An evaluator with a custom step budget.
    pub fn with_fuel(fuel: u64) -> Evaluator {
        Evaluator {
            fuel,
            initial_fuel: fuel,
        }
    }

    /// Fuel still available.
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// Fuel charged so far (evaluation steps performed).
    pub fn fuel_used(&self) -> u64 {
        self.initial_fuel - self.fuel
    }

    /// Evaluates a closed expression.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on primitive failure (division by
    /// zero), fuel exhaustion, or — for ill-typed input only — stuck
    /// states.
    pub fn eval(&mut self, e: &FExpr) -> Result<Value, EvalError> {
        self.eval_in(&Env::new(), e)
    }

    /// Evaluates under an environment.
    ///
    /// # Errors
    ///
    /// See [`Evaluator::eval`].
    pub fn eval_in(&mut self, env: &Env, e: &FExpr) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        match e {
            FExpr::Int(n) => Ok(Value::Int(*n)),
            FExpr::Bool(b) => Ok(Value::Bool(*b)),
            FExpr::Str(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            FExpr::Unit => Ok(Value::Unit),
            FExpr::Var(x) => {
                let node = env.get(*x).ok_or(EvalError::UnboundVar(*x))?;
                match &node.value {
                    Binding::Done(v) => Ok(v.clone()),
                    Binding::Rec { body, env: renv } => {
                        // Unfold one step: evaluate the fix body with
                        // the recursive binding visible again.
                        let unfold_env = renv.bind_rec(*x, body.clone());
                        self.eval_in(&unfold_env, body)
                    }
                }
            }
            FExpr::Lam(x, _, b) => Ok(Value::Closure {
                param: *x,
                body: b.clone(),
                env: env.clone(),
            }),
            FExpr::App(f, a) => {
                let vf = self.eval_in(env, f)?;
                let va = self.eval_in(env, a)?;
                self.apply(vf, va)
            }
            FExpr::TyAbs(_, b) => Ok(Value::TyClosure {
                body: b.clone(),
                env: env.clone(),
            }),
            FExpr::TyApp(f, _) => {
                let vf = self.eval_in(env, f)?;
                match vf {
                    Value::TyClosure { body, env } => self.eval_in(&env, &body),
                    other => Err(EvalError::Stuck(format!(
                        "type application of non-type-abstraction {other}"
                    ))),
                }
            }
            FExpr::If(c, t, el) => match self.eval_in(env, c)? {
                Value::Bool(true) => self.eval_in(env, t),
                Value::Bool(false) => self.eval_in(env, el),
                other => Err(EvalError::Stuck(format!("if on non-boolean {other}"))),
            },
            FExpr::BinOp(op, a, b) => {
                let va = self.eval_in(env, a)?;
                let vb = self.eval_in(env, b)?;
                binop(*op, va, vb)
            }
            FExpr::UnOp(op, a) => {
                let va = self.eval_in(env, a)?;
                match (op, va) {
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(-n)),
                    (UnOp::IntToStr, Value::Int(n)) => Ok(Value::Str(Rc::from(n.to_string()))),
                    (op, v) => Err(EvalError::Stuck(format!("{op:?} on {v}"))),
                }
            }
            FExpr::Pair(a, b) => Ok(Value::Pair(
                Rc::new(self.eval_in(env, a)?),
                Rc::new(self.eval_in(env, b)?),
            )),
            // Elimination forms take their payload by move when the
            // scrutinee value is uniquely owned (the common case for
            // freshly built intermediates), falling back to a clone
            // only for shared values.
            FExpr::Fst(a) => match self.eval_in(env, a)? {
                Value::Pair(l, _) => Ok(Rc::try_unwrap(l).unwrap_or_else(|rc| (*rc).clone())),
                other => Err(EvalError::Stuck(format!("fst on {other}"))),
            },
            FExpr::Snd(a) => match self.eval_in(env, a)? {
                Value::Pair(_, r) => Ok(Rc::try_unwrap(r).unwrap_or_else(|rc| (*rc).clone())),
                other => Err(EvalError::Stuck(format!("snd on {other}"))),
            },
            FExpr::Nil(_) => Ok(Value::List(Rc::new(Vec::new()))),
            FExpr::Cons(h, t) => {
                let vh = self.eval_in(env, h)?;
                match self.eval_in(env, t)? {
                    Value::List(xs) => match Rc::try_unwrap(xs) {
                        Ok(mut owned) => {
                            owned.insert(0, vh);
                            Ok(Value::List(Rc::new(owned)))
                        }
                        Err(shared) => {
                            let mut out = Vec::with_capacity(shared.len() + 1);
                            out.push(vh);
                            out.extend(shared.iter().cloned());
                            Ok(Value::List(Rc::new(out)))
                        }
                    },
                    other => Err(EvalError::Stuck(format!("cons onto {other}"))),
                }
            }
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => match self.eval_in(env, scrut)? {
                Value::List(xs) => match Rc::try_unwrap(xs) {
                    Ok(mut owned) => {
                        if owned.is_empty() {
                            self.eval_in(env, nil)
                        } else {
                            let h = owned.remove(0);
                            let env2 = env.bind(*head, h).bind(*tail, Value::List(Rc::new(owned)));
                            self.eval_in(&env2, cons)
                        }
                    }
                    Err(shared) => {
                        if let Some((h, rest)) = shared.split_first() {
                            let env2 = env
                                .bind(*head, h.clone())
                                .bind(*tail, Value::List(Rc::new(rest.to_vec())));
                            self.eval_in(&env2, cons)
                        } else {
                            self.eval_in(env, nil)
                        }
                    }
                },
                other => Err(EvalError::Stuck(format!("case on {other}"))),
            },
            FExpr::Fix(x, _, b) => {
                let env2 = env.bind_rec(*x, b.clone());
                self.eval_in(&env2, b)
            }
            FExpr::Make(name, _, fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (u, fe) in fields {
                    out.push((*u, self.eval_in(env, fe)?));
                }
                Ok(Value::Record {
                    name: *name,
                    fields: Rc::new(out),
                })
            }
            FExpr::Inject(ctor, _, args) => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.eval_in(env, a)?);
                }
                Ok(Value::Data {
                    ctor: *ctor,
                    fields: Rc::new(out),
                })
            }
            FExpr::Match(scrut, arms) => match self.eval_in(env, scrut)? {
                Value::Data { ctor, fields } => {
                    let Some(arm) = arms.iter().find(|a| a.ctor == ctor) else {
                        return Err(EvalError::Stuck(format!("no arm for `{ctor}`")));
                    };
                    if arm.binders.len() != fields.len() {
                        return Err(EvalError::Stuck(format!(
                            "arm `{ctor}` binder count mismatch"
                        )));
                    }
                    let mut env2 = env.clone();
                    match Rc::try_unwrap(fields) {
                        Ok(owned) => {
                            for (b, v) in arm.binders.iter().zip(owned) {
                                env2 = env2.bind(*b, v);
                            }
                        }
                        Err(shared) => {
                            for (b, v) in arm.binders.iter().zip(shared.iter()) {
                                env2 = env2.bind(*b, v.clone());
                            }
                        }
                    }
                    self.eval_in(&env2, &arm.body)
                }
                other => Err(EvalError::Stuck(format!("match on {other}"))),
            },
            FExpr::Proj(rec, field) => match self.eval_in(env, rec)? {
                Value::Record { name, fields } => {
                    let Some(pos) = fields.iter().position(|(u, _)| u == field) else {
                        return Err(EvalError::Stuck(format!(
                            "record {name} has no field {field}"
                        )));
                    };
                    Ok(match Rc::try_unwrap(fields) {
                        Ok(mut owned) => owned.swap_remove(pos).1,
                        Err(shared) => shared[pos].1.clone(),
                    })
                }
                other => Err(EvalError::Stuck(format!("projection on {other}"))),
            },
        }
    }

    /// Applies a function value.
    ///
    /// # Errors
    ///
    /// See [`Evaluator::eval`].
    pub fn apply(&mut self, f: Value, a: Value) -> Result<Value, EvalError> {
        match f {
            Value::Closure { param, body, env } => {
                let env2 = env.bind(param, a);
                self.eval_in(&env2, &body)
            }
            other => Err(EvalError::NotAFunction(other.to_string())),
        }
    }
}

pub(crate) fn binop(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match (op, &a, &b) {
        (Add, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
        (Sub, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_sub(*y))),
        (Mul, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_mul(*y))),
        (Div, Value::Int(_), Value::Int(0)) | (Mod, Value::Int(_), Value::Int(0)) => {
            Err(EvalError::DivisionByZero)
        }
        (Div, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_div(*y))),
        (Mod, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_rem(*y))),
        (Lt, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x < y)),
        (Le, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x <= y)),
        (And, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x && *y)),
        (Or, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x || *y)),
        (Concat, Value::Str(x), Value::Str(y)) => {
            Ok(Value::Str(Rc::from(format!("{x}{y}").as_str())))
        }
        (Eq, a, b) => a
            .try_eq(b)
            .map(Value::Bool)
            .ok_or_else(|| EvalError::Stuck("equality on closures".into())),
        (op, a, b) => Err(EvalError::Stuck(format!("{op:?} on {a} and {b}"))),
    }
}

/// Convenience: evaluate a closed expression with default fuel.
///
/// # Errors
///
/// See [`Evaluator::eval`].
pub fn eval(e: &FExpr) -> Result<Value, EvalError> {
    Evaluator::new().eval(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::FType;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn literals_and_arithmetic() {
        let e = FExpr::BinOp(
            BinOp::Add,
            Rc::new(FExpr::Int(40)),
            Rc::new(FExpr::BinOp(
                BinOp::Mul,
                Rc::new(FExpr::Int(1)),
                Rc::new(FExpr::Int(2)),
            )),
        );
        assert!(matches!(eval(&e).unwrap(), Value::Int(42)));
    }

    #[test]
    fn beta_reduction() {
        let e = FExpr::app(
            FExpr::lam(
                "x",
                FType::Int,
                FExpr::BinOp(BinOp::Add, Rc::new(FExpr::var("x")), Rc::new(FExpr::Int(1))),
            ),
            FExpr::Int(41),
        );
        assert!(matches!(eval(&e).unwrap(), Value::Int(42)));
    }

    #[test]
    fn type_application_forces_body() {
        let a = v("a");
        let id = FExpr::ty_abs([a], FExpr::lam("x", FType::Var(a), FExpr::var("x")));
        let e = FExpr::app(FExpr::TyApp(Rc::new(id), FType::Int), FExpr::Int(7));
        assert!(matches!(eval(&e).unwrap(), Value::Int(7)));
    }

    #[test]
    fn factorial_via_fix() {
        let fac_ty = FType::arrow(FType::Int, FType::Int);
        let fac = FExpr::Fix(
            v("fac"),
            fac_ty,
            Rc::new(FExpr::lam(
                "n",
                FType::Int,
                FExpr::If(
                    Rc::new(FExpr::BinOp(
                        BinOp::Le,
                        Rc::new(FExpr::var("n")),
                        Rc::new(FExpr::Int(0)),
                    )),
                    Rc::new(FExpr::Int(1)),
                    Rc::new(FExpr::BinOp(
                        BinOp::Mul,
                        Rc::new(FExpr::var("n")),
                        Rc::new(FExpr::app(
                            FExpr::var("fac"),
                            FExpr::BinOp(
                                BinOp::Sub,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::Int(1)),
                            ),
                        )),
                    )),
                ),
            )),
        );
        let e = FExpr::app(fac, FExpr::Int(6));
        assert!(matches!(eval(&e).unwrap(), Value::Int(720)));
    }

    #[test]
    fn divergence_runs_out_of_fuel() {
        let loop_ty = FType::arrow(FType::Int, FType::Int);
        let looping = FExpr::Fix(
            v("loop"),
            loop_ty,
            Rc::new(FExpr::lam(
                "n",
                FType::Int,
                FExpr::app(FExpr::var("loop"), FExpr::var("n")),
            )),
        );
        let e = FExpr::app(looping, FExpr::Int(0));
        let mut ev = Evaluator::with_fuel(500);
        assert_eq!(ev.eval(&e).unwrap_err(), EvalError::OutOfFuel);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = FExpr::BinOp(BinOp::Div, Rc::new(FExpr::Int(1)), Rc::new(FExpr::Int(0)));
        assert_eq!(eval(&e).unwrap_err(), EvalError::DivisionByZero);
    }

    #[test]
    fn lists_and_case() {
        let xs = FExpr::Cons(
            Rc::new(FExpr::Int(1)),
            Rc::new(FExpr::Cons(
                Rc::new(FExpr::Int(2)),
                Rc::new(FExpr::Nil(FType::Int)),
            )),
        );
        let e = FExpr::ListCase {
            scrut: Rc::new(xs),
            nil: Rc::new(FExpr::Int(0)),
            head: v("h"),
            tail: v("t"),
            cons: Rc::new(FExpr::var("h")),
        };
        assert!(matches!(eval(&e).unwrap(), Value::Int(1)));
    }

    #[test]
    fn records_project() {
        let lit = FExpr::Make(
            v("P"),
            vec![],
            vec![(v("x"), FExpr::Int(3)), (v("y"), FExpr::Int(4))],
        );
        let e = FExpr::Proj(Rc::new(lit), v("y"));
        assert!(matches!(eval(&e).unwrap(), Value::Int(4)));
    }

    #[test]
    fn string_operations() {
        let e = FExpr::BinOp(
            BinOp::Concat,
            Rc::new(FExpr::Str("1,".into())),
            Rc::new(FExpr::UnOp(UnOp::IntToStr, Rc::new(FExpr::Int(23)))),
        );
        match eval(&e).unwrap() {
            Value::Str(s) => assert_eq!(&*s, "1,23"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn value_equality_on_pairs_and_lists() {
        let a = Value::Pair(Rc::new(Value::Int(1)), Rc::new(Value::Bool(true)));
        let b = Value::Pair(Rc::new(Value::Int(1)), Rc::new(Value::Bool(true)));
        assert_eq!(a.try_eq(&b), Some(true));
        let c = Value::List(Rc::new(vec![Value::Int(1)]));
        let d = Value::List(Rc::new(vec![Value::Int(2)]));
        assert_eq!(c.try_eq(&d), Some(false));
    }

    #[test]
    fn mutual_shadowing_in_env() {
        // (\x. (\x. x) 2) 1 = 2
        let inner = FExpr::app(FExpr::lam("x", FType::Int, FExpr::var("x")), FExpr::Int(2));
        let e = FExpr::app(FExpr::lam("x", FType::Int, inner), FExpr::Int(1));
        assert!(matches!(eval(&e).unwrap(), Value::Int(2)));
    }
}
