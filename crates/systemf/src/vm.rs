//! A bytecode virtual machine for compiled System F (see
//! [`crate::compile`]).
//!
//! The VM executes the flat instruction stream produced by
//! [`Compiler`] with heap-allocated register/frame stacks and a
//! single dispatch loop — no host-stack recursion, so arbitrarily
//! deep programs run in constant host stack (the tree-walking
//! [`crate::eval::Evaluator`] needs the 64 MB worker stacks of
//! `implicit_pipeline::driver` for the same programs).
//!
//! Two dispatch loops back the two ISAs: the default **register**
//! loop is stackless — every frame is one flat window of registers
//! holding parameters, binders, and temporaries, results are written
//! straight to the caller's destination register on return, and
//! there is no operand stack at all — while the **stack** loop
//! executes the PR 6 push/pop ISA unchanged as the differential
//! baseline. Both share the word representation, the arena, fuel
//! accounting, tail-call frame reuse, the fix-unfold cache, and the
//! `Match` inline caches.
//!
//! ## Value representation
//!
//! The hot loop does not traffic in [`Value`] at all. Operands are
//! tagged words ([`Word`]): a `Copy` scalar that carries ints, bools,
//! unit, and the empty list inline and represents every compound
//! value as an index into a per-run bump arena ([`Heap`]). Pushing,
//! popping, and binding locals are plain 16-byte copies — no
//! refcount traffic, no `Drop` glue, no per-node boxes. Pairs,
//! cons cells, closures, records, and data values are appended to
//! the arena and never freed mid-run (the language is pure and the
//! run is fuel-bounded); the arena is dropped wholesale when the run
//! finishes. The public boundary is unchanged: [`Vm::run`] takes
//! `&[Value]` globals and returns a [`Value`], importing and
//! exporting at the edges.
//!
//! ## Semantics
//!
//! Semantics mirror the tree-walker exactly: call-by-value, eager
//! (non-short-circuit) `&&`/`||`, unfold-one-step `fix`, and the same
//! [`EvalError`] kinds and messages, so a differential oracle can
//! compare the two backends verbatim. Fuel is decremented once per
//! *frame entry* (call, force, fix unfold) rather than per node;
//! since every frame entry corresponds to at least one tree-walker
//! node visit, a program that finishes under the tree-walker's budget
//! always finishes under the same VM budget. Inline caches and
//! superinstructions only ever *skip* work — they never charge or
//! save fuel — so the comparability invariant is untouched.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use implicit_core::symbol::Symbol;

use crate::compile::{
    mnemonic, CapSrc, CodeObject, CompileError, Compiler, Instr, Isa, RK_CONST, RK_MASK,
};
use crate::eval::{EvalError, Value};
use crate::syntax::{BinOp, FExpr, UnOp};

/// A flat compiled closure at the [`Value`] boundary: a function
/// index plus the captured values, materialized at creation time.
/// Inside a run the VM uses arena-resident [`HClosure`]s instead;
/// this type only appears when a closure crosses the boundary (a
/// session global, or a program whose result is a function).
#[derive(Debug)]
pub struct VmClosure {
    /// Index into [`CodeObject::funcs`].
    pub func: u32,
    /// Captured values, parallel to the function's capture
    /// directives. A `fix` self-reference is stored as the
    /// [`Value::CompiledRec`] sentinel.
    pub captures: Vec<Value>,
}

impl VmClosure {
    fn new(func: u32, captures: Vec<Value>) -> VmClosure {
        VmClosure { func, captures }
    }
}

/// The tagged-word operand representation. `Copy`, 16 bytes:
/// scalars are carried inline, compound values are indices into the
/// run's [`Heap`] arena.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Word {
    /// Integer, inline.
    Int(i64),
    /// Boolean, inline.
    Bool(bool),
    /// Unit, inline.
    Unit,
    /// The empty list, inline.
    Nil,
    /// String: index into [`Heap::strs`].
    Str(u32),
    /// Pair: index into [`Heap::pairs`].
    Pair(u32),
    /// Non-empty list: index of a cons cell in [`Heap::conses`].
    Cons(u32),
    /// Function closure: index into [`Heap::clos`].
    Clo(u32),
    /// Type-abstraction thunk: index into [`Heap::clos`].
    TyClo(u32),
    /// `fix` self-reference sentinel: index into [`Heap::clos`].
    /// Loading it from a capture unfolds the recursion one step.
    Rec(u32),
    /// Record: index into [`Heap::records`].
    Record(u32),
    /// Data (constructor application): index into [`Heap::datas`].
    Data(u32),
    /// An opaque boundary value the word representation cannot carry
    /// (a tree-walker closure passed in as a global): index into
    /// [`Heap::exts`]. Only ever observed by error paths and
    /// equality, exactly like the tree-walker would.
    Ext(u32),
}

/// An arena-resident closure.
struct HClosure {
    func: u32,
    captures: Vec<Word>,
    /// One-step unfolding cache, used only when this closure is a
    /// `fix` body: the language is pure, so re-running the body
    /// always yields the same value, and a recursive loop would
    /// otherwise re-enter it (and re-allocate its result closure) on
    /// every iteration. Caching only ever *reduces* fuel charged, so
    /// the tree-walker-comparability invariant is preserved.
    unfolded: Cell<Option<Word>>,
}

/// An arena-resident record.
struct HRecord {
    name: Symbol,
    fields: Rc<[Symbol]>,
    vals: Vec<Word>,
}

/// An arena-resident data value.
struct HData {
    ctor: Symbol,
    fields: Vec<Word>,
}

/// The per-run bump arena. Every compound value a run creates lives
/// here, addressed by the `u32` payload of its [`Word`]; nothing is
/// freed until the whole arena drops at the end of the run.
#[derive(Default)]
struct Heap {
    pairs: Vec<(Word, Word)>,
    /// Cons cells `(head, tail)`; `tail` is `Nil` or `Cons`. O(1)
    /// cons, structure sharing for tails — the same shape the
    /// tree-walker gets from `Rc` sharing, without the refcounts.
    conses: Vec<(Word, Word)>,
    strs: Vec<Rc<str>>,
    clos: Vec<HClosure>,
    records: Vec<HRecord>,
    datas: Vec<HData>,
    exts: Vec<Value>,
}

impl Heap {
    fn alloc_clo(&mut self, func: u32, captures: Vec<Word>) -> u32 {
        let i = self.clos.len() as u32;
        self.clos.push(HClosure {
            func,
            captures,
            unfolded: Cell::new(None),
        });
        i
    }
}

/// Imports a boundary [`Value`] into the arena.
fn import(v: &Value, heap: &mut Heap) -> Word {
    match v {
        Value::Int(n) => Word::Int(*n),
        Value::Bool(b) => Word::Bool(*b),
        Value::Unit => Word::Unit,
        Value::Str(s) => {
            heap.strs.push(s.clone());
            Word::Str((heap.strs.len() - 1) as u32)
        }
        Value::Pair(a, b) => {
            let wa = import(a, heap);
            let wb = import(b, heap);
            heap.pairs.push((wa, wb));
            Word::Pair((heap.pairs.len() - 1) as u32)
        }
        Value::List(xs) => {
            let mut acc = Word::Nil;
            for x in xs.iter().rev() {
                let h = import(x, heap);
                heap.conses.push((h, acc));
                acc = Word::Cons((heap.conses.len() - 1) as u32);
            }
            acc
        }
        Value::Record { name, fields } => {
            let syms: Rc<[Symbol]> = fields.iter().map(|(u, _)| *u).collect();
            let vals: Vec<Word> = fields.iter().map(|(_, v)| import(v, heap)).collect();
            heap.records.push(HRecord {
                name: *name,
                fields: syms,
                vals,
            });
            Word::Record((heap.records.len() - 1) as u32)
        }
        Value::Data { ctor, fields } => {
            let vals: Vec<Word> = fields.iter().map(|v| import(v, heap)).collect();
            heap.datas.push(HData {
                ctor: *ctor,
                fields: vals,
            });
            Word::Data((heap.datas.len() - 1) as u32)
        }
        Value::CompiledClosure(rc) => {
            let caps: Vec<Word> = rc.captures.iter().map(|c| import(c, heap)).collect();
            Word::Clo(heap.alloc_clo(rc.func, caps))
        }
        Value::CompiledTyClosure(rc) => {
            let caps: Vec<Word> = rc.captures.iter().map(|c| import(c, heap)).collect();
            Word::TyClo(heap.alloc_clo(rc.func, caps))
        }
        Value::CompiledRec(rc) => {
            let caps: Vec<Word> = rc.captures.iter().map(|c| import(c, heap)).collect();
            Word::Rec(heap.alloc_clo(rc.func, caps))
        }
        // Tree-walker closures have no compiled code to point at;
        // carry them opaquely (they can only be observed by error
        // messages and closure-equality errors, same as the
        // tree-walker).
        Value::Closure { .. } | Value::TyClosure { .. } => {
            heap.exts.push(v.clone());
            Word::Ext((heap.exts.len() - 1) as u32)
        }
    }
}

/// Exports an arena word back to a boundary [`Value`].
fn export(w: Word, heap: &Heap) -> Value {
    match w {
        Word::Int(n) => Value::Int(n),
        Word::Bool(b) => Value::Bool(b),
        Word::Unit => Value::Unit,
        Word::Nil => Value::List(Rc::new(Vec::new())),
        Word::Str(i) => Value::Str(heap.strs[i as usize].clone()),
        Word::Pair(i) => {
            let (a, b) = heap.pairs[i as usize];
            Value::Pair(Rc::new(export(a, heap)), Rc::new(export(b, heap)))
        }
        Word::Cons(_) => {
            let mut xs = Vec::new();
            let mut cur = w;
            while let Word::Cons(i) = cur {
                let (h, t) = heap.conses[i as usize];
                xs.push(export(h, heap));
                cur = t;
            }
            Value::List(Rc::new(xs))
        }
        Word::Record(i) => {
            let r = &heap.records[i as usize];
            let fields: Vec<(Symbol, Value)> = r
                .fields
                .iter()
                .copied()
                .zip(r.vals.iter().map(|v| export(*v, heap)))
                .collect();
            Value::Record {
                name: r.name,
                fields: Rc::new(fields),
            }
        }
        Word::Data(i) => {
            let d = &heap.datas[i as usize];
            Value::Data {
                ctor: d.ctor,
                fields: Rc::new(d.fields.iter().map(|v| export(*v, heap)).collect()),
            }
        }
        Word::Clo(i) => {
            let c = &heap.clos[i as usize];
            Value::CompiledClosure(Rc::new(VmClosure::new(
                c.func,
                c.captures.iter().map(|w| export(*w, heap)).collect(),
            )))
        }
        Word::TyClo(i) => {
            let c = &heap.clos[i as usize];
            Value::CompiledTyClosure(Rc::new(VmClosure::new(
                c.func,
                c.captures.iter().map(|w| export(*w, heap)).collect(),
            )))
        }
        Word::Rec(i) => {
            let c = &heap.clos[i as usize];
            Value::CompiledRec(Rc::new(VmClosure::new(
                c.func,
                c.captures.iter().map(|w| export(*w, heap)).collect(),
            )))
        }
        Word::Ext(i) => heap.exts[i as usize].clone(),
    }
}

/// Renders a word the way the tree-walker renders the equivalent
/// [`Value`] — error paths only.
fn show(w: Word, heap: &Heap) -> String {
    export(w, heap).to_string()
}

/// Structural equality on first-order words (`None` when a closure is
/// involved), mirroring [`Value::try_eq`] decision-for-decision —
/// including its length-before-elements short-circuiting, so the two
/// backends stick (or don't) on exactly the same comparisons.
fn word_eq(a: Word, b: Word, heap: &Heap) -> Option<bool> {
    match (a, b) {
        (Word::Int(x), Word::Int(y)) => Some(x == y),
        (Word::Bool(x), Word::Bool(y)) => Some(x == y),
        (Word::Unit, Word::Unit) => Some(true),
        (Word::Str(x), Word::Str(y)) => Some(heap.strs[x as usize] == heap.strs[y as usize]),
        (Word::Pair(p), Word::Pair(q)) => {
            let (a1, b1) = heap.pairs[p as usize];
            let (a2, b2) = heap.pairs[q as usize];
            if !word_eq(a1, a2, heap)? {
                return Some(false);
            }
            word_eq(b1, b2, heap)
        }
        (Word::Nil, Word::Nil) => Some(true),
        (Word::Nil, Word::Cons(_)) | (Word::Cons(_), Word::Nil) => Some(false),
        (Word::Cons(_), Word::Cons(_)) => {
            if list_len(a, heap) != list_len(b, heap) {
                return Some(false);
            }
            let (mut x, mut y) = (a, b);
            while let (Word::Cons(i), Word::Cons(j)) = (x, y) {
                let (hx, tx) = heap.conses[i as usize];
                let (hy, ty) = heap.conses[j as usize];
                if !word_eq(hx, hy, heap)? {
                    return Some(false);
                }
                x = tx;
                y = ty;
            }
            Some(true)
        }
        (Word::Data(x), Word::Data(y)) => {
            let dx = &heap.datas[x as usize];
            let dy = &heap.datas[y as usize];
            if dx.ctor != dy.ctor || dx.fields.len() != dy.fields.len() {
                return Some(false);
            }
            for (u, v) in dx.fields.iter().zip(dy.fields.iter()) {
                if !word_eq(*u, *v, heap)? {
                    return Some(false);
                }
            }
            Some(true)
        }
        (Word::Record(x), Word::Record(y)) => {
            let rx = &heap.records[x as usize];
            let ry = &heap.records[y as usize];
            if rx.name != ry.name || rx.fields.len() != ry.fields.len() {
                return Some(false);
            }
            for (i, (u1, u2)) in rx.fields.iter().zip(ry.fields.iter()).enumerate() {
                if u1 != u2 {
                    return Some(false);
                }
                if !word_eq(rx.vals[i], ry.vals[i], heap)? {
                    return Some(false);
                }
            }
            Some(true)
        }
        _ => None,
    }
}

fn list_len(mut w: Word, heap: &Heap) -> usize {
    let mut n = 0;
    while let Word::Cons(i) = w {
        n += 1;
        w = heap.conses[i as usize].1;
    }
    n
}

/// Word-level primitive application, byte-identical in results and
/// error messages to [`crate::eval`]'s `binop`.
#[inline]
fn binop_w(op: BinOp, a: Word, b: Word, heap: &mut Heap) -> Result<Word, EvalError> {
    use BinOp::*;
    match (op, a, b) {
        (Add, Word::Int(x), Word::Int(y)) => Ok(Word::Int(x.wrapping_add(y))),
        (Sub, Word::Int(x), Word::Int(y)) => Ok(Word::Int(x.wrapping_sub(y))),
        (Mul, Word::Int(x), Word::Int(y)) => Ok(Word::Int(x.wrapping_mul(y))),
        (Div, Word::Int(_), Word::Int(0)) | (Mod, Word::Int(_), Word::Int(0)) => {
            Err(EvalError::DivisionByZero)
        }
        (Div, Word::Int(x), Word::Int(y)) => Ok(Word::Int(x.wrapping_div(y))),
        (Mod, Word::Int(x), Word::Int(y)) => Ok(Word::Int(x.wrapping_rem(y))),
        (Lt, Word::Int(x), Word::Int(y)) => Ok(Word::Bool(x < y)),
        (Le, Word::Int(x), Word::Int(y)) => Ok(Word::Bool(x <= y)),
        (And, Word::Bool(x), Word::Bool(y)) => Ok(Word::Bool(x && y)),
        (Or, Word::Bool(x), Word::Bool(y)) => Ok(Word::Bool(x || y)),
        (Concat, Word::Str(x), Word::Str(y)) => {
            let s = format!("{}{}", heap.strs[x as usize], heap.strs[y as usize]);
            heap.strs.push(Rc::from(s.as_str()));
            Ok(Word::Str((heap.strs.len() - 1) as u32))
        }
        (Eq, a, b) => word_eq(a, b, heap)
            .map(Word::Bool)
            .ok_or_else(|| EvalError::Stuck("equality on closures".into())),
        (op, a, b) => Err(EvalError::Stuck(format!(
            "{op:?} on {} and {}",
            show(a, heap),
            show(b, heap)
        ))),
    }
}

/// Frame sentinel for "no closure / not a fix body".
const NONE: u32 = u32::MAX;

/// One activation record. `stack_base`/`locals_base` delimit the
/// frame's slices of the shared operand and locals stacks; `clo` and
/// `rec` are arena closure indices (or [`NONE`]).
struct Frame {
    func: u32,
    ip: usize,
    stack_base: usize,
    locals_base: usize,
    clo: u32,
    rec: u32,
}

/// One register-ISA activation record. The frame's register window
/// is `regs[base..base + nslots]`; `ret_dst` is the absolute index
/// (inside the *caller's* window) that receives this frame's result.
struct RFrame {
    func: u32,
    ip: usize,
    base: usize,
    clo: u32,
    rec: u32,
    ret_dst: usize,
}

/// The virtual machine, carrying the same kind of step budget as the
/// tree-walker (counted per frame entry).
pub struct Vm {
    fuel: u64,
    initial_fuel: u64,
    tail_calls: u64,
    fix_unfolds: u64,
    match_ic_hits: u64,
    match_ic_misses: u64,
    profile: bool,
    dispatch_counts: HashMap<&'static str, u64>,
}

/// Execution counters of one [`Vm`], cumulative over its lifetime
/// (feeds the `vm_run` trace event and the metrics registry).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct VmStats {
    /// Fuel charged (frame pushes + tail calls).
    pub fuel_used: u64,
    /// Tail calls that reused the running frame.
    pub tail_calls: u64,
    /// `fix` unfolds answered by the per-closure unfold cache.
    pub fix_unfolds: u64,
    /// Match dispatches answered by the match-site inline cache
    /// (last-arm probe succeeded).
    pub match_ic_hits: u64,
    /// Match dispatches that fell back to the linear arm scan (and
    /// refilled the cache).
    pub match_ic_misses: u64,
}

impl Default for Vm {
    fn default() -> Vm {
        Vm::with_fuel(10_000_000)
    }
}

impl Vm {
    /// A VM with the default budget (matching
    /// [`crate::eval::Evaluator`]'s).
    pub fn new() -> Vm {
        Vm::default()
    }

    /// A VM with a custom budget.
    pub fn with_fuel(fuel: u64) -> Vm {
        Vm {
            fuel,
            initial_fuel: fuel,
            tail_calls: 0,
            fix_unfolds: 0,
            match_ic_hits: 0,
            match_ic_misses: 0,
            profile: false,
            dispatch_counts: HashMap::new(),
        }
    }

    /// Enables per-opcode dispatch profiling for register-ISA runs:
    /// every executed instruction is counted by mnemonic. Off by
    /// default — profiling selects a separately monomorphized
    /// dispatch loop, so the unprofiled hot path pays nothing.
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on;
    }

    /// The per-opcode dispatch histogram accumulated while profiling
    /// was enabled, most-executed first (ties broken
    /// lexicographically for determinism).
    pub fn dispatch_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.dispatch_counts.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Fuel still available.
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// The cumulative execution counters.
    pub fn stats(&self) -> VmStats {
        VmStats {
            fuel_used: self.initial_fuel - self.fuel,
            tail_calls: self.tail_calls,
            fix_unfolds: self.fix_unfolds,
            match_ic_hits: self.match_ic_hits,
            match_ic_misses: self.match_ic_misses,
        }
    }

    /// Runs function `main` of `code` to completion. `globals` must
    /// be parallel to the owning [`Compiler`]'s global table.
    ///
    /// Creates a fresh bump arena for the run, imports the constant
    /// pool and globals into it, executes the word-level dispatch
    /// loop, and exports the result.
    ///
    /// # Errors
    ///
    /// The same conditions as [`crate::eval::Evaluator::eval`]:
    /// primitive failures, fuel exhaustion, and — for code compiled
    /// from ill-typed terms only — stuck states.
    pub fn run(
        &mut self,
        code: &CodeObject,
        main: u32,
        globals: &[Value],
    ) -> Result<Value, EvalError> {
        let mut heap = Heap::default();
        let wconsts: Vec<Word> = code.consts.iter().map(|v| import(v, &mut heap)).collect();
        let wglobals: Vec<Word> = globals.iter().map(|v| import(v, &mut heap)).collect();
        match code.isa {
            Isa::Register if self.profile => {
                self.run_regs::<true>(code, main, &wconsts, &wglobals, &mut heap)
            }
            Isa::Register => self.run_regs::<false>(code, main, &wconsts, &wglobals, &mut heap),
            Isa::Stack => self.run_words(code, main, &wconsts, &wglobals, &mut heap),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_words(
        &mut self,
        code: &CodeObject,
        main: u32,
        wconsts: &[Word],
        wglobals: &[Word],
        heap: &mut Heap,
    ) -> Result<Value, EvalError> {
        let mut stack: Vec<Word> = Vec::new();
        let mut locals: Vec<Word> = Vec::new();
        let mut frames: Vec<Frame> = Vec::new();
        self.enter(code, &mut frames, &mut locals, 0, main, None, NONE, NONE)?;
        // Dispatch registers: the hot loop reads these instead of
        // chasing `frames.last()` and double-indexing `code.funcs` on
        // every instruction. The mutable ones are written back to the
        // `Frame` on a call (so `Ret` can resume the caller) and all
        // are reloaded on every frame push/pop; in between — notably
        // across the tail calls of a compiled loop — the `Frame` may
        // be stale and the registers are authoritative.
        let mut ip: usize = 0;
        let mut locals_base: usize = 0;
        let mut stack_base: usize = 0;
        let mut cur_func: u32 = main;
        let mut cur_clo: u32 = NONE;
        let mut cur_rec: u32 = NONE;
        let mut fcode: &[Instr] = &code.funcs[main as usize].code;
        macro_rules! reload {
            () => {{
                let fr = frames.last().expect("active frame");
                ip = fr.ip;
                locals_base = fr.locals_base;
                stack_base = fr.stack_base;
                cur_func = fr.func;
                cur_clo = fr.clo;
                cur_rec = fr.rec;
                fcode = &code.funcs[fr.func as usize].code;
            }};
        }
        macro_rules! save_frame {
            () => {{
                let fr = frames.last_mut().expect("active frame");
                fr.ip = ip;
                fr.func = cur_func;
                fr.clo = cur_clo;
                fr.rec = cur_rec;
            }};
        }
        /// Unfolds a `fix` self-reference: push the cached one-step
        /// result, or re-enter the fix body.
        macro_rules! unfold {
            ($ix:expr) => {{
                let ix = $ix;
                match heap.clos[ix as usize].unfolded.get() {
                    Some(v) => {
                        self.fix_unfolds += 1;
                        stack.push(v);
                    }
                    None => {
                        save_frame!();
                        let func = heap.clos[ix as usize].func;
                        self.enter(
                            code,
                            &mut frames,
                            &mut locals,
                            stack.len(),
                            func,
                            None,
                            ix,
                            ix,
                        )?;
                        reload!();
                    }
                }
            }};
        }
        /// Pops the current frame with `$result`, writing the fix
        /// unfold cache and resuming the caller (or returning the
        /// exported result when the last frame pops).
        macro_rules! do_ret {
            ($result:expr) => {{
                let result: Word = $result;
                frames.pop().expect("returning frame");
                stack.truncate(stack_base);
                locals.truncate(locals_base);
                // A frame with a `rec` handle is a fix-body
                // unfolding; remember its result so later unfolds
                // of the same fix skip the re-entry.
                if cur_rec != NONE {
                    heap.clos[cur_rec as usize].unfolded.set(Some(result));
                }
                if frames.is_empty() {
                    return Ok(export(result, heap));
                }
                stack.push(result);
                reload!();
            }};
        }
        /// Replaces the current frame in place with a call to
        /// `$callee` (which must be a closure) on `$arg`. Charged like
        /// a call, so the fuel comparability invariant is unchanged.
        /// A *self* tail call — the shape of every compiled loop —
        /// reuses the frame as-is: the layout is identical, and locals
        /// beyond the argument slot are dead until rebound (binder
        /// slots are always written by `Match`/`CaseList` before any
        /// read).
        macro_rules! do_tailcall {
            ($callee:expr, $arg:expr) => {{
                let arg: Word = $arg;
                match $callee {
                    Word::Clo(ix) => {
                        if self.fuel == 0 {
                            return Err(EvalError::OutOfFuel);
                        }
                        self.fuel -= 1;
                        self.tail_calls += 1;
                        let func = heap.clos[ix as usize].func;
                        stack.truncate(stack_base);
                        if func == cur_func {
                            locals[locals_base] = arg;
                        } else {
                            locals.truncate(locals_base);
                            let nslots = code.funcs[func as usize].nslots;
                            locals.push(arg);
                            for _ in 1..nslots {
                                locals.push(Word::Unit);
                            }
                            cur_func = func;
                            fcode = &code.funcs[func as usize].code;
                        }
                        cur_rec = NONE;
                        cur_clo = ix;
                        ip = 0;
                    }
                    other => return Err(EvalError::NotAFunction(show(other, heap))),
                }
            }};
        }
        loop {
            let instr = fcode[ip];
            ip += 1;
            match instr {
                Instr::Const(i) => stack.push(wconsts[i as usize]),
                Instr::Local(s) => stack.push(locals[locals_base + s as usize]),
                Instr::Capture(i) => {
                    debug_assert_ne!(cur_clo, NONE, "capture load in captureless frame");
                    let cap = heap.clos[cur_clo as usize].captures[i as usize];
                    match cap {
                        // Unfold one recursion step: re-enter the fix
                        // body (or reuse its cached result); the
                        // unfolding replaces the load.
                        Word::Rec(ix) => unfold!(ix),
                        v => stack.push(v),
                    }
                }
                Instr::Global(i) => stack.push(wglobals[i as usize]),
                Instr::Rec => {
                    debug_assert_ne!(cur_rec, NONE, "rec load outside fix body");
                    unfold!(cur_rec);
                }
                Instr::Closure(f) => {
                    let captures =
                        materialize_captures(code, f, locals_base, cur_clo, cur_rec, &locals, heap);
                    let ix = heap.alloc_clo(f, captures);
                    stack.push(Word::Clo(ix));
                }
                Instr::TyClosure(f) => {
                    let captures =
                        materialize_captures(code, f, locals_base, cur_clo, cur_rec, &locals, heap);
                    let ix = heap.alloc_clo(f, captures);
                    stack.push(Word::TyClo(ix));
                }
                Instr::EnterFix(f) => {
                    let captures =
                        materialize_captures(code, f, locals_base, cur_clo, cur_rec, &locals, heap);
                    let ix = heap.alloc_clo(f, captures);
                    save_frame!();
                    self.enter(code, &mut frames, &mut locals, stack.len(), f, None, ix, ix)?;
                    reload!();
                }
                Instr::Call => {
                    let arg = stack.pop().expect("call argument");
                    let callee = stack.pop().expect("call function");
                    match callee {
                        Word::Clo(ix) => {
                            save_frame!();
                            let func = heap.clos[ix as usize].func;
                            self.enter(
                                code,
                                &mut frames,
                                &mut locals,
                                stack.len(),
                                func,
                                Some(arg),
                                ix,
                                NONE,
                            )?;
                            reload!();
                        }
                        other => return Err(EvalError::NotAFunction(show(other, heap))),
                    }
                }
                Instr::TailCall => {
                    let arg = stack.pop().expect("call argument");
                    let callee = stack.pop().expect("call function");
                    do_tailcall!(callee, arg);
                }
                Instr::Force => match stack.pop().expect("force operand") {
                    Word::TyClo(ix) => {
                        save_frame!();
                        let func = heap.clos[ix as usize].func;
                        self.enter(
                            code,
                            &mut frames,
                            &mut locals,
                            stack.len(),
                            func,
                            None,
                            ix,
                            NONE,
                        )?;
                        reload!();
                    }
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "type application of non-type-abstraction {}",
                            show(other, heap)
                        )))
                    }
                },
                Instr::Ret => {
                    let result = stack.pop().expect("return value");
                    do_ret!(result);
                }
                Instr::Jump(t) => ip = t as usize,
                Instr::JumpIfFalse(t) => match stack.pop().expect("branch condition") {
                    Word::Bool(true) => {}
                    Word::Bool(false) => ip = t as usize,
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "if on non-boolean {}",
                            show(other, heap)
                        )))
                    }
                },
                Instr::Bin(op) => {
                    let b = stack.pop().expect("right operand");
                    let a = stack.pop().expect("left operand");
                    stack.push(binop_w(op, a, b, heap)?);
                }
                Instr::Un(op) => {
                    let v = stack.pop().expect("unary operand");
                    stack.push(match (op, v) {
                        (UnOp::Not, Word::Bool(b)) => Word::Bool(!b),
                        (UnOp::Neg, Word::Int(n)) => Word::Int(-n),
                        (UnOp::IntToStr, Word::Int(n)) => {
                            heap.strs.push(Rc::from(n.to_string()));
                            Word::Str((heap.strs.len() - 1) as u32)
                        }
                        (op, v) => {
                            return Err(EvalError::Stuck(format!("{op:?} on {}", show(v, heap))))
                        }
                    });
                }
                Instr::MakePair => {
                    let b = stack.pop().expect("pair right");
                    let a = stack.pop().expect("pair left");
                    heap.pairs.push((a, b));
                    stack.push(Word::Pair((heap.pairs.len() - 1) as u32));
                }
                Instr::Fst => match stack.pop().expect("fst operand") {
                    Word::Pair(p) => stack.push(heap.pairs[p as usize].0),
                    other => return Err(EvalError::Stuck(format!("fst on {}", show(other, heap)))),
                },
                Instr::Snd => match stack.pop().expect("snd operand") {
                    Word::Pair(p) => stack.push(heap.pairs[p as usize].1),
                    other => return Err(EvalError::Stuck(format!("snd on {}", show(other, heap)))),
                },
                Instr::PushNil => stack.push(Word::Nil),
                Instr::ConsList => {
                    let t = stack.pop().expect("cons tail");
                    let h = stack.pop().expect("cons head");
                    match t {
                        Word::Nil | Word::Cons(_) => {
                            heap.conses.push((h, t));
                            stack.push(Word::Cons((heap.conses.len() - 1) as u32));
                        }
                        other => {
                            return Err(EvalError::Stuck(format!(
                                "cons onto {}",
                                show(other, heap)
                            )))
                        }
                    }
                }
                Instr::CaseList {
                    head,
                    tail,
                    nil_target,
                } => match stack.pop().expect("case scrutinee") {
                    Word::Nil => ip = nil_target as usize,
                    Word::Cons(c) => {
                        let (hv, tv) = heap.conses[c as usize];
                        locals[locals_base + head as usize] = hv;
                        locals[locals_base + tail as usize] = tv;
                    }
                    other => {
                        return Err(EvalError::Stuck(format!("case on {}", show(other, heap))))
                    }
                },
                Instr::MakeRecord { name, fields } => {
                    let syms = &code.field_lists[fields as usize];
                    let vals = stack.split_off(stack.len() - syms.len());
                    heap.records.push(HRecord {
                        name,
                        fields: syms.clone(),
                        vals,
                    });
                    stack.push(Word::Record((heap.records.len() - 1) as u32));
                }
                Instr::Project(field) => match stack.pop().expect("projection operand") {
                    Word::Record(r) => {
                        let rec = &heap.records[r as usize];
                        let Some(pos) = rec.fields.iter().position(|u| *u == field) else {
                            return Err(EvalError::Stuck(format!(
                                "record {} has no field {field}",
                                rec.name
                            )));
                        };
                        stack.push(rec.vals[pos]);
                    }
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "projection on {}",
                            show(other, heap)
                        )))
                    }
                },
                Instr::Inject { ctor, argc } => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    heap.datas.push(HData { ctor, fields: vals });
                    stack.push(Word::Data((heap.datas.len() - 1) as u32));
                }
                Instr::Match(tbl) => match stack.pop().expect("match scrutinee") {
                    Word::Data(d) => {
                        let ctor = heap.datas[d as usize].ctor;
                        let table = &code.match_tables[tbl as usize];
                        // Monomorphic inline cache: probe the arm this
                        // table selected last before the linear scan.
                        let cached = table.ic.get();
                        let pos = if cached != u32::MAX
                            && table
                                .arms
                                .get(cached as usize)
                                .is_some_and(|a| a.ctor == ctor)
                        {
                            self.match_ic_hits += 1;
                            cached as usize
                        } else {
                            let Some(pos) = table.arms.iter().position(|a| a.ctor == ctor) else {
                                return Err(EvalError::Stuck(format!("no arm for `{ctor}`")));
                            };
                            self.match_ic_misses += 1;
                            table.ic.set(pos as u32);
                            pos
                        };
                        let arm = &table.arms[pos];
                        let nfields = heap.datas[d as usize].fields.len();
                        if arm.binders as usize != nfields {
                            return Err(EvalError::Stuck(format!(
                                "arm `{ctor}` binder count mismatch"
                            )));
                        }
                        let base = locals_base + arm.binder_base as usize;
                        locals[base..base + nfields]
                            .copy_from_slice(&heap.datas[d as usize].fields);
                        ip = arm.target as usize;
                    }
                    other => {
                        return Err(EvalError::Stuck(format!("match on {}", show(other, heap))))
                    }
                },
                // --- Superinstructions (see `compile::fuse`). Each
                // is exactly its two constituents back to back, with
                // one dispatch and the intermediate push elided.
                Instr::LocalConst { slot, konst } => {
                    stack.push(locals[locals_base + slot as usize]);
                    stack.push(wconsts[konst as usize]);
                }
                Instr::LocalLocal { a, b } => {
                    stack.push(locals[locals_base + a as usize]);
                    stack.push(locals[locals_base + b as usize]);
                }
                Instr::ConstBin { konst, op } => {
                    let b = wconsts[konst as usize];
                    let a = stack.pop().expect("left operand");
                    stack.push(binop_w(op, a, b, heap)?);
                }
                Instr::LocalBin { slot, op } => {
                    let b = locals[locals_base + slot as usize];
                    let a = stack.pop().expect("left operand");
                    stack.push(binop_w(op, a, b, heap)?);
                }
                Instr::BinJumpIfFalse { op, target } => {
                    let b = stack.pop().expect("right operand");
                    let a = stack.pop().expect("left operand");
                    match binop_w(op, a, b, heap)? {
                        Word::Bool(true) => {}
                        Word::Bool(false) => ip = target as usize,
                        other => {
                            return Err(EvalError::Stuck(format!(
                                "if on non-boolean {}",
                                show(other, heap)
                            )))
                        }
                    }
                }
                Instr::ConstRet { konst } => {
                    let result = wconsts[konst as usize];
                    do_ret!(result);
                }
                Instr::LocalRet { slot } => {
                    let result = locals[locals_base + slot as usize];
                    do_ret!(result);
                }
                Instr::LocalConstBin { slot, konst, op } => {
                    let a = locals[locals_base + slot as usize];
                    let b = wconsts[konst as usize];
                    stack.push(binop_w(op, a, b, heap)?);
                }
                Instr::LocalLocalBin { a, b, op } => {
                    let x = locals[locals_base + a as usize];
                    let y = locals[locals_base + b as usize];
                    stack.push(binop_w(op, x, y, heap)?);
                }
                Instr::LocalConstBinTail { slot, konst, op } => {
                    let a = locals[locals_base + slot as usize];
                    let b = wconsts[konst as usize];
                    let arg = binop_w(op, a, b, heap)?;
                    let callee = stack.pop().expect("call function");
                    do_tailcall!(callee, arg);
                }
                Instr::LocalConstBinJump {
                    slot,
                    konst,
                    op,
                    target,
                } => {
                    let a = locals[locals_base + slot as usize];
                    let b = wconsts[konst as usize];
                    match binop_w(op, a, b, heap)? {
                        Word::Bool(true) => {}
                        Word::Bool(false) => ip = target as usize,
                        other => {
                            return Err(EvalError::Stuck(format!(
                                "if on non-boolean {}",
                                show(other, heap)
                            )))
                        }
                    }
                }
                other => unreachable!("register-ISA instruction {other:?} in stack code"),
            }
        }
    }

    /// The stackless register-ISA dispatch loop. One flat `regs`
    /// vector holds every live frame's register window; results
    /// travel through each frame's `ret_dst` instead of an operand
    /// stack. `PROFILE` selects the dispatch-histogram
    /// instrumentation at monomorphization time, so the unprofiled
    /// loop carries no check at all.
    #[allow(clippy::too_many_lines)]
    fn run_regs<const PROFILE: bool>(
        &mut self,
        code: &CodeObject,
        main: u32,
        wconsts: &[Word],
        wglobals: &[Word],
        heap: &mut Heap,
    ) -> Result<Value, EvalError> {
        let mut regs: Vec<Word> = Vec::new();
        let mut frames: Vec<RFrame> = Vec::new();
        self.enter_regs(code, &mut frames, &mut regs, main, None, NONE, NONE, 0)?;
        // Dispatch registers, exactly as in the stack loop: written
        // back to the `RFrame` on a call, reloaded on push/pop,
        // authoritative in between.
        let mut ip: usize = 0;
        let mut base: usize = 0;
        let mut cur_func: u32 = main;
        let mut cur_clo: u32 = NONE;
        let mut cur_rec: u32 = NONE;
        let mut fcode: &[Instr] = &code.funcs[main as usize].code;
        macro_rules! reload {
            () => {{
                let fr = frames.last().expect("active frame");
                ip = fr.ip;
                base = fr.base;
                cur_func = fr.func;
                cur_clo = fr.clo;
                cur_rec = fr.rec;
                fcode = &code.funcs[fr.func as usize].code;
            }};
        }
        macro_rules! save_frame {
            () => {{
                let fr = frames.last_mut().expect("active frame");
                fr.ip = ip;
                fr.func = cur_func;
                fr.clo = cur_clo;
                fr.rec = cur_rec;
            }};
        }
        /// Reads an RK operand: register when bit 15 is clear,
        /// constant-pool entry otherwise.
        macro_rules! rk {
            ($x:expr) => {{
                let x: u16 = $x;
                if x & RK_CONST != 0 {
                    wconsts[(x & RK_MASK) as usize]
                } else {
                    regs[base + x as usize]
                }
            }};
        }
        /// Unfolds a `fix` self-reference into register `$dst`:
        /// write the cached one-step result, or re-enter the fix
        /// body with `$dst` as its return destination.
        macro_rules! unfold {
            ($ix:expr, $dst:expr) => {{
                let ix = $ix;
                match heap.clos[ix as usize].unfolded.get() {
                    Some(v) => {
                        self.fix_unfolds += 1;
                        regs[base + $dst as usize] = v;
                    }
                    None => {
                        save_frame!();
                        let func = heap.clos[ix as usize].func;
                        let ret_dst = base + $dst as usize;
                        self.enter_regs(code, &mut frames, &mut regs, func, None, ix, ix, ret_dst)?;
                        reload!();
                    }
                }
            }};
        }
        /// Pops the current frame with `$result`, writing the fix
        /// unfold cache and the caller's destination register (or
        /// returning the exported result when the last frame pops).
        macro_rules! do_ret {
            ($result:expr) => {{
                let result: Word = $result;
                let fr = frames.pop().expect("returning frame");
                if cur_rec != NONE {
                    heap.clos[cur_rec as usize].unfolded.set(Some(result));
                }
                if frames.is_empty() {
                    return Ok(export(result, heap));
                }
                regs.truncate(fr.base);
                regs[fr.ret_dst] = result;
                reload!();
            }};
        }
        /// Replaces the current frame in place with a call to
        /// `$callee` on `$arg`, charged like a call. A *self* tail
        /// call reuses the window as-is, rewriting only the argument
        /// register.
        macro_rules! do_tailcall {
            ($callee:expr, $arg:expr) => {{
                let arg: Word = $arg;
                match $callee {
                    Word::Clo(ix) => {
                        if self.fuel == 0 {
                            return Err(EvalError::OutOfFuel);
                        }
                        self.fuel -= 1;
                        self.tail_calls += 1;
                        if ix == cur_clo {
                            // Self tail call on the *same closure* —
                            // the shape of every compiled loop's
                            // steady state. Function, window and
                            // closure registers are already right;
                            // only the argument changes.
                            regs[base] = arg;
                        } else {
                            let func = heap.clos[ix as usize].func;
                            if func == cur_func {
                                regs[base] = arg;
                            } else {
                                regs.truncate(base);
                                let nslots = code.funcs[func as usize].nslots;
                                regs.push(arg);
                                for _ in 1..nslots {
                                    regs.push(Word::Unit);
                                }
                                cur_func = func;
                                fcode = &code.funcs[func as usize].code;
                            }
                            cur_clo = ix;
                        }
                        cur_rec = NONE;
                        ip = 0;
                    }
                    other => return Err(EvalError::NotAFunction(show(other, heap))),
                }
            }};
        }
        // Monomorphic callee cache for `RCapBinTail`: a compiled
        // loop's back edge resolves the same capture of the same
        // closure every iteration, so remember the last
        // (closure, capture index) → callee resolution and skip the
        // two dependent heap chases. Sound because captures are
        // immutable and a fix's unfold cache is write-once
        // deterministic (the language is pure). Only the
        // unfolded-`Rec` path is cached, so `fix_unfolds`
        // accounting stays exact; `cur_clo` is never `NONE` at an
        // `RCapBinTail` (the fusion requires a capture load), so
        // the `NONE` seed cannot produce a false hit.
        let mut captail_clo: u32 = NONE;
        let mut captail_idx: u16 = 0;
        let mut captail_callee: Word = Word::Unit;
        loop {
            let instr = fcode[ip];
            ip += 1;
            if PROFILE {
                *self.dispatch_counts.entry(mnemonic(&instr)).or_insert(0) += 1;
            }
            match instr {
                Instr::RConst { dst, konst } => {
                    regs[base + dst as usize] = wconsts[konst as usize];
                }
                Instr::RMove { dst, src } => {
                    regs[base + dst as usize] = regs[base + src as usize];
                }
                Instr::RCapture { dst, idx } => {
                    debug_assert_ne!(cur_clo, NONE, "capture load in captureless frame");
                    let cap = heap.clos[cur_clo as usize].captures[idx as usize];
                    match cap {
                        Word::Rec(ix) => unfold!(ix, dst),
                        v => regs[base + dst as usize] = v,
                    }
                }
                Instr::RGlobal { dst, idx } => {
                    regs[base + dst as usize] = wglobals[idx as usize];
                }
                Instr::RRec { dst } => {
                    debug_assert_ne!(cur_rec, NONE, "rec load outside fix body");
                    unfold!(cur_rec, dst);
                }
                Instr::RClosure { dst, func } => {
                    let captures =
                        materialize_captures(code, func, base, cur_clo, cur_rec, &regs, heap);
                    let ix = heap.alloc_clo(func, captures);
                    regs[base + dst as usize] = Word::Clo(ix);
                }
                Instr::RTyClosure { dst, func } => {
                    let captures =
                        materialize_captures(code, func, base, cur_clo, cur_rec, &regs, heap);
                    let ix = heap.alloc_clo(func, captures);
                    regs[base + dst as usize] = Word::TyClo(ix);
                }
                Instr::REnterFix { dst, func } => {
                    let captures =
                        materialize_captures(code, func, base, cur_clo, cur_rec, &regs, heap);
                    let ix = heap.alloc_clo(func, captures);
                    save_frame!();
                    let ret_dst = base + dst as usize;
                    self.enter_regs(code, &mut frames, &mut regs, func, None, ix, ix, ret_dst)?;
                    reload!();
                }
                Instr::RCall { dst, f, arg } => {
                    let callee = regs[base + f as usize];
                    let a = rk!(arg);
                    match callee {
                        Word::Clo(ix) => {
                            save_frame!();
                            let func = heap.clos[ix as usize].func;
                            let ret_dst = base + dst as usize;
                            self.enter_regs(
                                code,
                                &mut frames,
                                &mut regs,
                                func,
                                Some(a),
                                ix,
                                NONE,
                                ret_dst,
                            )?;
                            reload!();
                        }
                        other => return Err(EvalError::NotAFunction(show(other, heap))),
                    }
                }
                Instr::RTailCall { f, arg } => {
                    let callee = regs[base + f as usize];
                    let a = rk!(arg);
                    do_tailcall!(callee, a);
                }
                Instr::RForce { dst, src } => match regs[base + src as usize] {
                    Word::TyClo(ix) => {
                        save_frame!();
                        let func = heap.clos[ix as usize].func;
                        let ret_dst = base + dst as usize;
                        self.enter_regs(
                            code,
                            &mut frames,
                            &mut regs,
                            func,
                            None,
                            ix,
                            NONE,
                            ret_dst,
                        )?;
                        reload!();
                    }
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "type application of non-type-abstraction {}",
                            show(other, heap)
                        )))
                    }
                },
                Instr::RRet { src } => {
                    let result = rk!(src);
                    do_ret!(result);
                }
                Instr::Jump(t) => ip = t as usize,
                Instr::RJumpIfFalse { cond, target } => match rk!(cond) {
                    Word::Bool(true) => {}
                    Word::Bool(false) => ip = target as usize,
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "if on non-boolean {}",
                            show(other, heap)
                        )))
                    }
                },
                Instr::RBin { op, dst, a, b } => {
                    let x = rk!(a);
                    let y = rk!(b);
                    regs[base + dst as usize] = binop_w(op, x, y, heap)?;
                }
                Instr::RUn { op, dst, src } => {
                    let v = rk!(src);
                    regs[base + dst as usize] = match (op, v) {
                        (UnOp::Not, Word::Bool(b)) => Word::Bool(!b),
                        (UnOp::Neg, Word::Int(n)) => Word::Int(-n),
                        (UnOp::IntToStr, Word::Int(n)) => {
                            heap.strs.push(Rc::from(n.to_string()));
                            Word::Str((heap.strs.len() - 1) as u32)
                        }
                        (op, v) => {
                            return Err(EvalError::Stuck(format!("{op:?} on {}", show(v, heap))))
                        }
                    };
                }
                Instr::RPair { dst, a, b } => {
                    let x = rk!(a);
                    let y = rk!(b);
                    heap.pairs.push((x, y));
                    regs[base + dst as usize] = Word::Pair((heap.pairs.len() - 1) as u32);
                }
                Instr::RFst { dst, src } => match regs[base + src as usize] {
                    Word::Pair(p) => regs[base + dst as usize] = heap.pairs[p as usize].0,
                    other => return Err(EvalError::Stuck(format!("fst on {}", show(other, heap)))),
                },
                Instr::RSnd { dst, src } => match regs[base + src as usize] {
                    Word::Pair(p) => regs[base + dst as usize] = heap.pairs[p as usize].1,
                    other => return Err(EvalError::Stuck(format!("snd on {}", show(other, heap)))),
                },
                Instr::RCons { dst, head, tail } => {
                    let h = rk!(head);
                    let t = rk!(tail);
                    match t {
                        Word::Nil | Word::Cons(_) => {
                            heap.conses.push((h, t));
                            regs[base + dst as usize] = Word::Cons((heap.conses.len() - 1) as u32);
                        }
                        other => {
                            return Err(EvalError::Stuck(format!(
                                "cons onto {}",
                                show(other, heap)
                            )))
                        }
                    }
                }
                Instr::RCaseList {
                    src,
                    head,
                    tail,
                    nil_target,
                } => match rk!(src) {
                    Word::Nil => ip = nil_target as usize,
                    Word::Cons(c) => {
                        let (hv, tv) = heap.conses[c as usize];
                        regs[base + head as usize] = hv;
                        regs[base + tail as usize] = tv;
                    }
                    other => {
                        return Err(EvalError::Stuck(format!("case on {}", show(other, heap))))
                    }
                },
                Instr::RMakeRecord {
                    dst,
                    base: rbase,
                    name,
                    fields,
                } => {
                    let syms = &code.field_lists[fields as usize];
                    let lo = base + rbase as usize;
                    let vals = regs[lo..lo + syms.len()].to_vec();
                    heap.records.push(HRecord {
                        name,
                        fields: syms.clone(),
                        vals,
                    });
                    regs[base + dst as usize] = Word::Record((heap.records.len() - 1) as u32);
                }
                Instr::RProject { dst, src, field } => match regs[base + src as usize] {
                    Word::Record(r) => {
                        let rec = &heap.records[r as usize];
                        let Some(pos) = rec.fields.iter().position(|u| *u == field) else {
                            return Err(EvalError::Stuck(format!(
                                "record {} has no field {field}",
                                rec.name
                            )));
                        };
                        regs[base + dst as usize] = rec.vals[pos];
                    }
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "projection on {}",
                            show(other, heap)
                        )))
                    }
                },
                Instr::RInject {
                    dst,
                    base: rbase,
                    ctor,
                    argc,
                } => {
                    let lo = base + rbase as usize;
                    let vals = regs[lo..lo + argc as usize].to_vec();
                    heap.datas.push(HData { ctor, fields: vals });
                    regs[base + dst as usize] = Word::Data((heap.datas.len() - 1) as u32);
                }
                Instr::RMatch { src, tbl } => match regs[base + src as usize] {
                    Word::Data(d) => {
                        let ctor = heap.datas[d as usize].ctor;
                        let table = &code.match_tables[tbl as usize];
                        let cached = table.ic.get();
                        let pos = if cached != u32::MAX
                            && table
                                .arms
                                .get(cached as usize)
                                .is_some_and(|a| a.ctor == ctor)
                        {
                            self.match_ic_hits += 1;
                            cached as usize
                        } else {
                            let Some(pos) = table.arms.iter().position(|a| a.ctor == ctor) else {
                                return Err(EvalError::Stuck(format!("no arm for `{ctor}`")));
                            };
                            self.match_ic_misses += 1;
                            table.ic.set(pos as u32);
                            pos
                        };
                        let arm = &table.arms[pos];
                        let nfields = heap.datas[d as usize].fields.len();
                        if arm.binders as usize != nfields {
                            return Err(EvalError::Stuck(format!(
                                "arm `{ctor}` binder count mismatch"
                            )));
                        }
                        let lo = base + arm.binder_base as usize;
                        regs[lo..lo + nfields].copy_from_slice(&heap.datas[d as usize].fields);
                        ip = arm.target as usize;
                    }
                    other => {
                        return Err(EvalError::Stuck(format!("match on {}", show(other, heap))))
                    }
                },
                // --- Register superinstructions (see
                // `compile::fuse_regs`). Each is exactly its
                // constituents back to back with the intermediate
                // register writes elided.
                Instr::RBinJump { op, a, b, target } => {
                    let x = rk!(a);
                    let y = rk!(b);
                    match binop_w(op, x, y, heap)? {
                        Word::Bool(true) => {}
                        Word::Bool(false) => ip = target as usize,
                        other => {
                            return Err(EvalError::Stuck(format!(
                                "if on non-boolean {}",
                                show(other, heap)
                            )))
                        }
                    }
                }
                Instr::RBinRet { op, a, b } => {
                    let x = rk!(a);
                    let y = rk!(b);
                    let result = binop_w(op, x, y, heap)?;
                    do_ret!(result);
                }
                Instr::RBinTail { op, f, a, b } => {
                    let callee = regs[base + f as usize];
                    let x = rk!(a);
                    let y = rk!(b);
                    let arg = binop_w(op, x, y, heap)?;
                    do_tailcall!(callee, arg);
                }
                Instr::RCapBinTail { op, idx, a, b } => {
                    debug_assert_ne!(cur_clo, NONE, "capture load in captureless frame");
                    if cur_clo == captail_clo && idx == captail_idx {
                        self.fix_unfolds += 1;
                        let x = rk!(a);
                        let y = rk!(b);
                        let arg = binop_w(op, x, y, heap)?;
                        do_tailcall!(captail_callee, arg);
                        continue;
                    }
                    match heap.clos[cur_clo as usize].captures[idx as usize] {
                        Word::Rec(ix) => match heap.clos[ix as usize].unfolded.get() {
                            Some(callee) => {
                                self.fix_unfolds += 1;
                                captail_clo = cur_clo;
                                captail_idx = idx;
                                captail_callee = callee;
                                let x = rk!(a);
                                let y = rk!(b);
                                let arg = binop_w(op, x, y, heap)?;
                                do_tailcall!(callee, arg);
                            }
                            None => {
                                // First unfold of this fix: run the
                                // body into the frame's reserved
                                // scratch register, then re-execute
                                // this instruction against the filled
                                // cache. Entering the body charges
                                // the same one fuel unit the unfused
                                // `RCapture` miss charges; the
                                // re-execution charges none.
                                ip -= 1;
                                save_frame!();
                                let func = heap.clos[ix as usize].func;
                                let scratch =
                                    base + code.funcs[cur_func as usize].nslots as usize - 1;
                                self.enter_regs(
                                    code,
                                    &mut frames,
                                    &mut regs,
                                    func,
                                    None,
                                    ix,
                                    ix,
                                    scratch,
                                )?;
                                reload!();
                            }
                        },
                        callee => {
                            let x = rk!(a);
                            let y = rk!(b);
                            let arg = binop_w(op, x, y, heap)?;
                            do_tailcall!(callee, arg);
                        }
                    }
                }
                other => unreachable!("stack-ISA instruction {other:?} in register code"),
            }
        }
    }

    /// Pushes a register-ISA activation record, charging one fuel
    /// unit (the same discipline as [`Vm::enter`]).
    #[allow(clippy::too_many_arguments)]
    fn enter_regs(
        &mut self,
        code: &CodeObject,
        frames: &mut Vec<RFrame>,
        regs: &mut Vec<Word>,
        func: u32,
        arg: Option<Word>,
        clo: u32,
        rec: u32,
        ret_dst: usize,
    ) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        let f = &code.funcs[func as usize];
        let base = regs.len();
        let mut filled = 0;
        if let Some(a) = arg {
            regs.push(a);
            filled = 1;
        }
        for _ in filled..f.nslots {
            regs.push(Word::Unit);
        }
        frames.push(RFrame {
            func,
            ip: 0,
            base,
            clo,
            rec,
            ret_dst,
        });
        Ok(())
    }

    /// Pushes a new activation record, charging one fuel unit.
    #[allow(clippy::too_many_arguments)]
    fn enter(
        &mut self,
        code: &CodeObject,
        frames: &mut Vec<Frame>,
        locals: &mut Vec<Word>,
        stack_base: usize,
        func: u32,
        arg: Option<Word>,
        clo: u32,
        rec: u32,
    ) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        let f = &code.funcs[func as usize];
        let locals_base = locals.len();
        let mut filled = 0;
        if let Some(a) = arg {
            locals.push(a);
            filled = 1;
        }
        for _ in filled..f.nslots {
            locals.push(Word::Unit);
        }
        frames.push(Frame {
            func,
            ip: 0,
            stack_base,
            locals_base,
            clo,
            rec,
        });
        Ok(())
    }
}

/// Executes a function's capture directives against the creating
/// frame's register state (see [`CapSrc`]). `Rec` sentinels are
/// propagated raw — they unfold only on operand loads.
fn materialize_captures(
    code: &CodeObject,
    func: u32,
    locals_base: usize,
    clo: u32,
    rec: u32,
    locals: &[Word],
    heap: &Heap,
) -> Vec<Word> {
    code.funcs[func as usize]
        .captures
        .iter()
        .map(|src| match src {
            CapSrc::Local(s) => locals[locals_base + *s as usize],
            CapSrc::Capture(i) => {
                debug_assert_ne!(clo, NONE, "transitive capture");
                heap.clos[clo as usize].captures[*i as usize]
            }
            CapSrc::Rec => {
                debug_assert_ne!(rec, NONE, "rec capture outside fix");
                Word::Rec(rec)
            }
        })
        .collect()
}

/// Convenience: compiles a closed term and runs it with the default
/// budget (the compiled-backend analogue of [`crate::eval::eval`]).
///
/// # Errors
///
/// An unbound variable surfaces as [`EvalError::UnboundVar`] (the
/// tree-walker reports the same term the same way, just later);
/// otherwise see [`Vm::run`].
pub fn compile_and_run(e: &FExpr) -> Result<Value, EvalError> {
    compile_and_run_isa(e, Isa::default())
}

/// Like [`compile_and_run`] but pinning the instruction set, so
/// differential harnesses can run the register and stack backends
/// against each other explicitly.
///
/// # Errors
///
/// See [`compile_and_run`].
pub fn compile_and_run_isa(e: &FExpr, isa: Isa) -> Result<Value, EvalError> {
    let mut compiler = Compiler::new_with_isa(isa);
    let main = compiler.compile(e).map_err(|err| match err {
        CompileError::Unbound(x) => EvalError::UnboundVar(x),
    })?;
    Vm::new().run(compiler.code(), main, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Evaluator};
    use crate::syntax::{BinOp, FMatchArm, FType};

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// Both backends must agree on the printed result.
    fn agree(e: &FExpr) -> String {
        let tree = eval(e).expect("tree-walk");
        let vm = compile_and_run(e).expect("vm");
        assert_eq!(tree.to_string(), vm.to_string(), "backends disagree on {e}");
        vm.to_string()
    }

    #[test]
    fn literals_and_arithmetic() {
        let e = FExpr::BinOp(
            BinOp::Add,
            Rc::new(FExpr::Int(40)),
            Rc::new(FExpr::BinOp(
                BinOp::Mul,
                Rc::new(FExpr::Int(1)),
                Rc::new(FExpr::Int(2)),
            )),
        );
        assert_eq!(agree(&e), "42");
    }

    #[test]
    fn beta_reduction_and_shadowing() {
        let inner = FExpr::app(FExpr::lam("x", FType::Int, FExpr::var("x")), FExpr::Int(2));
        let e = FExpr::app(FExpr::lam("x", FType::Int, inner), FExpr::Int(1));
        assert_eq!(agree(&e), "2");
    }

    #[test]
    fn closures_capture_transitively() {
        // (\x. (\y. (\z. x + (y + z)) 3) 2) 1 — z's function captures
        // x and y through two levels.
        let body = FExpr::BinOp(
            BinOp::Add,
            Rc::new(FExpr::var("x")),
            Rc::new(FExpr::BinOp(
                BinOp::Add,
                Rc::new(FExpr::var("y")),
                Rc::new(FExpr::var("z")),
            )),
        );
        let e = FExpr::app(
            FExpr::lam(
                "x",
                FType::Int,
                FExpr::app(
                    FExpr::lam(
                        "y",
                        FType::Int,
                        FExpr::app(FExpr::lam("z", FType::Int, body), FExpr::Int(3)),
                    ),
                    FExpr::Int(2),
                ),
            ),
            FExpr::Int(1),
        );
        assert_eq!(agree(&e), "6");
    }

    #[test]
    fn type_application_forces_body() {
        let a = v("a");
        let id = FExpr::ty_abs([a], FExpr::lam("x", FType::Var(a), FExpr::var("x")));
        let e = FExpr::app(FExpr::TyApp(Rc::new(id), FType::Int), FExpr::Int(7));
        assert_eq!(agree(&e), "7");
    }

    #[test]
    fn tyabs_is_a_value_with_matching_rendering() {
        let a = v("a");
        let e = FExpr::ty_abs([a], FExpr::Int(1));
        assert_eq!(agree(&e), "<type-closure>");
        let lam = FExpr::lam("x", FType::Int, FExpr::var("x"));
        assert_eq!(agree(&lam), "<closure>");
    }

    fn fac_expr() -> FExpr {
        FExpr::Fix(
            v("fac"),
            FType::arrow(FType::Int, FType::Int),
            Rc::new(FExpr::lam(
                "n",
                FType::Int,
                FExpr::If(
                    Rc::new(FExpr::BinOp(
                        BinOp::Le,
                        Rc::new(FExpr::var("n")),
                        Rc::new(FExpr::Int(0)),
                    )),
                    Rc::new(FExpr::Int(1)),
                    Rc::new(FExpr::BinOp(
                        BinOp::Mul,
                        Rc::new(FExpr::var("n")),
                        Rc::new(FExpr::app(
                            FExpr::var("fac"),
                            FExpr::BinOp(
                                BinOp::Sub,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::Int(1)),
                            ),
                        )),
                    )),
                ),
            )),
        )
    }

    #[test]
    fn factorial_via_fix() {
        let e = FExpr::app(fac_expr(), FExpr::Int(6));
        assert_eq!(agree(&e), "720");
    }

    #[test]
    fn fix_self_reference_survives_closure_capture() {
        // fix go: Int -> Int. \n. if n <= 0 then 0
        //   else (\unused. go (n - 1)) () — the recursive call sits
        // inside a nested lambda, so `go` travels as a `Rec` word
        // capture and unfolds on load.
        let call = FExpr::app(
            FExpr::var("go"),
            FExpr::BinOp(BinOp::Sub, Rc::new(FExpr::var("n")), Rc::new(FExpr::Int(1))),
        );
        let wrapped = FExpr::app(FExpr::lam("unused", FType::Unit, call), FExpr::Unit);
        let e = FExpr::app(
            FExpr::Fix(
                v("go"),
                FType::arrow(FType::Int, FType::Int),
                Rc::new(FExpr::lam(
                    "n",
                    FType::Int,
                    FExpr::If(
                        Rc::new(FExpr::BinOp(
                            BinOp::Le,
                            Rc::new(FExpr::var("n")),
                            Rc::new(FExpr::Int(0)),
                        )),
                        Rc::new(FExpr::Int(0)),
                        Rc::new(wrapped),
                    ),
                )),
            ),
            FExpr::Int(25),
        );
        assert_eq!(agree(&e), "0");
    }

    #[test]
    fn divergence_runs_out_of_fuel() {
        let looping = FExpr::Fix(
            v("loop"),
            FType::arrow(FType::Int, FType::Int),
            Rc::new(FExpr::lam(
                "n",
                FType::Int,
                FExpr::app(FExpr::var("loop"), FExpr::var("n")),
            )),
        );
        let e = FExpr::app(looping, FExpr::Int(0));
        let mut compiler = Compiler::new();
        let main = compiler.compile(&e).unwrap();
        let err = Vm::with_fuel(500)
            .run(compiler.code(), main, &[])
            .unwrap_err();
        assert_eq!(err, EvalError::OutOfFuel);
    }

    #[test]
    fn vm_fuel_never_exceeds_tree_fuel() {
        // The comparability invariant: on a call-heavy program the VM
        // charges no more fuel than the tree-walker, so a shared
        // budget cannot fail only on the VM side.
        let e = FExpr::app(fac_expr(), FExpr::Int(12));
        let mut tree_fuel = None;
        for budget in 0..10_000 {
            if Evaluator::with_fuel(budget).eval(&e).is_ok() {
                tree_fuel = Some(budget);
                break;
            }
        }
        let tree_fuel = tree_fuel.expect("tree-walk terminates");
        let mut compiler = Compiler::new();
        let main = compiler.compile(&e).unwrap();
        assert!(
            Vm::with_fuel(tree_fuel)
                .run(compiler.code(), main, &[])
                .is_ok(),
            "VM needs more fuel than the tree-walker"
        );
    }

    #[test]
    fn division_by_zero_matches() {
        let e = FExpr::BinOp(BinOp::Div, Rc::new(FExpr::Int(1)), Rc::new(FExpr::Int(0)));
        assert_eq!(compile_and_run(&e).unwrap_err(), EvalError::DivisionByZero);
        assert_eq!(eval(&e).unwrap_err(), EvalError::DivisionByZero);
    }

    #[test]
    fn lists_case_and_strings() {
        let xs = FExpr::Cons(
            Rc::new(FExpr::Int(1)),
            Rc::new(FExpr::Cons(
                Rc::new(FExpr::Int(2)),
                Rc::new(FExpr::Nil(FType::Int)),
            )),
        );
        let e = FExpr::ListCase {
            scrut: Rc::new(xs.clone()),
            nil: Rc::new(FExpr::Int(0)),
            head: v("h"),
            tail: v("t"),
            cons: Rc::new(FExpr::BinOp(
                BinOp::Add,
                Rc::new(FExpr::var("h")),
                Rc::new(FExpr::ListCase {
                    scrut: Rc::new(FExpr::var("t")),
                    nil: Rc::new(FExpr::Int(100)),
                    head: v("h"),
                    tail: v("t"),
                    cons: Rc::new(FExpr::var("h")),
                }),
            )),
        };
        assert_eq!(agree(&e), "3");
        assert_eq!(agree(&xs), "[1, 2]");
        let s = FExpr::BinOp(
            BinOp::Concat,
            Rc::new(FExpr::Str("1,".into())),
            Rc::new(FExpr::UnOp(UnOp::IntToStr, Rc::new(FExpr::Int(23)))),
        );
        assert_eq!(agree(&s), "\"1,23\"");
    }

    #[test]
    fn list_equality_matches_tree_semantics() {
        // Length mismatch decides before elements (mirroring
        // `Value::try_eq`), element mismatch short-circuits, and
        // nested pairs compare structurally.
        let list = |ns: &[i64]| {
            ns.iter().rev().fold(FExpr::Nil(FType::Int), |acc, n| {
                FExpr::Cons(Rc::new(FExpr::Int(*n)), Rc::new(acc))
            })
        };
        let eq = |a: FExpr, b: FExpr| FExpr::BinOp(BinOp::Eq, Rc::new(a), Rc::new(b));
        assert_eq!(agree(&eq(list(&[1, 2]), list(&[1, 2]))), "true");
        assert_eq!(agree(&eq(list(&[1, 2]), list(&[1]))), "false");
        assert_eq!(agree(&eq(list(&[1, 2]), list(&[1, 3]))), "false");
        assert_eq!(agree(&eq(list(&[]), list(&[]))), "true");
        let pair = |a: i64, b: i64| FExpr::Pair(Rc::new(FExpr::Int(a)), Rc::new(FExpr::Int(b)));
        assert_eq!(agree(&eq(pair(1, 2), pair(1, 2))), "true");
        assert_eq!(agree(&eq(pair(1, 2), pair(2, 2))), "false");
    }

    #[test]
    fn closure_equality_sticks_like_the_tree_walker() {
        let lam = || FExpr::lam("x", FType::Int, FExpr::var("x"));
        let e = FExpr::BinOp(BinOp::Eq, Rc::new(lam()), Rc::new(lam()));
        assert_eq!(
            compile_and_run(&e).unwrap_err(),
            EvalError::Stuck("equality on closures".into())
        );
        assert_eq!(
            eval(&e).unwrap_err(),
            EvalError::Stuck("equality on closures".into())
        );
    }

    #[test]
    fn records_and_data() {
        let lit = FExpr::Make(
            v("P"),
            vec![],
            vec![(v("x"), FExpr::Int(3)), (v("y"), FExpr::Int(4))],
        );
        assert_eq!(agree(&FExpr::Proj(Rc::new(lit.clone()), v("y"))), "4");
        assert_eq!(agree(&lit), "P { x = 3, y = 4 }");

        let scrut = FExpr::Inject(v("Cons2"), vec![], vec![FExpr::Int(7), FExpr::Int(8)]);
        let m = FExpr::Match(
            Rc::new(scrut),
            vec![
                FMatchArm {
                    ctor: v("Nil2"),
                    binders: vec![],
                    body: FExpr::Int(0),
                },
                FMatchArm {
                    ctor: v("Cons2"),
                    binders: vec![v("a"), v("b")],
                    body: FExpr::BinOp(
                        BinOp::Mul,
                        Rc::new(FExpr::var("a")),
                        Rc::new(FExpr::var("b")),
                    ),
                },
            ],
        );
        assert_eq!(agree(&m), "56");
    }

    #[test]
    fn globals_resolve_and_roll_back() {
        let mut compiler = Compiler::new();
        let g = v("forty");
        compiler.add_global(g);
        let snap = compiler.snapshot();
        let e = FExpr::BinOp(BinOp::Add, Rc::new(FExpr::Var(g)), Rc::new(FExpr::Int(2)));
        let main = compiler.compile(&e).unwrap();
        let out = Vm::new()
            .run(compiler.code(), main, &[Value::Int(40)])
            .unwrap();
        assert_eq!(out.to_string(), "42");
        compiler.rollback(&snap);
        assert!(compiler.code().funcs.is_empty());
        // Recompiling after rollback reuses the same indices, and the
        // constant pool repopulates without drift — the fusion pass
        // is deterministic, so the code bytes match too.
        let main2 = compiler.compile(&e).unwrap();
        assert_eq!(main2, main);
        let out2 = Vm::new()
            .run(compiler.code(), main2, &[Value::Int(40)])
            .unwrap();
        assert_eq!(out2.to_string(), "42");
    }

    #[test]
    fn unbound_variables_error_like_the_tree_walker() {
        let e = FExpr::var("nope");
        assert_eq!(
            compile_and_run(&e).unwrap_err(),
            EvalError::UnboundVar(v("nope"))
        );
        assert_eq!(eval(&e).unwrap_err(), EvalError::UnboundVar(v("nope")));
    }

    #[test]
    fn deep_recursion_runs_in_constant_host_stack() {
        // 50k non-tail-recursive calls: the tree-walker would need a
        // large host stack for this; the VM must not. Run it on a
        // deliberately small 512 KB thread to prove the point
        // (`FExpr` is `Rc`-based and not `Send`, so the program is
        // built inside the thread).
        let handle = std::thread::Builder::new()
            .stack_size(512 * 1024)
            .spawn(|| {
                let sum = FExpr::Fix(
                    v("sum"),
                    FType::arrow(FType::Int, FType::Int),
                    Rc::new(FExpr::lam(
                        "n",
                        FType::Int,
                        FExpr::If(
                            Rc::new(FExpr::BinOp(
                                BinOp::Le,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::Int(0)),
                            )),
                            Rc::new(FExpr::Int(0)),
                            Rc::new(FExpr::BinOp(
                                BinOp::Add,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::app(
                                    FExpr::var("sum"),
                                    FExpr::BinOp(
                                        BinOp::Sub,
                                        Rc::new(FExpr::var("n")),
                                        Rc::new(FExpr::Int(1)),
                                    ),
                                )),
                            )),
                        ),
                    )),
                );
                let e = FExpr::app(sum, FExpr::Int(50_000));
                compile_and_run(&e).map(|value| value.to_string())
            })
            .expect("spawn");
        let out = handle.join().expect("no stack overflow");
        assert_eq!(out.unwrap(), (50_000i64 * 50_001 / 2).to_string());
    }

    #[test]
    fn fusion_emits_superinstructions_and_preserves_results() {
        // The factorial loop contains the canonical fusable shapes
        // on both ISAs (a compare feeding a branch, an arithmetic op
        // feeding the recursive tail call); fusion must shorten the
        // code without changing the result or the fuel charged.
        let e = FExpr::app(fac_expr(), FExpr::Int(10));
        for (isa, mined_pair) in [
            (Isa::Register, ("r.bin", "r.jumpiffalse")),
            (Isa::Stack, ("local", "const")),
        ] {
            let mut fused = Compiler::new_with_isa(isa);
            let mut plain = Compiler::new_with_isa(isa);
            plain.set_fusion(false);
            let mf = fused.compile(&e).unwrap();
            let mp = plain.compile(&e).unwrap();
            let mut vm_f = Vm::new();
            let mut vm_p = Vm::new();
            let out_f = vm_f.run(fused.code(), mf, &[]).unwrap();
            let out_p = vm_p.run(plain.code(), mp, &[]).unwrap();
            assert_eq!(out_f.to_string(), out_p.to_string());
            assert_eq!(vm_f.stats().fuel_used, vm_p.stats().fuel_used);
            assert!(
                fused.fusion_stats().fused > 0,
                "no superinstructions emitted for {isa:?}"
            );
            assert_eq!(plain.fusion_stats().fused, 0);
            let total_fused: usize = fused.code().funcs.iter().map(|f| f.code.len()).sum();
            let total_plain: usize = plain.code().funcs.iter().map(|f| f.code.len()).sum();
            assert!(
                total_fused < total_plain,
                "fused stream not shorter for {isa:?}: {total_fused} vs {total_plain}"
            );
            // The mining table saw the pairs each fused set was built for.
            assert!(
                fused.fusion_stats().pair_counts.contains_key(&mined_pair),
                "{isa:?} mining table missing {mined_pair:?}"
            );
        }
    }

    #[test]
    fn register_and_stack_backends_agree_with_equal_fuel() {
        // The register ISA must be observably identical to the stack
        // ISA: same values, same errors, and the same fuel bill (both
        // charge one unit per frame entry and per tail call).
        let cases = vec![
            FExpr::app(fac_expr(), FExpr::Int(12)),
            FExpr::Pair(
                Rc::new(FExpr::BinOp(
                    BinOp::Add,
                    Rc::new(FExpr::Int(2)),
                    Rc::new(FExpr::Int(3)),
                )),
                Rc::new(FExpr::Str(String::from("hi"))),
            ),
            FExpr::Cons(
                Rc::new(FExpr::Int(1)),
                Rc::new(FExpr::Cons(
                    Rc::new(FExpr::Int(2)),
                    Rc::new(FExpr::Nil(FType::Int)),
                )),
            ),
            FExpr::app(FExpr::Int(1), FExpr::Int(2)),
        ];
        for e in cases {
            let run = |isa: Isa| {
                let mut compiler = Compiler::new_with_isa(isa);
                let main = compiler.compile(&e).unwrap();
                let mut vm = Vm::new();
                let out = vm.run(compiler.code(), main, &[]);
                (
                    out.map(|value| value.to_string())
                        .map_err(|err| err.to_string()),
                    vm.stats().fuel_used,
                )
            };
            let (reg_out, reg_fuel) = run(Isa::Register);
            let (stack_out, stack_fuel) = run(Isa::Stack);
            assert_eq!(reg_out, stack_out, "ISAs disagree on {e}");
            assert_eq!(reg_fuel, stack_fuel, "fuel differs on {e}");
        }
    }

    #[test]
    fn dispatch_histogram_profiles_register_loop() {
        // A tail-recursive countdown: the canonical hot-loop shape
        // whose back edge the fused triple covers.
        let e = FExpr::app(
            FExpr::Fix(
                v("go"),
                FType::arrow(FType::Int, FType::Int),
                Rc::new(FExpr::lam(
                    "n",
                    FType::Int,
                    FExpr::If(
                        Rc::new(FExpr::BinOp(
                            BinOp::Le,
                            Rc::new(FExpr::var("n")),
                            Rc::new(FExpr::Int(0)),
                        )),
                        Rc::new(FExpr::Int(0)),
                        Rc::new(FExpr::app(
                            FExpr::var("go"),
                            FExpr::BinOp(
                                BinOp::Sub,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::Int(1)),
                            ),
                        )),
                    ),
                )),
            ),
            FExpr::Int(10),
        );
        let mut compiler = Compiler::new();
        let main = compiler.compile(&e).unwrap();
        let mut vm = Vm::new();
        vm.set_profile(true);
        vm.run(compiler.code(), main, &[]).unwrap();
        let hist = vm.dispatch_histogram();
        assert!(!hist.is_empty(), "profiling recorded nothing");
        let total: u64 = hist.iter().map(|(_, n)| n).sum();
        assert!(total > 10, "suspiciously few dispatches: {total}");
        // Sorted by count descending.
        assert!(hist.windows(2).all(|w| w[0].1 >= w[1].1));
        // The countdown's back edge is the fused triple.
        assert!(
            hist.iter().any(|(m, _)| *m == "r.capture+bin+tailcall"),
            "hot loop not running on the fused back edge: {hist:?}"
        );
    }

    #[test]
    fn match_inline_cache_counts_hits() {
        // A loop that matches the same constructor repeatedly: the
        // first dispatch misses, the rest hit the cached arm.
        let scrut = || FExpr::Inject(v("S"), vec![], vec![FExpr::Int(1)]);
        let arm_match = |e: FExpr| {
            FExpr::Match(
                Rc::new(e),
                vec![
                    FMatchArm {
                        ctor: v("Z"),
                        binders: vec![],
                        body: FExpr::Int(0),
                    },
                    FMatchArm {
                        ctor: v("S"),
                        binders: vec![v("k")],
                        body: FExpr::var("k"),
                    },
                ],
            )
        };
        // go n = if n <= 0 then 0 else match S(1) { Z -> 0; S k -> k } + go (n - 1) - 1
        let body = FExpr::If(
            Rc::new(FExpr::BinOp(
                BinOp::Le,
                Rc::new(FExpr::var("n")),
                Rc::new(FExpr::Int(0)),
            )),
            Rc::new(FExpr::Int(0)),
            Rc::new(FExpr::BinOp(
                BinOp::Add,
                Rc::new(arm_match(scrut())),
                Rc::new(FExpr::BinOp(
                    BinOp::Sub,
                    Rc::new(FExpr::app(
                        FExpr::var("go"),
                        FExpr::BinOp(BinOp::Sub, Rc::new(FExpr::var("n")), Rc::new(FExpr::Int(1))),
                    )),
                    Rc::new(FExpr::Int(1)),
                )),
            )),
        );
        let e = FExpr::app(
            FExpr::Fix(
                v("go"),
                FType::arrow(FType::Int, FType::Int),
                Rc::new(FExpr::lam("n", FType::Int, body)),
            ),
            FExpr::Int(20),
        );
        let mut compiler = Compiler::new();
        let main = compiler.compile(&e).unwrap();
        let mut vm = Vm::new();
        let out = vm.run(compiler.code(), main, &[]).unwrap();
        assert_eq!(out.to_string(), "0");
        let stats = vm.stats();
        assert_eq!(
            stats.match_ic_misses, 1,
            "exactly the first dispatch misses"
        );
        assert_eq!(stats.match_ic_hits, 19, "every later dispatch hits");
    }

    #[test]
    fn match_inline_cache_recovers_from_polymorphic_sites() {
        // Alternate constructors at one site: the IC keeps
        // re-priming, and results stay correct.
        let mk = |c: &str, args: Vec<FExpr>| FExpr::Inject(v(c), vec![], args);
        let arm_match = |e: FExpr| {
            FExpr::Match(
                Rc::new(e),
                vec![
                    FMatchArm {
                        ctor: v("A"),
                        binders: vec![],
                        body: FExpr::Int(1),
                    },
                    FMatchArm {
                        ctor: v("B"),
                        binders: vec![],
                        body: FExpr::Int(2),
                    },
                ],
            )
        };
        // match A {} + match B {} + match A {} — the shared compile
        // has one table per match site, so each site is monomorphic
        // here; run the same compiled site against both ctors via a
        // lambda instead.
        let f = FExpr::lam(
            "x",
            FType::Int,
            arm_match(FExpr::If(
                Rc::new(FExpr::BinOp(
                    BinOp::Le,
                    Rc::new(FExpr::var("x")),
                    Rc::new(FExpr::Int(0)),
                )),
                Rc::new(mk("A", vec![])),
                Rc::new(mk("B", vec![])),
            )),
        );
        let e = FExpr::BinOp(
            BinOp::Add,
            Rc::new(FExpr::app(f.clone(), FExpr::Int(0))),
            Rc::new(FExpr::BinOp(
                BinOp::Add,
                Rc::new(FExpr::app(f.clone(), FExpr::Int(1))),
                Rc::new(FExpr::app(f, FExpr::Int(0))),
            )),
        );
        assert_eq!(agree(&e), "4");
    }

    #[test]
    fn globals_of_every_shape_roundtrip_through_the_arena() {
        // Compound globals (pairs, lists, records, data, strings) are
        // imported into the arena at run start and must project and
        // print exactly as the tree-walker would.
        let mut compiler = Compiler::new();
        let g = v("dict");
        compiler.add_global(g);
        let global = Value::Pair(
            Rc::new(Value::List(Rc::new(vec![Value::Int(1), Value::Int(2)]))),
            Rc::new(Value::Record {
                name: v("Show"),
                fields: Rc::new(vec![(v("s"), Value::Str(Rc::from("x")))]),
            }),
        );
        let e = FExpr::Var(g);
        let main = compiler.compile(&e).unwrap();
        let out = Vm::new()
            .run(compiler.code(), main, std::slice::from_ref(&global))
            .unwrap();
        assert_eq!(out.to_string(), global.to_string());
        let snd = FExpr::Proj(Rc::new(FExpr::Snd(Rc::new(FExpr::Var(g)))), v("s"));
        let main2 = compiler.compile(&snd).unwrap();
        let out2 = Vm::new().run(compiler.code(), main2, &[global]).unwrap();
        assert_eq!(out2.to_string(), "\"x\"");
    }
}
