//! A bytecode virtual machine for compiled System F (see
//! [`crate::compile`]).
//!
//! The VM executes the flat instruction stream produced by
//! [`Compiler`] with heap-allocated value/locals/frame stacks and a
//! single dispatch loop — no host-stack recursion, so arbitrarily
//! deep programs run in constant host stack (the tree-walking
//! [`crate::eval::Evaluator`] needs the 64 MB worker stacks of
//! `implicit_pipeline::driver` for the same programs).
//!
//! Semantics mirror the tree-walker exactly: call-by-value, eager
//! (non-short-circuit) `&&`/`||`, unfold-one-step `fix`, and the same
//! [`EvalError`] kinds and messages, so a differential oracle can
//! compare the two backends verbatim. Fuel is decremented once per
//! *frame entry* (call, force, fix unfold) rather than per node;
//! since every frame entry corresponds to at least one tree-walker
//! node visit, a program that finishes under the tree-walker's budget
//! always finishes under the same VM budget.

use std::cell::RefCell;
use std::rc::Rc;

use implicit_core::symbol::Symbol;

use crate::compile::{CapSrc, CodeObject, CompileError, Compiler, Instr};
use crate::eval::{binop, EvalError, Value};
use crate::syntax::{FExpr, UnOp};

/// A flat compiled closure: a function index plus the captured
/// values, materialized at creation time.
#[derive(Debug)]
pub struct VmClosure {
    /// Index into [`CodeObject::funcs`].
    pub func: u32,
    /// Captured values, parallel to the function's capture
    /// directives. A `fix` self-reference is stored as the
    /// [`Value::CompiledRec`] sentinel.
    pub captures: Vec<Value>,
    /// One-step unfolding cache, used only when this closure is a
    /// `fix` body: the language is pure, so re-running the body
    /// always yields the same value, and a recursive loop would
    /// otherwise re-enter it (and re-allocate its result closure) on
    /// every iteration. Caching only ever *reduces* fuel charged, so
    /// the tree-walker-comparability invariant is preserved.
    unfolded: RefCell<Option<Value>>,
}

impl VmClosure {
    fn new(func: u32, captures: Vec<Value>) -> VmClosure {
        VmClosure {
            func,
            captures,
            unfolded: RefCell::new(None),
        }
    }
}

/// One activation record. `stack_base`/`locals_base` delimit the
/// frame's slices of the shared operand and locals stacks.
struct Frame {
    func: u32,
    ip: usize,
    stack_base: usize,
    locals_base: usize,
    clo: Option<Rc<VmClosure>>,
    rec: Option<Rc<VmClosure>>,
}

/// The virtual machine, carrying the same kind of step budget as the
/// tree-walker (counted per frame entry).
pub struct Vm {
    fuel: u64,
    initial_fuel: u64,
    tail_calls: u64,
    fix_unfolds: u64,
}

/// Execution counters of one [`Vm`], cumulative over its lifetime
/// (feeds the `vm_run` trace event and the metrics registry).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct VmStats {
    /// Fuel charged (frame pushes + tail calls).
    pub fuel_used: u64,
    /// Tail calls that reused the running frame.
    pub tail_calls: u64,
    /// `fix` unfolds answered by the per-closure unfold cache.
    pub fix_unfolds: u64,
}

impl Default for Vm {
    fn default() -> Vm {
        Vm::with_fuel(10_000_000)
    }
}

impl Vm {
    /// A VM with the default budget (matching
    /// [`crate::eval::Evaluator`]'s).
    pub fn new() -> Vm {
        Vm::default()
    }

    /// A VM with a custom budget.
    pub fn with_fuel(fuel: u64) -> Vm {
        Vm {
            fuel,
            initial_fuel: fuel,
            tail_calls: 0,
            fix_unfolds: 0,
        }
    }

    /// Fuel still available.
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// The cumulative execution counters.
    pub fn stats(&self) -> VmStats {
        VmStats {
            fuel_used: self.initial_fuel - self.fuel,
            tail_calls: self.tail_calls,
            fix_unfolds: self.fix_unfolds,
        }
    }

    /// Runs function `main` of `code` to completion. `globals` must
    /// be parallel to the owning [`Compiler`]'s global table.
    ///
    /// # Errors
    ///
    /// The same conditions as [`crate::eval::Evaluator::eval`]:
    /// primitive failures, fuel exhaustion, and — for code compiled
    /// from ill-typed terms only — stuck states.
    pub fn run(
        &mut self,
        code: &CodeObject,
        main: u32,
        globals: &[Value],
    ) -> Result<Value, EvalError> {
        let mut stack: Vec<Value> = Vec::new();
        let mut locals: Vec<Value> = Vec::new();
        let mut frames: Vec<Frame> = Vec::new();
        self.enter(code, &mut frames, &mut locals, 0, main, None, None, None)?;
        // Dispatch registers: the hot loop reads these instead of
        // chasing `frames.last()` and double-indexing `code.funcs` on
        // every instruction. They are written back to the `Frame` on
        // a call (so `Ret` can resume the caller) and reloaded on
        // every frame push/pop.
        let mut ip: usize = 0;
        let mut locals_base: usize = 0;
        let mut fcode: &[Instr] = &code.funcs[main as usize].code;
        macro_rules! reload {
            () => {{
                let fr = frames.last().expect("active frame");
                ip = fr.ip;
                locals_base = fr.locals_base;
                fcode = &code.funcs[fr.func as usize].code;
            }};
        }
        macro_rules! save_ip {
            () => {
                frames.last_mut().expect("active frame").ip = ip
            };
        }
        loop {
            let instr = fcode[ip];
            ip += 1;
            match instr {
                Instr::Const(i) => stack.push(code.consts[i as usize].clone()),
                Instr::Local(s) => stack.push(locals[locals_base + s as usize].clone()),
                Instr::Capture(i) => {
                    let cap = frames
                        .last()
                        .expect("running frame")
                        .clo
                        .as_ref()
                        .expect("capture load in captureless frame")
                        .captures[i as usize]
                        .clone();
                    match cap {
                        // Unfold one recursion step: re-enter the fix
                        // body (or reuse its cached result); the
                        // unfolding replaces the load.
                        Value::CompiledRec(rc) => {
                            let cached = rc.unfolded.borrow().clone();
                            match cached {
                                Some(v) => {
                                    self.fix_unfolds += 1;
                                    stack.push(v);
                                }
                                None => {
                                    save_ip!();
                                    self.enter(
                                        code,
                                        &mut frames,
                                        &mut locals,
                                        stack.len(),
                                        rc.func,
                                        None,
                                        Some(rc.clone()),
                                        Some(rc),
                                    )?;
                                    reload!();
                                }
                            }
                        }
                        v => stack.push(v),
                    }
                }
                Instr::Global(i) => stack.push(globals[i as usize].clone()),
                Instr::Rec => {
                    let rc = frames
                        .last()
                        .expect("running frame")
                        .rec
                        .clone()
                        .expect("rec load outside fix body");
                    let cached = rc.unfolded.borrow().clone();
                    match cached {
                        Some(v) => {
                            self.fix_unfolds += 1;
                            stack.push(v);
                        }
                        None => {
                            save_ip!();
                            self.enter(
                                code,
                                &mut frames,
                                &mut locals,
                                stack.len(),
                                rc.func,
                                None,
                                Some(rc.clone()),
                                Some(rc),
                            )?;
                            reload!();
                        }
                    }
                }
                Instr::Closure(f) => {
                    let captures = materialize_captures(code, f, &frames, &locals);
                    stack.push(Value::CompiledClosure(Rc::new(VmClosure::new(f, captures))));
                }
                Instr::TyClosure(f) => {
                    let captures = materialize_captures(code, f, &frames, &locals);
                    stack.push(Value::CompiledTyClosure(Rc::new(VmClosure::new(
                        f, captures,
                    ))));
                }
                Instr::EnterFix(f) => {
                    let captures = materialize_captures(code, f, &frames, &locals);
                    let rc = Rc::new(VmClosure::new(f, captures));
                    save_ip!();
                    self.enter(
                        code,
                        &mut frames,
                        &mut locals,
                        stack.len(),
                        f,
                        None,
                        Some(rc.clone()),
                        Some(rc),
                    )?;
                    reload!();
                }
                Instr::Call => {
                    let arg = stack.pop().expect("call argument");
                    let callee = stack.pop().expect("call function");
                    match callee {
                        Value::CompiledClosure(rc) => {
                            save_ip!();
                            self.enter(
                                code,
                                &mut frames,
                                &mut locals,
                                stack.len(),
                                rc.func,
                                Some(arg),
                                Some(rc),
                                None,
                            )?;
                            reload!();
                        }
                        other => return Err(EvalError::NotAFunction(other.to_string())),
                    }
                }
                Instr::TailCall => {
                    let arg = stack.pop().expect("call argument");
                    let callee = stack.pop().expect("call function");
                    match callee {
                        Value::CompiledClosure(rc) => {
                            // Replace the current frame in place: same
                            // bases, new function. Charged like a
                            // call, so the fuel comparability
                            // invariant is unchanged.
                            if self.fuel == 0 {
                                return Err(EvalError::OutOfFuel);
                            }
                            self.fuel -= 1;
                            self.tail_calls += 1;
                            let frame = frames.last_mut().expect("active frame");
                            stack.truncate(frame.stack_base);
                            locals.truncate(frame.locals_base);
                            let nslots = code.funcs[rc.func as usize].nslots;
                            locals.push(arg);
                            for _ in 1..nslots {
                                locals.push(Value::Unit);
                            }
                            frame.func = rc.func;
                            frame.ip = 0;
                            frame.rec = None;
                            fcode = &code.funcs[rc.func as usize].code;
                            frame.clo = Some(rc);
                            ip = 0;
                        }
                        other => return Err(EvalError::NotAFunction(other.to_string())),
                    }
                }
                Instr::Force => match stack.pop().expect("force operand") {
                    Value::CompiledTyClosure(rc) => {
                        save_ip!();
                        self.enter(
                            code,
                            &mut frames,
                            &mut locals,
                            stack.len(),
                            rc.func,
                            None,
                            Some(rc),
                            None,
                        )?;
                        reload!();
                    }
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "type application of non-type-abstraction {other}"
                        )))
                    }
                },
                Instr::Ret => {
                    let result = stack.pop().expect("return value");
                    let frame = frames.pop().expect("returning frame");
                    stack.truncate(frame.stack_base);
                    locals.truncate(frame.locals_base);
                    // A frame with a `rec` handle is a fix-body
                    // unfolding; remember its result so later unfolds
                    // of the same fix skip the re-entry.
                    if let Some(rc) = &frame.rec {
                        *rc.unfolded.borrow_mut() = Some(result.clone());
                    }
                    if frames.is_empty() {
                        return Ok(result);
                    }
                    stack.push(result);
                    reload!();
                }
                Instr::Jump(t) => ip = t as usize,
                Instr::JumpIfFalse(t) => match stack.pop().expect("branch condition") {
                    Value::Bool(true) => {}
                    Value::Bool(false) => ip = t as usize,
                    other => return Err(EvalError::Stuck(format!("if on non-boolean {other}"))),
                },
                Instr::Bin(op) => {
                    let b = stack.pop().expect("right operand");
                    let a = stack.pop().expect("left operand");
                    stack.push(binop(op, a, b)?);
                }
                Instr::Un(op) => {
                    let v = stack.pop().expect("unary operand");
                    stack.push(match (op, v) {
                        (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                        (UnOp::Neg, Value::Int(n)) => Value::Int(-n),
                        (UnOp::IntToStr, Value::Int(n)) => Value::Str(Rc::from(n.to_string())),
                        (op, v) => return Err(EvalError::Stuck(format!("{op:?} on {v}"))),
                    });
                }
                Instr::MakePair => {
                    let b = stack.pop().expect("pair right");
                    let a = stack.pop().expect("pair left");
                    stack.push(Value::Pair(Rc::new(a), Rc::new(b)));
                }
                Instr::Fst => match stack.pop().expect("fst operand") {
                    Value::Pair(l, _) => {
                        stack.push(Rc::try_unwrap(l).unwrap_or_else(|rc| (*rc).clone()));
                    }
                    other => return Err(EvalError::Stuck(format!("fst on {other}"))),
                },
                Instr::Snd => match stack.pop().expect("snd operand") {
                    Value::Pair(_, r) => {
                        stack.push(Rc::try_unwrap(r).unwrap_or_else(|rc| (*rc).clone()));
                    }
                    other => return Err(EvalError::Stuck(format!("snd on {other}"))),
                },
                Instr::PushNil => stack.push(Value::List(Rc::new(Vec::new()))),
                Instr::ConsList => {
                    let t = stack.pop().expect("cons tail");
                    let h = stack.pop().expect("cons head");
                    match t {
                        Value::List(xs) => match Rc::try_unwrap(xs) {
                            Ok(mut owned) => {
                                owned.insert(0, h);
                                stack.push(Value::List(Rc::new(owned)));
                            }
                            Err(shared) => {
                                let mut out = Vec::with_capacity(shared.len() + 1);
                                out.push(h);
                                out.extend(shared.iter().cloned());
                                stack.push(Value::List(Rc::new(out)));
                            }
                        },
                        other => return Err(EvalError::Stuck(format!("cons onto {other}"))),
                    }
                }
                Instr::CaseList {
                    head,
                    tail,
                    nil_target,
                } => match stack.pop().expect("case scrutinee") {
                    Value::List(xs) => {
                        let (hv, tv) = match Rc::try_unwrap(xs) {
                            Ok(mut owned) => {
                                if owned.is_empty() {
                                    ip = nil_target as usize;
                                    continue;
                                }
                                let h = owned.remove(0);
                                (h, Value::List(Rc::new(owned)))
                            }
                            Err(shared) => match shared.split_first() {
                                Some((h, rest)) => (h.clone(), Value::List(Rc::new(rest.to_vec()))),
                                None => {
                                    ip = nil_target as usize;
                                    continue;
                                }
                            },
                        };
                        locals[locals_base + head as usize] = hv;
                        locals[locals_base + tail as usize] = tv;
                    }
                    other => return Err(EvalError::Stuck(format!("case on {other}"))),
                },
                Instr::MakeRecord { name, fields } => {
                    let syms = &code.field_lists[fields as usize];
                    let vals = stack.split_off(stack.len() - syms.len());
                    let out: Vec<(Symbol, Value)> = syms.iter().copied().zip(vals).collect();
                    stack.push(Value::Record {
                        name,
                        fields: Rc::new(out),
                    });
                }
                Instr::Project(field) => match stack.pop().expect("projection operand") {
                    Value::Record { name, fields } => {
                        let Some(pos) = fields.iter().position(|(u, _)| *u == field) else {
                            return Err(EvalError::Stuck(format!(
                                "record {name} has no field {field}"
                            )));
                        };
                        stack.push(match Rc::try_unwrap(fields) {
                            Ok(mut owned) => owned.swap_remove(pos).1,
                            Err(shared) => shared[pos].1.clone(),
                        });
                    }
                    other => return Err(EvalError::Stuck(format!("projection on {other}"))),
                },
                Instr::Inject { ctor, argc } => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    stack.push(Value::Data {
                        ctor,
                        fields: Rc::new(vals),
                    });
                }
                Instr::Match(tbl) => match stack.pop().expect("match scrutinee") {
                    Value::Data { ctor, fields } => {
                        let table = &code.match_tables[tbl as usize];
                        let Some(arm) = table.arms.iter().find(|a| a.ctor == ctor) else {
                            return Err(EvalError::Stuck(format!("no arm for `{ctor}`")));
                        };
                        if arm.binders as usize != fields.len() {
                            return Err(EvalError::Stuck(format!(
                                "arm `{ctor}` binder count mismatch"
                            )));
                        }
                        let base = locals_base + arm.binder_base as usize;
                        match Rc::try_unwrap(fields) {
                            Ok(owned) => {
                                for (i, v) in owned.into_iter().enumerate() {
                                    locals[base + i] = v;
                                }
                            }
                            Err(shared) => {
                                for (i, v) in shared.iter().enumerate() {
                                    locals[base + i] = v.clone();
                                }
                            }
                        }
                        ip = arm.target as usize;
                    }
                    other => return Err(EvalError::Stuck(format!("match on {other}"))),
                },
            }
        }
    }

    /// Pushes a new activation record, charging one fuel unit.
    #[allow(clippy::too_many_arguments)]
    fn enter(
        &mut self,
        code: &CodeObject,
        frames: &mut Vec<Frame>,
        locals: &mut Vec<Value>,
        stack_base: usize,
        func: u32,
        arg: Option<Value>,
        clo: Option<Rc<VmClosure>>,
        rec: Option<Rc<VmClosure>>,
    ) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        let f = &code.funcs[func as usize];
        let locals_base = locals.len();
        let mut filled = 0;
        if let Some(a) = arg {
            locals.push(a);
            filled = 1;
        }
        for _ in filled..f.nslots {
            locals.push(Value::Unit);
        }
        frames.push(Frame {
            func,
            ip: 0,
            stack_base,
            locals_base,
            clo,
            rec,
        });
        Ok(())
    }
}

/// Executes a function's capture directives against the creating
/// frame (see [`CapSrc`]). `CompiledRec` sentinels are propagated
/// raw — they unfold only on operand loads.
fn materialize_captures(
    code: &CodeObject,
    func: u32,
    frames: &[Frame],
    locals: &[Value],
) -> Vec<Value> {
    let frame = frames.last().expect("creating frame");
    code.funcs[func as usize]
        .captures
        .iter()
        .map(|src| match src {
            CapSrc::Local(s) => locals[frame.locals_base + *s as usize].clone(),
            CapSrc::Capture(i) => {
                frame.clo.as_ref().expect("transitive capture").captures[*i as usize].clone()
            }
            CapSrc::Rec => Value::CompiledRec(frame.rec.clone().expect("rec capture outside fix")),
        })
        .collect()
}

/// Convenience: compiles a closed term and runs it with the default
/// budget (the compiled-backend analogue of [`crate::eval::eval`]).
///
/// # Errors
///
/// An unbound variable surfaces as [`EvalError::UnboundVar`] (the
/// tree-walker reports the same term the same way, just later);
/// otherwise see [`Vm::run`].
pub fn compile_and_run(e: &FExpr) -> Result<Value, EvalError> {
    let mut compiler = Compiler::new();
    let main = compiler.compile(e).map_err(|err| match err {
        CompileError::Unbound(x) => EvalError::UnboundVar(x),
    })?;
    Vm::new().run(compiler.code(), main, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Evaluator};
    use crate::syntax::{BinOp, FMatchArm, FType};

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// Both backends must agree on the printed result.
    fn agree(e: &FExpr) -> String {
        let tree = eval(e).expect("tree-walk");
        let vm = compile_and_run(e).expect("vm");
        assert_eq!(tree.to_string(), vm.to_string(), "backends disagree on {e}");
        vm.to_string()
    }

    #[test]
    fn literals_and_arithmetic() {
        let e = FExpr::BinOp(
            BinOp::Add,
            Rc::new(FExpr::Int(40)),
            Rc::new(FExpr::BinOp(
                BinOp::Mul,
                Rc::new(FExpr::Int(1)),
                Rc::new(FExpr::Int(2)),
            )),
        );
        assert_eq!(agree(&e), "42");
    }

    #[test]
    fn beta_reduction_and_shadowing() {
        let inner = FExpr::app(FExpr::lam("x", FType::Int, FExpr::var("x")), FExpr::Int(2));
        let e = FExpr::app(FExpr::lam("x", FType::Int, inner), FExpr::Int(1));
        assert_eq!(agree(&e), "2");
    }

    #[test]
    fn closures_capture_transitively() {
        // (\x. (\y. (\z. x + (y + z)) 3) 2) 1 — z's function captures
        // x and y through two levels.
        let body = FExpr::BinOp(
            BinOp::Add,
            Rc::new(FExpr::var("x")),
            Rc::new(FExpr::BinOp(
                BinOp::Add,
                Rc::new(FExpr::var("y")),
                Rc::new(FExpr::var("z")),
            )),
        );
        let e = FExpr::app(
            FExpr::lam(
                "x",
                FType::Int,
                FExpr::app(
                    FExpr::lam(
                        "y",
                        FType::Int,
                        FExpr::app(FExpr::lam("z", FType::Int, body), FExpr::Int(3)),
                    ),
                    FExpr::Int(2),
                ),
            ),
            FExpr::Int(1),
        );
        assert_eq!(agree(&e), "6");
    }

    #[test]
    fn type_application_forces_body() {
        let a = v("a");
        let id = FExpr::ty_abs([a], FExpr::lam("x", FType::Var(a), FExpr::var("x")));
        let e = FExpr::app(FExpr::TyApp(Rc::new(id), FType::Int), FExpr::Int(7));
        assert_eq!(agree(&e), "7");
    }

    #[test]
    fn tyabs_is_a_value_with_matching_rendering() {
        let a = v("a");
        let e = FExpr::ty_abs([a], FExpr::Int(1));
        assert_eq!(agree(&e), "<type-closure>");
        let lam = FExpr::lam("x", FType::Int, FExpr::var("x"));
        assert_eq!(agree(&lam), "<closure>");
    }

    fn fac_expr() -> FExpr {
        FExpr::Fix(
            v("fac"),
            FType::arrow(FType::Int, FType::Int),
            Rc::new(FExpr::lam(
                "n",
                FType::Int,
                FExpr::If(
                    Rc::new(FExpr::BinOp(
                        BinOp::Le,
                        Rc::new(FExpr::var("n")),
                        Rc::new(FExpr::Int(0)),
                    )),
                    Rc::new(FExpr::Int(1)),
                    Rc::new(FExpr::BinOp(
                        BinOp::Mul,
                        Rc::new(FExpr::var("n")),
                        Rc::new(FExpr::app(
                            FExpr::var("fac"),
                            FExpr::BinOp(
                                BinOp::Sub,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::Int(1)),
                            ),
                        )),
                    )),
                ),
            )),
        )
    }

    #[test]
    fn factorial_via_fix() {
        let e = FExpr::app(fac_expr(), FExpr::Int(6));
        assert_eq!(agree(&e), "720");
    }

    #[test]
    fn fix_self_reference_survives_closure_capture() {
        // fix go: Int -> Int. \n. if n <= 0 then 0
        //   else (\unused. go (n - 1)) () — the recursive call sits
        // inside a nested lambda, so `go` travels as a CompiledRec
        // capture and unfolds on load.
        let call = FExpr::app(
            FExpr::var("go"),
            FExpr::BinOp(BinOp::Sub, Rc::new(FExpr::var("n")), Rc::new(FExpr::Int(1))),
        );
        let wrapped = FExpr::app(FExpr::lam("unused", FType::Unit, call), FExpr::Unit);
        let e = FExpr::app(
            FExpr::Fix(
                v("go"),
                FType::arrow(FType::Int, FType::Int),
                Rc::new(FExpr::lam(
                    "n",
                    FType::Int,
                    FExpr::If(
                        Rc::new(FExpr::BinOp(
                            BinOp::Le,
                            Rc::new(FExpr::var("n")),
                            Rc::new(FExpr::Int(0)),
                        )),
                        Rc::new(FExpr::Int(0)),
                        Rc::new(wrapped),
                    ),
                )),
            ),
            FExpr::Int(25),
        );
        assert_eq!(agree(&e), "0");
    }

    #[test]
    fn divergence_runs_out_of_fuel() {
        let looping = FExpr::Fix(
            v("loop"),
            FType::arrow(FType::Int, FType::Int),
            Rc::new(FExpr::lam(
                "n",
                FType::Int,
                FExpr::app(FExpr::var("loop"), FExpr::var("n")),
            )),
        );
        let e = FExpr::app(looping, FExpr::Int(0));
        let mut compiler = Compiler::new();
        let main = compiler.compile(&e).unwrap();
        let err = Vm::with_fuel(500)
            .run(compiler.code(), main, &[])
            .unwrap_err();
        assert_eq!(err, EvalError::OutOfFuel);
    }

    #[test]
    fn vm_fuel_never_exceeds_tree_fuel() {
        // The comparability invariant: on a call-heavy program the VM
        // charges no more fuel than the tree-walker, so a shared
        // budget cannot fail only on the VM side.
        let e = FExpr::app(fac_expr(), FExpr::Int(12));
        let mut tree_fuel = None;
        for budget in 0..10_000 {
            if Evaluator::with_fuel(budget).eval(&e).is_ok() {
                tree_fuel = Some(budget);
                break;
            }
        }
        let tree_fuel = tree_fuel.expect("tree-walk terminates");
        let mut compiler = Compiler::new();
        let main = compiler.compile(&e).unwrap();
        assert!(
            Vm::with_fuel(tree_fuel)
                .run(compiler.code(), main, &[])
                .is_ok(),
            "VM needs more fuel than the tree-walker"
        );
    }

    #[test]
    fn division_by_zero_matches() {
        let e = FExpr::BinOp(BinOp::Div, Rc::new(FExpr::Int(1)), Rc::new(FExpr::Int(0)));
        assert_eq!(compile_and_run(&e).unwrap_err(), EvalError::DivisionByZero);
        assert_eq!(eval(&e).unwrap_err(), EvalError::DivisionByZero);
    }

    #[test]
    fn lists_case_and_strings() {
        let xs = FExpr::Cons(
            Rc::new(FExpr::Int(1)),
            Rc::new(FExpr::Cons(
                Rc::new(FExpr::Int(2)),
                Rc::new(FExpr::Nil(FType::Int)),
            )),
        );
        let e = FExpr::ListCase {
            scrut: Rc::new(xs.clone()),
            nil: Rc::new(FExpr::Int(0)),
            head: v("h"),
            tail: v("t"),
            cons: Rc::new(FExpr::BinOp(
                BinOp::Add,
                Rc::new(FExpr::var("h")),
                Rc::new(FExpr::ListCase {
                    scrut: Rc::new(FExpr::var("t")),
                    nil: Rc::new(FExpr::Int(100)),
                    head: v("h"),
                    tail: v("t"),
                    cons: Rc::new(FExpr::var("h")),
                }),
            )),
        };
        assert_eq!(agree(&e), "3");
        assert_eq!(agree(&xs), "[1, 2]");
        let s = FExpr::BinOp(
            BinOp::Concat,
            Rc::new(FExpr::Str("1,".into())),
            Rc::new(FExpr::UnOp(UnOp::IntToStr, Rc::new(FExpr::Int(23)))),
        );
        assert_eq!(agree(&s), "\"1,23\"");
    }

    #[test]
    fn records_and_data() {
        let lit = FExpr::Make(
            v("P"),
            vec![],
            vec![(v("x"), FExpr::Int(3)), (v("y"), FExpr::Int(4))],
        );
        assert_eq!(agree(&FExpr::Proj(Rc::new(lit.clone()), v("y"))), "4");
        assert_eq!(agree(&lit), "P { x = 3, y = 4 }");

        let scrut = FExpr::Inject(v("Cons2"), vec![], vec![FExpr::Int(7), FExpr::Int(8)]);
        let m = FExpr::Match(
            Rc::new(scrut),
            vec![
                FMatchArm {
                    ctor: v("Nil2"),
                    binders: vec![],
                    body: FExpr::Int(0),
                },
                FMatchArm {
                    ctor: v("Cons2"),
                    binders: vec![v("a"), v("b")],
                    body: FExpr::BinOp(
                        BinOp::Mul,
                        Rc::new(FExpr::var("a")),
                        Rc::new(FExpr::var("b")),
                    ),
                },
            ],
        );
        assert_eq!(agree(&m), "56");
    }

    #[test]
    fn globals_resolve_and_roll_back() {
        let mut compiler = Compiler::new();
        let g = v("forty");
        compiler.add_global(g);
        let snap = compiler.snapshot();
        let e = FExpr::BinOp(BinOp::Add, Rc::new(FExpr::Var(g)), Rc::new(FExpr::Int(2)));
        let main = compiler.compile(&e).unwrap();
        let out = Vm::new()
            .run(compiler.code(), main, &[Value::Int(40)])
            .unwrap();
        assert_eq!(out.to_string(), "42");
        compiler.rollback(&snap);
        assert!(compiler.code().funcs.is_empty());
        // Recompiling after rollback reuses the same indices, and the
        // constant pool repopulates without drift.
        let main2 = compiler.compile(&e).unwrap();
        assert_eq!(main2, main);
        let out2 = Vm::new()
            .run(compiler.code(), main2, &[Value::Int(40)])
            .unwrap();
        assert_eq!(out2.to_string(), "42");
    }

    #[test]
    fn unbound_variables_error_like_the_tree_walker() {
        let e = FExpr::var("nope");
        assert_eq!(
            compile_and_run(&e).unwrap_err(),
            EvalError::UnboundVar(v("nope"))
        );
        assert_eq!(eval(&e).unwrap_err(), EvalError::UnboundVar(v("nope")));
    }

    #[test]
    fn deep_recursion_runs_in_constant_host_stack() {
        // 50k non-tail-recursive calls: the tree-walker would need a
        // large host stack for this; the VM must not. Run it on a
        // deliberately small 512 KB thread to prove the point
        // (`FExpr` is `Rc`-based and not `Send`, so the program is
        // built inside the thread).
        let handle = std::thread::Builder::new()
            .stack_size(512 * 1024)
            .spawn(|| {
                let sum = FExpr::Fix(
                    v("sum"),
                    FType::arrow(FType::Int, FType::Int),
                    Rc::new(FExpr::lam(
                        "n",
                        FType::Int,
                        FExpr::If(
                            Rc::new(FExpr::BinOp(
                                BinOp::Le,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::Int(0)),
                            )),
                            Rc::new(FExpr::Int(0)),
                            Rc::new(FExpr::BinOp(
                                BinOp::Add,
                                Rc::new(FExpr::var("n")),
                                Rc::new(FExpr::app(
                                    FExpr::var("sum"),
                                    FExpr::BinOp(
                                        BinOp::Sub,
                                        Rc::new(FExpr::var("n")),
                                        Rc::new(FExpr::Int(1)),
                                    ),
                                )),
                            )),
                        ),
                    )),
                );
                let e = FExpr::app(sum, FExpr::Int(50_000));
                compile_and_run(&e).map(|value| value.to_string())
            })
            .expect("spawn");
        let out = handle.join().expect("no stack overflow");
        assert_eq!(out.unwrap(), (50_000i64 * 50_001 / 2).to_string());
    }
}
