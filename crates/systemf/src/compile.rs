//! Closure conversion and bytecode compilation for elaborated
//! System F terms.
//!
//! After the type checker has accepted a term, its types are dead
//! weight at runtime: the compiler erases them, resolves every
//! variable to a frame slot, a capture index, or a global, and
//! flattens the tree into a linear instruction stream executed by
//! [`crate::vm::Vm`] in constant host stack. Type abstraction is
//! *not* fully erased — `Λα.E` must remain a value (the tree-walker
//! prints it as `<type-closure>` and type application delays
//! evaluation of `E`), so it compiles to a nullary closure forced by
//! [`Instr::Force`].
//!
//! Closures are *flat*: each function lists, as [`CapSrc`]
//! directives, how its creator materializes the captured values at
//! closure-creation time. Recursion (`fix x:T. E`) mirrors the
//! tree-walker's unfold-one-step semantics: the recursive
//! self-reference is a [`crate::eval::Value::CompiledRec`] sentinel
//! that re-enters the fix body when loaded, so no reference cycles or
//! interior mutability are needed.
//!
//! The compiler is incremental: [`Compiler::snapshot`] /
//! [`Compiler::rollback`] let a warm session compile its prelude
//! once, then compile each batch program as an extension that is
//! discarded afterwards — the same watermark discipline the
//! hash-consing interner uses.

use std::collections::HashMap;
use std::rc::Rc;

use implicit_core::symbol::Symbol;

use crate::eval::Value;
use crate::syntax::{BinOp, FExpr, UnOp};

/// How the *creating* frame materializes one captured value when it
/// executes a [`Instr::Closure`] / [`Instr::TyClosure`] /
/// [`Instr::EnterFix`] instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapSrc {
    /// Copy the creator's local slot.
    Local(u16),
    /// Copy the creator's own capture (raw — a `CompiledRec`
    /// sentinel is propagated, not unfolded).
    Capture(u16),
    /// The creator's recursive self-reference, stored as a
    /// `CompiledRec` sentinel.
    Rec,
}

/// What kind of source binder a compiled function came from (for
/// diagnostics and tests; the VM treats all kinds uniformly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncKind {
    /// `λ(x:T).E` — one parameter in slot 0.
    Lambda,
    /// `Λα.E` erased to a nullary thunk.
    TyAbs,
    /// The body of `fix x:T. E`; entering it unfolds the recursion
    /// one step.
    FixBody,
    /// A top-level expression compiled by [`Compiler::compile`].
    Main,
}

/// One compiled function.
#[derive(Clone, Debug)]
pub struct FuncCode {
    /// Source binder kind.
    pub kind: FuncKind,
    /// Frame size: the high-water mark of local slots (parameter,
    /// `case`/`match` binders).
    pub nslots: u16,
    /// Capture directives, executed by the creator in order.
    pub captures: Vec<CapSrc>,
    /// The instruction stream; every path ends in [`Instr::Ret`] or
    /// [`Instr::TailCall`].
    pub code: Vec<Instr>,
}

/// A bytecode instruction. Jump targets are absolute indices into
/// the owning function's `code`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// Push constant-pool entry.
    Const(u32),
    /// Push local slot (relative to the frame's locals base).
    Local(u16),
    /// Push capture; a `CompiledRec` sentinel unfolds (enters the fix
    /// body) instead of being pushed.
    Capture(u16),
    /// Push a session global.
    Global(u32),
    /// Unfold the current frame's recursive self-reference.
    Rec,
    /// Build a function closure and push it.
    Closure(u32),
    /// Build a nullary type-abstraction thunk and push it.
    TyClosure(u32),
    /// Build the closure for a fix body and immediately enter it.
    EnterFix(u32),
    /// Pop argument then function; enter the function.
    Call,
    /// Pop argument then function; *replace* the current frame with
    /// the function's (emitted for calls in tail position, so
    /// tail-recursive loops run in constant frames and locals).
    TailCall,
    /// Pop a type-abstraction thunk; enter it.
    Force,
    /// Pop the result, discard the frame, resume the caller.
    Ret,
    /// Unconditional jump.
    Jump(u32),
    /// Pop a boolean; jump when false.
    JumpIfFalse(u32),
    /// Pop right then left operand; apply a primitive operator.
    Bin(BinOp),
    /// Pop the operand; apply a unary operator.
    Un(UnOp),
    /// Pop right then left; push a pair.
    MakePair,
    /// Pop a pair; push its first component.
    Fst,
    /// Pop a pair; push its second component.
    Snd,
    /// Push the empty list.
    PushNil,
    /// Pop tail then head; push the extended list.
    ConsList,
    /// Pop a list. Empty: jump to `nil_target`. Non-empty: store the
    /// head and tail into the named slots and fall through.
    CaseList {
        /// Slot receiving the head.
        head: u16,
        /// Slot receiving the tail list.
        tail: u16,
        /// Branch target for the empty list.
        nil_target: u32,
    },
    /// Pop the field values (pushed in declaration order); push a
    /// record. The payload indexes [`CodeObject::field_lists`].
    MakeRecord {
        /// Interface name.
        name: Symbol,
        /// Index into the field-name pool.
        fields: u32,
    },
    /// Pop a record; push the named field.
    Project(Symbol),
    /// Pop `argc` constructor arguments; push a data value.
    Inject {
        /// Constructor name.
        ctor: Symbol,
        /// Argument count.
        argc: u16,
    },
    /// Pop a data value; select the arm from the indexed
    /// [`MatchTable`], bind its fields, and jump to the arm body.
    Match(u32),
}

/// The dispatch table of one `match` expression.
#[derive(Clone, Debug, Default)]
pub struct MatchTable {
    /// Arms in source order (first match by constructor wins, as in
    /// the tree-walker).
    pub arms: Vec<MatchArmCode>,
}

/// One compiled `match` arm.
#[derive(Clone, Debug)]
pub struct MatchArmCode {
    /// Constructor name.
    pub ctor: Symbol,
    /// First local slot of the arm's binders (consecutive).
    pub binder_base: u16,
    /// Binder count (must equal the scrutinee's field count).
    pub binders: u16,
    /// Jump target of the arm body.
    pub target: u32,
}

/// A compiled program: functions plus the pools they reference.
#[derive(Clone, Debug, Default)]
pub struct CodeObject {
    /// Compiled functions, indexed by [`Instr::Closure`] etc.
    pub funcs: Vec<FuncCode>,
    /// Constant pool (ints, strings, booleans, unit — deduplicated).
    pub consts: Vec<Value>,
    /// Field-name lists for [`Instr::MakeRecord`].
    pub field_lists: Vec<Rc<[Symbol]>>,
    /// Dispatch tables for [`Instr::Match`].
    pub match_tables: Vec<MatchTable>,
}

/// A compile-time error. Well-typed closed terms (optionally closed
/// up to registered globals) never produce one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A variable is neither bound, captured, recursive, nor a
    /// registered global.
    Unbound(Symbol),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unbound(x) => write!(f, "unbound variable `{x}` at compile time"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Watermarks for rolling a [`Compiler`] back to a previous state
/// (see [`Compiler::snapshot`]).
#[derive(Clone, Copy, Debug)]
pub struct CodeSnapshot {
    funcs: usize,
    consts: usize,
    field_lists: usize,
    match_tables: usize,
    globals: usize,
}

/// One function mid-compilation.
struct FnCtx {
    kind: FuncKind,
    /// Binders currently in scope, innermost last.
    scope: Vec<(Symbol, u16)>,
    /// For fix bodies: the fix's own name.
    rec_name: Option<Symbol>,
    cap_names: Vec<Symbol>,
    cap_srcs: Vec<CapSrc>,
    next_slot: u16,
    nslots: u16,
    code: Vec<Instr>,
}

impl FnCtx {
    fn new(kind: FuncKind, param: Option<Symbol>, rec_name: Option<Symbol>) -> FnCtx {
        let mut ctx = FnCtx {
            kind,
            scope: Vec::new(),
            rec_name,
            cap_names: Vec::new(),
            cap_srcs: Vec::new(),
            next_slot: 0,
            nslots: 0,
            code: Vec::new(),
        };
        if let Some(p) = param {
            let slot = ctx.alloc_slot();
            ctx.scope.push((p, slot));
        }
        ctx
    }

    fn alloc_slot(&mut self) -> u16 {
        let s = self.next_slot;
        self.next_slot += 1;
        self.nslots = self.nslots.max(self.next_slot);
        s
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::CaseList { nil_target: t, .. } => {
                *t = target;
            }
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }
}

/// The incremental bytecode compiler.
///
/// A session-scoped instance accumulates functions, pools, and
/// globals across many [`Compiler::compile`] calls; the produced
/// [`CodeObject`] is shared by all of them, so a warm session's
/// prelude functions stay compiled while per-program extensions are
/// rolled back via [`Compiler::rollback`].
#[derive(Default)]
pub struct Compiler {
    code: CodeObject,
    int_pool: HashMap<i64, u32>,
    str_pool: HashMap<String, u32>,
    misc_pool: HashMap<u8, u32>,
    globals: Vec<Symbol>,
    global_map: HashMap<Symbol, u32>,
}

impl Compiler {
    /// An empty compiler.
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// The accumulated code object.
    pub fn code(&self) -> &CodeObject {
        &self.code
    }

    /// The registered global names, in slot order (the VM's `globals`
    /// argument must be parallel to this).
    pub fn globals(&self) -> &[Symbol] {
        &self.globals
    }

    /// Registers `name` as a global, returning its slot. Idempotent.
    pub fn add_global(&mut self, name: Symbol) -> u32 {
        if let Some(&i) = self.global_map.get(&name) {
            return i;
        }
        let i = self.globals.len() as u32;
        self.globals.push(name);
        self.global_map.insert(name, i);
        i
    }

    /// Captures the current pool/function/global watermarks.
    pub fn snapshot(&self) -> CodeSnapshot {
        CodeSnapshot {
            funcs: self.code.funcs.len(),
            consts: self.code.consts.len(),
            field_lists: self.code.field_lists.len(),
            match_tables: self.code.match_tables.len(),
            globals: self.globals.len(),
        }
    }

    /// Rolls back to `snap`, discarding everything compiled since.
    pub fn rollback(&mut self, snap: &CodeSnapshot) {
        self.code.funcs.truncate(snap.funcs);
        self.code.consts.truncate(snap.consts);
        self.code.field_lists.truncate(snap.field_lists);
        self.code.match_tables.truncate(snap.match_tables);
        let consts = snap.consts as u32;
        self.int_pool.retain(|_, i| *i < consts);
        self.str_pool.retain(|_, i| *i < consts);
        self.misc_pool.retain(|_, i| *i < consts);
        let globals = snap.globals as u32;
        self.globals.truncate(snap.globals);
        self.global_map.retain(|_, i| *i < globals);
    }

    /// Compiles a term (closed up to the registered globals) into a
    /// new entry-point function and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Unbound`] when a free variable is not
    /// a registered global — for elaborated, typechecked input this
    /// indicates an elaboration bug.
    pub fn compile(&mut self, e: &FExpr) -> Result<u32, CompileError> {
        let mut fns = vec![FnCtx::new(FuncKind::Main, None, None)];
        self.compile_expr(&mut fns, e, true)?;
        let ctx = fns.pop().expect("main context");
        debug_assert!(fns.is_empty(), "unbalanced function contexts");
        debug_assert!(ctx.cap_srcs.is_empty(), "main function cannot capture");
        Ok(self.finish(ctx))
    }

    fn finish(&mut self, mut ctx: FnCtx) -> u32 {
        ctx.emit(Instr::Ret);
        let idx = self.code.funcs.len() as u32;
        self.code.funcs.push(FuncCode {
            kind: ctx.kind,
            nslots: ctx.nslots,
            captures: ctx.cap_srcs,
            code: ctx.code,
        });
        idx
    }

    fn pool_const(&mut self, v: Value, key: PoolKey) -> u32 {
        let consts = &mut self.code.consts;
        let mut insert = |v: Value| {
            let i = consts.len() as u32;
            consts.push(v);
            i
        };
        match key {
            PoolKey::Int(n) => *self.int_pool.entry(n).or_insert_with(|| insert(v)),
            PoolKey::Str(s) => *self.str_pool.entry(s).or_insert_with(|| insert(v)),
            PoolKey::Misc(k) => *self.misc_pool.entry(k).or_insert_with(|| insert(v)),
        }
    }

    /// Compiles one expression. `tail` marks tail position: a call
    /// there becomes [`Instr::TailCall`], reusing the current frame.
    /// Fix bodies reset it to `false` so their [`Instr::Ret`] always
    /// runs (the VM's unfold cache is written there).
    fn compile_expr(
        &mut self,
        fns: &mut Vec<FnCtx>,
        e: &FExpr,
        tail: bool,
    ) -> Result<(), CompileError> {
        match e {
            FExpr::Int(n) => {
                let i = self.pool_const(Value::Int(*n), PoolKey::Int(*n));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Bool(b) => {
                let i = self.pool_const(Value::Bool(*b), PoolKey::Misc(u8::from(*b)));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Str(s) => {
                let i = self.pool_const(Value::Str(Rc::from(s.as_str())), PoolKey::Str(s.clone()));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Unit => {
                let i = self.pool_const(Value::Unit, PoolKey::Misc(2));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Var(x) => {
                let load = match resolve_var(fns, *x) {
                    Some(CapSrc::Local(s)) => Instr::Local(s),
                    Some(CapSrc::Capture(i)) => Instr::Capture(i),
                    Some(CapSrc::Rec) => Instr::Rec,
                    None => match self.global_map.get(x) {
                        Some(&g) => Instr::Global(g),
                        None => return Err(CompileError::Unbound(*x)),
                    },
                };
                fns.last_mut().expect("fn ctx").emit(load);
            }
            FExpr::Lam(x, _, b) => {
                fns.push(FnCtx::new(FuncKind::Lambda, Some(*x), None));
                self.compile_expr(fns, b, true)?;
                let ctx = fns.pop().expect("lambda context");
                let idx = self.finish(ctx);
                fns.last_mut().expect("fn ctx").emit(Instr::Closure(idx));
            }
            FExpr::App(f, a) => {
                self.compile_expr(fns, f, false)?;
                self.compile_expr(fns, a, false)?;
                let call = if tail { Instr::TailCall } else { Instr::Call };
                fns.last_mut().expect("fn ctx").emit(call);
            }
            FExpr::TyAbs(_, b) => {
                fns.push(FnCtx::new(FuncKind::TyAbs, None, None));
                self.compile_expr(fns, b, true)?;
                let ctx = fns.pop().expect("tyabs context");
                let idx = self.finish(ctx);
                fns.last_mut().expect("fn ctx").emit(Instr::TyClosure(idx));
            }
            FExpr::TyApp(f, _) => {
                self.compile_expr(fns, f, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Force);
            }
            FExpr::If(c, t, el) => {
                self.compile_expr(fns, c, false)?;
                let to_else = fns.last_mut().expect("fn ctx").emit(Instr::JumpIfFalse(0));
                self.compile_expr(fns, t, tail)?;
                let to_end = fns.last_mut().expect("fn ctx").emit(Instr::Jump(0));
                let ctx = fns.last_mut().expect("fn ctx");
                let else_at = ctx.here();
                ctx.patch(to_else, else_at);
                self.compile_expr(fns, el, tail)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                ctx.patch(to_end, end);
            }
            FExpr::BinOp(op, a, b) => {
                self.compile_expr(fns, a, false)?;
                self.compile_expr(fns, b, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Bin(*op));
            }
            FExpr::UnOp(op, a) => {
                self.compile_expr(fns, a, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Un(*op));
            }
            FExpr::Pair(a, b) => {
                self.compile_expr(fns, a, false)?;
                self.compile_expr(fns, b, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::MakePair);
            }
            FExpr::Fst(a) => {
                self.compile_expr(fns, a, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Fst);
            }
            FExpr::Snd(a) => {
                self.compile_expr(fns, a, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Snd);
            }
            FExpr::Nil(_) => {
                fns.last_mut().expect("fn ctx").emit(Instr::PushNil);
            }
            FExpr::Cons(h, t) => {
                self.compile_expr(fns, h, false)?;
                self.compile_expr(fns, t, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::ConsList);
            }
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail: tail_name,
                cons,
            } => {
                self.compile_expr(fns, scrut, false)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let saved_scope = ctx.scope.len();
                let saved_slot = ctx.next_slot;
                let hslot = ctx.alloc_slot();
                let tslot = ctx.alloc_slot();
                let case_at = ctx.emit(Instr::CaseList {
                    head: hslot,
                    tail: tslot,
                    nil_target: 0,
                });
                ctx.scope.push((*head, hslot));
                ctx.scope.push((*tail_name, tslot));
                self.compile_expr(fns, cons, tail)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.scope.truncate(saved_scope);
                ctx.next_slot = saved_slot;
                let to_end = ctx.emit(Instr::Jump(0));
                let nil_at = ctx.here();
                ctx.patch(case_at, nil_at);
                self.compile_expr(fns, nil, tail)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                ctx.patch(to_end, end);
            }
            FExpr::Fix(x, _, b) => {
                // Not tail position: the fix body's `Ret` must run so
                // the VM can cache the one-step unfolding.
                fns.push(FnCtx::new(FuncKind::FixBody, None, Some(*x)));
                self.compile_expr(fns, b, false)?;
                let ctx = fns.pop().expect("fix context");
                let idx = self.finish(ctx);
                fns.last_mut().expect("fn ctx").emit(Instr::EnterFix(idx));
            }
            FExpr::Make(name, _, fields) => {
                for (_, fe) in fields {
                    self.compile_expr(fns, fe, false)?;
                }
                let syms: Rc<[Symbol]> = fields.iter().map(|(u, _)| *u).collect();
                let fl = self.code.field_lists.len() as u32;
                self.code.field_lists.push(syms);
                fns.last_mut().expect("fn ctx").emit(Instr::MakeRecord {
                    name: *name,
                    fields: fl,
                });
            }
            FExpr::Proj(rec, field) => {
                self.compile_expr(fns, rec, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Project(*field));
            }
            FExpr::Inject(ctor, _, args) => {
                for a in args {
                    self.compile_expr(fns, a, false)?;
                }
                fns.last_mut().expect("fn ctx").emit(Instr::Inject {
                    ctor: *ctor,
                    argc: args.len() as u16,
                });
            }
            FExpr::Match(scrut, arms) => {
                self.compile_expr(fns, scrut, false)?;
                let tbl = self.code.match_tables.len() as u32;
                self.code.match_tables.push(MatchTable::default());
                fns.last_mut().expect("fn ctx").emit(Instr::Match(tbl));
                let mut compiled_arms = Vec::with_capacity(arms.len());
                let mut end_jumps = Vec::with_capacity(arms.len());
                for arm in arms {
                    let ctx = fns.last_mut().expect("fn ctx");
                    let target = ctx.here();
                    let saved_scope = ctx.scope.len();
                    let saved_slot = ctx.next_slot;
                    let binder_base = ctx.next_slot;
                    for b in &arm.binders {
                        let s = ctx.alloc_slot();
                        ctx.scope.push((*b, s));
                    }
                    self.compile_expr(fns, &arm.body, tail)?;
                    let ctx = fns.last_mut().expect("fn ctx");
                    ctx.scope.truncate(saved_scope);
                    ctx.next_slot = saved_slot;
                    end_jumps.push(ctx.emit(Instr::Jump(0)));
                    compiled_arms.push(MatchArmCode {
                        ctor: arm.ctor,
                        binder_base,
                        binders: arm.binders.len() as u16,
                        target,
                    });
                }
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                for j in end_jumps {
                    ctx.patch(j, end);
                }
                self.code.match_tables[tbl as usize].arms = compiled_arms;
            }
        }
        Ok(())
    }
}

/// Keys for constant-pool deduplication.
enum PoolKey {
    Int(i64),
    Str(String),
    /// `0`/`1` for the booleans, `2` for unit.
    Misc(u8),
}

/// Resolves a variable against the in-progress function stack,
/// threading captures through intermediate functions. Returns how
/// the *innermost* function loads the value, or `None` for a free
/// variable (candidate global).
fn resolve_var(fns: &mut [FnCtx], name: Symbol) -> Option<CapSrc> {
    fn go(fns: &mut [FnCtx], level: usize, name: Symbol) -> Option<CapSrc> {
        let ctx = &fns[level];
        if let Some((_, slot)) = ctx.scope.iter().rev().find(|(n, _)| *n == name) {
            return Some(CapSrc::Local(*slot));
        }
        if ctx.rec_name == Some(name) {
            return Some(CapSrc::Rec);
        }
        if let Some(i) = ctx.cap_names.iter().position(|n| *n == name) {
            return Some(CapSrc::Capture(i as u16));
        }
        if level == 0 {
            return None;
        }
        // The parent's scope is frozen while this function compiles,
        // so capture-by-name deduplication is sound.
        let parent_src = go(fns, level - 1, name)?;
        let ctx = &mut fns[level];
        ctx.cap_names.push(name);
        ctx.cap_srcs.push(parent_src);
        Some(CapSrc::Capture((ctx.cap_names.len() - 1) as u16))
    }
    go(fns, fns.len() - 1, name)
}
