//! Closure conversion and bytecode compilation for elaborated
//! System F terms.
//!
//! After the type checker has accepted a term, its types are dead
//! weight at runtime: the compiler erases them, resolves every
//! variable to a frame slot, a capture index, or a global, and
//! flattens the tree into a linear instruction stream executed by
//! [`crate::vm::Vm`] in constant host stack.
//!
//! The compiler targets one of two ISAs (chosen at construction, see
//! [`Isa`]): the default **register ISA** — three-address
//! instructions over frame slots with RK-encoded small-constant
//! operands, compiled directly from the AST with a stack-discipline
//! virtual-register allocator and move coalescing (a variable
//! reference is its binder's register; no shuffle is emitted) — and
//! the PR 6 **stack ISA**, kept for one release as a differential
//! baseline for the conformance oracle. Type abstraction is
//! *not* fully erased — `Λα.E` must remain a value (the tree-walker
//! prints it as `<type-closure>` and type application delays
//! evaluation of `E`), so it compiles to a nullary closure forced by
//! [`Instr::Force`].
//!
//! Closures are *flat*: each function lists, as [`CapSrc`]
//! directives, how its creator materializes the captured values at
//! closure-creation time. Recursion (`fix x:T. E`) mirrors the
//! tree-walker's unfold-one-step semantics: the recursive
//! self-reference is a [`crate::eval::Value::CompiledRec`] sentinel
//! that re-enters the fix body when loaded, so no reference cycles or
//! interior mutability are needed.
//!
//! The compiler is incremental: [`Compiler::snapshot`] /
//! [`Compiler::rollback`] let a warm session compile its prelude
//! once, then compile each batch program as an extension that is
//! discarded afterwards — the same watermark discipline the
//! hash-consing interner uses.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use implicit_core::symbol::Symbol;

use crate::eval::Value;
use crate::syntax::{BinOp, FExpr, UnOp};

/// How the *creating* frame materializes one captured value when it
/// executes a [`Instr::Closure`] / [`Instr::TyClosure`] /
/// [`Instr::EnterFix`] instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapSrc {
    /// Copy the creator's local slot.
    Local(u16),
    /// Copy the creator's own capture (raw — a `CompiledRec`
    /// sentinel is propagated, not unfolded).
    Capture(u16),
    /// The creator's recursive self-reference, stored as a
    /// `CompiledRec` sentinel.
    Rec,
}

/// Which instruction set a [`Compiler`] (and the [`CodeObject`] it
/// grows) targets. Fixed at construction: a code object never mixes
/// ISAs, and [`crate::vm::Vm::run`] picks its dispatch loop from it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Isa {
    /// Three-address register code: operands and results live in the
    /// frame's flat register window, there is no operand stack, and
    /// small constants ride inline as RK operands. The default.
    #[default]
    Register,
    /// The PR 6 operand-stack ISA, kept for one release as the
    /// register-vs-stack differential baseline
    /// (`--backend vm-stack`).
    Stack,
}

/// RK operand encoding (register ISA): a `u16` operand with bit 15
/// clear names a frame register; with bit 15 set, the low 15 bits
/// index the constant pool. Pool entries beyond [`RK_MASK`] are
/// materialized through [`Instr::RConst`] instead.
pub const RK_CONST: u16 = 0x8000;
/// Payload mask of an RK operand.
pub const RK_MASK: u16 = 0x7FFF;

/// What kind of source binder a compiled function came from (for
/// diagnostics and tests; the VM treats all kinds uniformly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncKind {
    /// `λ(x:T).E` — one parameter in slot 0.
    Lambda,
    /// `Λα.E` erased to a nullary thunk.
    TyAbs,
    /// The body of `fix x:T. E`; entering it unfolds the recursion
    /// one step.
    FixBody,
    /// A top-level expression compiled by [`Compiler::compile`].
    Main,
}

/// One compiled function.
#[derive(Clone, Debug)]
pub struct FuncCode {
    /// Source binder kind.
    pub kind: FuncKind,
    /// Frame size: the high-water mark of local slots (parameter,
    /// `case`/`match` binders).
    pub nslots: u16,
    /// Capture directives, executed by the creator in order.
    pub captures: Vec<CapSrc>,
    /// The instruction stream; every path ends in [`Instr::Ret`] or
    /// [`Instr::TailCall`].
    pub code: Vec<Instr>,
}

/// A bytecode instruction. Jump targets are absolute indices into
/// the owning function's `code`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// Push constant-pool entry.
    Const(u32),
    /// Push local slot (relative to the frame's locals base).
    Local(u16),
    /// Push capture; a `CompiledRec` sentinel unfolds (enters the fix
    /// body) instead of being pushed.
    Capture(u16),
    /// Push a session global.
    Global(u32),
    /// Unfold the current frame's recursive self-reference.
    Rec,
    /// Build a function closure and push it.
    Closure(u32),
    /// Build a nullary type-abstraction thunk and push it.
    TyClosure(u32),
    /// Build the closure for a fix body and immediately enter it.
    EnterFix(u32),
    /// Pop argument then function; enter the function.
    Call,
    /// Pop argument then function; *replace* the current frame with
    /// the function's (emitted for calls in tail position, so
    /// tail-recursive loops run in constant frames and locals).
    TailCall,
    /// Pop a type-abstraction thunk; enter it.
    Force,
    /// Pop the result, discard the frame, resume the caller.
    Ret,
    /// Unconditional jump.
    Jump(u32),
    /// Pop a boolean; jump when false.
    JumpIfFalse(u32),
    /// Pop right then left operand; apply a primitive operator.
    Bin(BinOp),
    /// Pop the operand; apply a unary operator.
    Un(UnOp),
    /// Pop right then left; push a pair.
    MakePair,
    /// Pop a pair; push its first component.
    Fst,
    /// Pop a pair; push its second component.
    Snd,
    /// Push the empty list.
    PushNil,
    /// Pop tail then head; push the extended list.
    ConsList,
    /// Pop a list. Empty: jump to `nil_target`. Non-empty: store the
    /// head and tail into the named slots and fall through.
    CaseList {
        /// Slot receiving the head.
        head: u16,
        /// Slot receiving the tail list.
        tail: u16,
        /// Branch target for the empty list.
        nil_target: u32,
    },
    /// Pop the field values (pushed in declaration order); push a
    /// record. The payload indexes [`CodeObject::field_lists`].
    MakeRecord {
        /// Interface name.
        name: Symbol,
        /// Index into the field-name pool.
        fields: u32,
    },
    /// Pop a record; push the named field.
    Project(Symbol),
    /// Pop `argc` constructor arguments; push a data value.
    Inject {
        /// Constructor name.
        ctor: Symbol,
        /// Argument count.
        argc: u16,
    },
    /// Pop a data value; select the arm from the indexed
    /// [`MatchTable`], bind its fields, and jump to the arm body.
    Match(u32),
    /// Superinstruction: push local slot, then push constant-pool
    /// entry (fused `Local; Const`).
    LocalConst {
        /// Local slot.
        slot: u16,
        /// Constant-pool index.
        konst: u32,
    },
    /// Superinstruction: push two local slots (fused `Local; Local`).
    LocalLocal {
        /// First slot pushed.
        a: u16,
        /// Second slot pushed.
        b: u16,
    },
    /// Superinstruction: apply a primitive with the popped stack top
    /// as the left operand and a constant as the right operand (fused
    /// `Const; Bin`).
    ConstBin {
        /// Constant-pool index of the right operand.
        konst: u32,
        /// The operator.
        op: BinOp,
    },
    /// Superinstruction: apply a primitive with the popped stack top
    /// as the left operand and a local slot as the right operand
    /// (fused `Local; Bin`).
    LocalBin {
        /// Local slot of the right operand.
        slot: u16,
        /// The operator.
        op: BinOp,
    },
    /// Superinstruction: pop right then left operand, apply a
    /// primitive, and jump when the result is `false` (fused
    /// `Bin; JumpIfFalse` — the compare-and-branch at the top of
    /// every counting loop).
    BinJumpIfFalse {
        /// The operator.
        op: BinOp,
        /// Branch target for a `false` result.
        target: u32,
    },
    /// Superinstruction: return a constant (fused `Const; Ret`).
    ConstRet {
        /// Constant-pool index of the result.
        konst: u32,
    },
    /// Superinstruction: return a local slot (fused `Local; Ret`).
    LocalRet {
        /// Local slot of the result.
        slot: u16,
    },
    /// Superinstruction: apply a primitive to a local slot and a
    /// constant without touching the operand stack (fused
    /// `Local; Const; Bin` — the loop-variable update and the
    /// loop-bound compare both take this shape).
    LocalConstBin {
        /// Local slot of the left operand.
        slot: u16,
        /// Constant-pool index of the right operand.
        konst: u32,
        /// The operator.
        op: BinOp,
    },
    /// Superinstruction: apply a primitive to two local slots without
    /// touching the operand stack (fused `Local; Local; Bin`).
    LocalLocalBin {
        /// Local slot of the left operand.
        a: u16,
        /// Local slot of the right operand.
        b: u16,
        /// The operator.
        op: BinOp,
    },
    /// Superinstruction: compare a local slot against a constant and
    /// branch when the result is `false`, all without touching the
    /// operand stack (fused `Local; Const; Bin; JumpIfFalse` — the
    /// guard of every compiled counting loop).
    LocalConstBinJump {
        /// Local slot of the left operand.
        slot: u16,
        /// Constant-pool index of the right operand.
        konst: u32,
        /// The operator.
        op: BinOp,
        /// Branch target for a `false` result.
        target: u32,
    },
    /// Superinstruction: apply a primitive to a local slot and a
    /// constant, then tail-call the stack top with the result as the
    /// argument (fused `Local; Const; Bin; TailCall` — the
    /// loop-variable update and back-edge of every compiled counting
    /// loop).
    LocalConstBinTail {
        /// Local slot of the left operand.
        slot: u16,
        /// Constant-pool index of the right operand.
        konst: u32,
        /// The operator.
        op: BinOp,
    },
    // --- Register ISA ([`Isa::Register`]). `dst`/`src`/`f` name
    // frame registers; operands documented as *rk* are RK-encoded
    // (see [`RK_CONST`]): bit 15 clear = register, bit 15 set =
    // constant-pool index.
    /// Load a constant-pool entry into `dst` (pool indices too large
    /// for RK encoding).
    RConst {
        /// Destination register.
        dst: u16,
        /// Constant-pool index.
        konst: u32,
    },
    /// Copy `src` into `dst`. Rare: direct binder references are
    /// coalesced away; this only survives where a branch join needs a
    /// value in a specific register.
    RMove {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// Load a capture into `dst`; a `Rec` sentinel unfolds into `dst`
    /// (entering the fix body unless the unfold cache is filled).
    RCapture {
        /// Destination register.
        dst: u16,
        /// Capture index.
        idx: u16,
    },
    /// Load a session global into `dst`.
    RGlobal {
        /// Destination register.
        dst: u16,
        /// Global slot.
        idx: u32,
    },
    /// Unfold the current frame's recursive self-reference into
    /// `dst`.
    RRec {
        /// Destination register.
        dst: u16,
    },
    /// Build a function closure into `dst`.
    RClosure {
        /// Destination register.
        dst: u16,
        /// Function index.
        func: u32,
    },
    /// Build a nullary type-abstraction thunk into `dst`.
    RTyClosure {
        /// Destination register.
        dst: u16,
        /// Function index.
        func: u32,
    },
    /// Build the closure for a fix body and immediately enter it; the
    /// body's result lands in `dst`.
    REnterFix {
        /// Destination register.
        dst: u16,
        /// Function index of the fix body.
        func: u32,
    },
    /// Call the closure in register `f` on *rk* operand `arg`; the
    /// callee's result lands in `dst`.
    RCall {
        /// Destination register.
        dst: u16,
        /// Register holding the callee.
        f: u16,
        /// Argument (*rk*).
        arg: u16,
    },
    /// Tail-call the closure in register `f` on *rk* operand `arg`,
    /// replacing the current frame.
    RTailCall {
        /// Register holding the callee.
        f: u16,
        /// Argument (*rk*).
        arg: u16,
    },
    /// Force the type-abstraction thunk in `src`; its body's result
    /// lands in `dst`.
    RForce {
        /// Destination register.
        dst: u16,
        /// Register holding the thunk.
        src: u16,
    },
    /// Return the *rk* operand, discarding the frame.
    RRet {
        /// Result (*rk*).
        src: u16,
    },
    /// Jump when the *rk* operand is `false`.
    RJumpIfFalse {
        /// Condition (*rk*).
        cond: u16,
        /// Branch target for a `false` condition.
        target: u32,
    },
    /// `dst = a op b` over *rk* operands.
    RBin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: u16,
        /// Left operand (*rk*).
        a: u16,
        /// Right operand (*rk*).
        b: u16,
    },
    /// `dst = op src` over an *rk* operand.
    RUn {
        /// The operator.
        op: UnOp,
        /// Destination register.
        dst: u16,
        /// Operand (*rk*).
        src: u16,
    },
    /// Build a pair of *rk* operands into `dst`.
    RPair {
        /// Destination register.
        dst: u16,
        /// First component (*rk*).
        a: u16,
        /// Second component (*rk*).
        b: u16,
    },
    /// First component of the pair in `src`.
    RFst {
        /// Destination register.
        dst: u16,
        /// Register holding the pair.
        src: u16,
    },
    /// Second component of the pair in `src`.
    RSnd {
        /// Destination register.
        dst: u16,
        /// Register holding the pair.
        src: u16,
    },
    /// Extend list *rk* `tail` with *rk* `head` into `dst`.
    RCons {
        /// Destination register.
        dst: u16,
        /// Head (*rk*).
        head: u16,
        /// Tail list (*rk*).
        tail: u16,
    },
    /// List case on *rk* `src`. Empty: jump to `nil_target`.
    /// Non-empty: store head and tail into the named registers (the
    /// scrutinee is read before either write, so `src` may alias
    /// them) and fall through.
    RCaseList {
        /// Scrutinee (*rk*).
        src: u16,
        /// Register receiving the head.
        head: u16,
        /// Register receiving the tail list.
        tail: u16,
        /// Branch target for the empty list.
        nil_target: u32,
    },
    /// Build a record from consecutive registers starting at `base`
    /// (one per field, in declaration order).
    RMakeRecord {
        /// Destination register.
        dst: u16,
        /// First field register.
        base: u16,
        /// Interface name.
        name: Symbol,
        /// Index into the field-name pool.
        fields: u32,
    },
    /// Project a field of the record in `src`.
    RProject {
        /// Destination register.
        dst: u16,
        /// Register holding the record.
        src: u16,
        /// Field name.
        field: Symbol,
    },
    /// Build a data value from `argc` consecutive registers starting
    /// at `base`.
    RInject {
        /// Destination register.
        dst: u16,
        /// First argument register.
        base: u16,
        /// Constructor name.
        ctor: Symbol,
        /// Argument count.
        argc: u16,
    },
    /// Dispatch on the data value in `src` through the indexed
    /// [`MatchTable`]; the selected arm's fields land in its
    /// consecutive binder registers.
    RMatch {
        /// Register holding the scrutinee.
        src: u16,
        /// Match-table index.
        tbl: u32,
    },
    // --- Register superinstructions, re-mined on the register ISA
    // (the stack set above is push/pop-shaped and does not apply).
    // See `Compiler::fuse_regs`.
    /// Fused `RBin; RJumpIfFalse` over the bin result — the guard of
    /// every compiled counting loop.
    RBinJump {
        /// The operator.
        op: BinOp,
        /// Left operand (*rk*).
        a: u16,
        /// Right operand (*rk*).
        b: u16,
        /// Branch target for a `false` result.
        target: u32,
    },
    /// Fused `RBin; RRet` — compute-and-return.
    RBinRet {
        /// The operator.
        op: BinOp,
        /// Left operand (*rk*).
        a: u16,
        /// Right operand (*rk*).
        b: u16,
    },
    /// Fused `RBin; RTailCall` — the argument update plus back-edge
    /// of a compiled loop.
    RBinTail {
        /// The operator.
        op: BinOp,
        /// Register holding the callee.
        f: u16,
        /// Left operand (*rk*).
        a: u16,
        /// Right operand (*rk*).
        b: u16,
    },
    /// Fused `RCapture; RBin; RTailCall` — the whole back-edge of a
    /// self-recursive loop (the self-reference reaches the loop
    /// lambda as a capture, threaded through the enclosing `fix`
    /// body): load the captured callee (unfolding a recursive
    /// reference), compute the new argument, tail-call. On an
    /// unfold-cache miss the fix body runs first (into the frame's
    /// reserved scratch register) and the instruction re-executes
    /// against the filled cache, so the cache discipline and the
    /// fuel charged match unfused code exactly.
    RCapBinTail {
        /// The operator.
        op: BinOp,
        /// Capture index of the callee.
        idx: u16,
        /// Left operand (*rk*).
        a: u16,
        /// Right operand (*rk*).
        b: u16,
    },
}

/// The dispatch table of one `match` expression.
#[derive(Clone, Debug)]
pub struct MatchTable {
    /// Arms in source order (first match by constructor wins, as in
    /// the tree-walker).
    pub arms: Vec<MatchArmCode>,
    /// Monomorphic inline cache: the index of the arm this table
    /// selected last (`u32::MAX` until the first dispatch). Match
    /// sites are overwhelmingly monomorphic, so the VM probes this
    /// arm before falling back to the linear scan. The cell lives in
    /// `CodeSnapshot`-governed storage: every table belongs to
    /// exactly one `Match` instruction of one function, and session
    /// rollback truncates `match_tables`, so a stale cache can never
    /// survive the code it describes.
    pub ic: Cell<u32>,
}

impl Default for MatchTable {
    fn default() -> MatchTable {
        MatchTable {
            arms: Vec::new(),
            ic: Cell::new(u32::MAX),
        }
    }
}

/// One compiled `match` arm.
#[derive(Clone, Debug)]
pub struct MatchArmCode {
    /// Constructor name.
    pub ctor: Symbol,
    /// First local slot of the arm's binders (consecutive).
    pub binder_base: u16,
    /// Binder count (must equal the scrutinee's field count).
    pub binders: u16,
    /// Jump target of the arm body.
    pub target: u32,
}

/// A compiled program: functions plus the pools they reference.
#[derive(Clone, Debug, Default)]
pub struct CodeObject {
    /// The instruction set every function in this object targets.
    pub isa: Isa,
    /// Compiled functions, indexed by [`Instr::Closure`] etc.
    pub funcs: Vec<FuncCode>,
    /// Constant pool (ints, strings, booleans, unit — deduplicated).
    pub consts: Vec<Value>,
    /// Field-name lists for [`Instr::MakeRecord`].
    pub field_lists: Vec<Rc<[Symbol]>>,
    /// Dispatch tables for [`Instr::Match`].
    pub match_tables: Vec<MatchTable>,
}

/// A compile-time error. Well-typed closed terms (optionally closed
/// up to registered globals) never produce one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A variable is neither bound, captured, recursive, nor a
    /// registered global.
    Unbound(Symbol),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unbound(x) => write!(f, "unbound variable `{x}` at compile time"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Watermarks for rolling a [`Compiler`] back to a previous state
/// (see [`Compiler::snapshot`]).
#[derive(Clone, Copy, Debug)]
pub struct CodeSnapshot {
    funcs: usize,
    consts: usize,
    field_lists: usize,
    match_tables: usize,
    globals: usize,
}

/// One function mid-compilation.
struct FnCtx {
    kind: FuncKind,
    /// Binders currently in scope, innermost last.
    scope: Vec<(Symbol, u16)>,
    /// For fix bodies: the fix's own name.
    rec_name: Option<Symbol>,
    cap_names: Vec<Symbol>,
    cap_srcs: Vec<CapSrc>,
    next_slot: u16,
    nslots: u16,
    code: Vec<Instr>,
}

impl FnCtx {
    fn new(kind: FuncKind, param: Option<Symbol>, rec_name: Option<Symbol>) -> FnCtx {
        let mut ctx = FnCtx {
            kind,
            scope: Vec::new(),
            rec_name,
            cap_names: Vec::new(),
            cap_srcs: Vec::new(),
            next_slot: 0,
            nslots: 0,
            code: Vec::new(),
        };
        if let Some(p) = param {
            let slot = ctx.alloc_slot();
            ctx.scope.push((p, slot));
        }
        ctx
    }

    fn alloc_slot(&mut self) -> u16 {
        let s = self.next_slot;
        assert!(s < RK_MASK, "frame register file overflow");
        self.next_slot += 1;
        self.nslots = self.nslots.max(self.next_slot);
        s
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump(t)
            | Instr::JumpIfFalse(t)
            | Instr::CaseList { nil_target: t, .. }
            | Instr::RJumpIfFalse { target: t, .. }
            | Instr::RCaseList { nil_target: t, .. } => {
                *t = target;
            }
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }
}

/// Cumulative superinstruction statistics of one [`Compiler`]:
/// the opcode-pair mining table plus what the fusion pass actually
/// emitted. Counters survive [`Compiler::rollback`] — they describe
/// the whole session, not one program.
#[derive(Clone, Debug, Default)]
pub struct FusionStats {
    /// Instructions scanned (pre-fusion stream length).
    pub instrs_scanned: u64,
    /// Instructions eliminated by fusion (a pair adds 1, a triple 2,
    /// a quad 3).
    pub fused: u64,
    /// Emitted superinstructions by mnemonic.
    pub fused_by_kind: HashMap<&'static str, u64>,
    /// Adjacent opcode pairs seen in the pre-fusion stream, by
    /// mnemonic — the mining table the fused set was selected from.
    pub pair_counts: HashMap<(&'static str, &'static str), u64>,
}

impl FusionStats {
    /// The `n` most frequent adjacent opcode pairs, most frequent
    /// first (ties broken lexicographically for determinism).
    pub fn top_pairs(&self, n: usize) -> Vec<((&'static str, &'static str), u64)> {
        let mut pairs: Vec<_> = self.pair_counts.iter().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(n);
        pairs
    }

    /// Accumulates another compiler's counters into this one (used to
    /// aggregate per-worker stats in batch mode).
    pub fn merge(&mut self, other: &FusionStats) {
        self.instrs_scanned += other.instrs_scanned;
        self.fused += other.fused;
        for (k, v) in &other.fused_by_kind {
            *self.fused_by_kind.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.pair_counts {
            *self.pair_counts.entry(*k).or_insert(0) += v;
        }
    }
}

/// A short mnemonic for an instruction's opcode (payload-blind), as
/// used by the pair-mining table.
pub fn mnemonic(i: &Instr) -> &'static str {
    match i {
        Instr::Const(_) => "const",
        Instr::Local(_) => "local",
        Instr::Capture(_) => "capture",
        Instr::Global(_) => "global",
        Instr::Rec => "rec",
        Instr::Closure(_) => "closure",
        Instr::TyClosure(_) => "tyclosure",
        Instr::EnterFix(_) => "enterfix",
        Instr::Call => "call",
        Instr::TailCall => "tailcall",
        Instr::Force => "force",
        Instr::Ret => "ret",
        Instr::Jump(_) => "jump",
        Instr::JumpIfFalse(_) => "jumpiffalse",
        Instr::Bin(_) => "bin",
        Instr::Un(_) => "un",
        Instr::MakePair => "makepair",
        Instr::Fst => "fst",
        Instr::Snd => "snd",
        Instr::PushNil => "pushnil",
        Instr::ConsList => "conslist",
        Instr::CaseList { .. } => "caselist",
        Instr::MakeRecord { .. } => "makerecord",
        Instr::Project(_) => "project",
        Instr::Inject { .. } => "inject",
        Instr::Match(_) => "match",
        Instr::LocalConst { .. } => "local+const",
        Instr::LocalLocal { .. } => "local+local",
        Instr::ConstBin { .. } => "const+bin",
        Instr::LocalBin { .. } => "local+bin",
        Instr::BinJumpIfFalse { .. } => "bin+jumpiffalse",
        Instr::ConstRet { .. } => "const+ret",
        Instr::LocalRet { .. } => "local+ret",
        Instr::LocalConstBin { .. } => "local+const+bin",
        Instr::LocalLocalBin { .. } => "local+local+bin",
        Instr::LocalConstBinJump { .. } => "local+const+bin+jumpiffalse",
        Instr::LocalConstBinTail { .. } => "local+const+bin+tailcall",
        Instr::RConst { .. } => "r.const",
        Instr::RMove { .. } => "r.move",
        Instr::RCapture { .. } => "r.capture",
        Instr::RGlobal { .. } => "r.global",
        Instr::RRec { .. } => "r.rec",
        Instr::RClosure { .. } => "r.closure",
        Instr::RTyClosure { .. } => "r.tyclosure",
        Instr::REnterFix { .. } => "r.enterfix",
        Instr::RCall { .. } => "r.call",
        Instr::RTailCall { .. } => "r.tailcall",
        Instr::RForce { .. } => "r.force",
        Instr::RRet { .. } => "r.ret",
        Instr::RJumpIfFalse { .. } => "r.jumpiffalse",
        Instr::RBin { .. } => "r.bin",
        Instr::RUn { .. } => "r.un",
        Instr::RPair { .. } => "r.pair",
        Instr::RFst { .. } => "r.fst",
        Instr::RSnd { .. } => "r.snd",
        Instr::RCons { .. } => "r.cons",
        Instr::RCaseList { .. } => "r.caselist",
        Instr::RMakeRecord { .. } => "r.makerecord",
        Instr::RProject { .. } => "r.project",
        Instr::RInject { .. } => "r.inject",
        Instr::RMatch { .. } => "r.match",
        Instr::RBinJump { .. } => "r.bin+jumpiffalse",
        Instr::RBinRet { .. } => "r.bin+ret",
        Instr::RBinTail { .. } => "r.bin+tailcall",
        Instr::RCapBinTail { .. } => "r.capture+bin+tailcall",
    }
}

/// Fuses one adjacent instruction quadruple, or `None`.
fn fuse_quad(a: Instr, b: Instr, c: Instr, d: Instr) -> Option<Instr> {
    match (a, b, c, d) {
        (Instr::Local(slot), Instr::Const(konst), Instr::Bin(op), Instr::JumpIfFalse(target)) => {
            Some(Instr::LocalConstBinJump {
                slot,
                konst,
                op,
                target,
            })
        }
        (Instr::Local(slot), Instr::Const(konst), Instr::Bin(op), Instr::TailCall) => {
            Some(Instr::LocalConstBinTail { slot, konst, op })
        }
        _ => None,
    }
}

/// Fuses one adjacent instruction triple, or `None` when the triple
/// has no superinstruction. Triples are preferred over pairs: they
/// elide two dispatches and keep the whole primitive application off
/// the operand stack.
fn fuse_triple(a: Instr, b: Instr, c: Instr) -> Option<Instr> {
    Some(match (a, b, c) {
        (Instr::Local(slot), Instr::Const(konst), Instr::Bin(op)) => {
            Instr::LocalConstBin { slot, konst, op }
        }
        (Instr::Local(a), Instr::Local(b), Instr::Bin(op)) => Instr::LocalLocalBin { a, b, op },
        _ => return None,
    })
}

/// Fuses one adjacent instruction pair, or `None` when the pair has
/// no superinstruction.
fn fuse_pair(a: Instr, b: Instr) -> Option<Instr> {
    Some(match (a, b) {
        (Instr::Const(k), Instr::Bin(op)) => Instr::ConstBin { konst: k, op },
        (Instr::Local(s), Instr::Bin(op)) => Instr::LocalBin { slot: s, op },
        (Instr::Bin(op), Instr::JumpIfFalse(t)) => Instr::BinJumpIfFalse { op, target: t },
        (Instr::Const(k), Instr::Ret) => Instr::ConstRet { konst: k },
        (Instr::Local(s), Instr::Ret) => Instr::LocalRet { slot: s },
        (Instr::Local(s), Instr::Const(k)) => Instr::LocalConst { slot: s, konst: k },
        (Instr::Local(a), Instr::Local(b)) => Instr::LocalLocal { a, b },
        _ => return None,
    })
}

/// `true` for superinstructions that *consume* the stack top
/// (operator fusions) rather than merely pushing two values. The
/// greedy scan prefers these: in `Local; Const; Bin` fusing
/// `Const; Bin` saves a push *and* a dispatch, while `Local; Const`
/// saves only the dispatch.
fn consumes(i: &Instr) -> bool {
    matches!(
        i,
        Instr::ConstBin { .. }
            | Instr::LocalBin { .. }
            | Instr::BinJumpIfFalse { .. }
            | Instr::ConstRet { .. }
            | Instr::LocalRet { .. }
    )
}

/// Fuses one adjacent register-instruction triple, or `None`.
///
/// `RCapture; RBin; RTailCall` — the back-edge of a self-recursive
/// loop, whose callee arrives as a capture of the loop lambda —
/// fuses only when the tail call consumes exactly the two freshly
/// written registers and neither `RBin` operand reads the callee
/// destination (whose write the fusion elides).
fn fuse_rtriple(x: Instr, y: Instr, z: Instr) -> Option<Instr> {
    match (x, y, z) {
        (
            Instr::RCapture { dst: r, idx },
            Instr::RBin { op, dst: t, a, b },
            Instr::RTailCall { f, arg },
        ) if f == r && arg == t && t != r && a != r && b != r => {
            Some(Instr::RCapBinTail { op, idx, a, b })
        }
        _ => None,
    }
}

/// Fuses one adjacent register-instruction pair, or `None`.
///
/// Each pattern requires the consumer to read exactly the register
/// the producer writes. That register is always a compiler temporary
/// (binder registers are never `RBin` destinations), and temporaries
/// are dead past their consuming instruction under the
/// stack-discipline allocator, so eliding the write is sound.
fn fuse_rpair(x: Instr, y: Instr) -> Option<Instr> {
    Some(match (x, y) {
        // A register destination is always < `RK_MASK`, so an equal
        // rk operand is necessarily a register reference to it.
        (Instr::RBin { op, dst, a, b }, Instr::RJumpIfFalse { cond, target }) if cond == dst => {
            Instr::RBinJump { op, a, b, target }
        }
        (Instr::RBin { op, dst, a, b }, Instr::RRet { src }) if src == dst => {
            Instr::RBinRet { op, a, b }
        }
        (Instr::RBin { op, dst, a, b }, Instr::RTailCall { f, arg }) if arg == dst && f != dst => {
            Instr::RBinTail { op, f, a, b }
        }
        _ => return None,
    })
}

/// The incremental bytecode compiler.
///
/// A session-scoped instance accumulates functions, pools, and
/// globals across many [`Compiler::compile`] calls; the produced
/// [`CodeObject`] is shared by all of them, so a warm session's
/// prelude functions stay compiled while per-program extensions are
/// rolled back via [`Compiler::rollback`].
pub struct Compiler {
    code: CodeObject,
    int_pool: HashMap<i64, u32>,
    str_pool: HashMap<String, u32>,
    misc_pool: HashMap<u8, u32>,
    globals: Vec<Symbol>,
    global_map: HashMap<Symbol, u32>,
    fusion: bool,
    stats: FusionStats,
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler {
            code: CodeObject::default(),
            int_pool: HashMap::new(),
            str_pool: HashMap::new(),
            misc_pool: HashMap::new(),
            globals: Vec::new(),
            global_map: HashMap::new(),
            fusion: true,
            stats: FusionStats::default(),
        }
    }
}

/// Plain decomposition of a compiler's state up to a snapshot —
/// everything a fresh process needs to rebuild the compiler without
/// recompiling (see [`Compiler::export_parts`] /
/// [`Compiler::from_parts`]).
#[derive(Clone, Debug)]
pub struct CodeParts {
    /// Instruction set the code was compiled for.
    pub isa: Isa,
    /// Compiled functions.
    pub funcs: Vec<FuncCode>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Record field-name lists.
    pub field_lists: Vec<Rc<[Symbol]>>,
    /// Match dispatch tables.
    pub match_tables: Vec<MatchTable>,
    /// Global names in slot order.
    pub globals: Vec<Symbol>,
    /// Whether superinstruction fusion was enabled.
    pub fusion: bool,
}

/// Global slots read by `func` — the per-compiled-function read-set
/// the artifact store records for incremental invalidation. Globals
/// are only ever loaded by [`Instr::Global`] / [`Instr::RGlobal`], so
/// a scan over those two opcodes is exact.
pub fn func_global_reads(func: &FuncCode) -> Vec<u32> {
    let mut out: Vec<u32> = func
        .code
        .iter()
        .filter_map(|i| match i {
            Instr::Global(g) => Some(*g),
            Instr::RGlobal { idx, .. } => Some(*idx),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

impl Compiler {
    /// An empty compiler targeting the default (register) ISA.
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// An empty compiler targeting `isa`.
    pub fn new_with_isa(isa: Isa) -> Compiler {
        let mut c = Compiler::default();
        c.code.isa = isa;
        c
    }

    /// The instruction set this compiler targets.
    pub fn isa(&self) -> Isa {
        self.code.isa
    }

    /// The accumulated code object.
    pub fn code(&self) -> &CodeObject {
        &self.code
    }

    /// The registered global names, in slot order (the VM's `globals`
    /// argument must be parallel to this).
    pub fn globals(&self) -> &[Symbol] {
        &self.globals
    }

    /// Registers `name` as a global, returning its slot. Idempotent.
    pub fn add_global(&mut self, name: Symbol) -> u32 {
        if let Some(&i) = self.global_map.get(&name) {
            return i;
        }
        let i = self.globals.len() as u32;
        self.globals.push(name);
        self.global_map.insert(name, i);
        i
    }

    /// Captures the current pool/function/global watermarks.
    pub fn snapshot(&self) -> CodeSnapshot {
        CodeSnapshot {
            funcs: self.code.funcs.len(),
            consts: self.code.consts.len(),
            field_lists: self.code.field_lists.len(),
            match_tables: self.code.match_tables.len(),
            globals: self.globals.len(),
        }
    }

    /// Decomposes the prefix of this compiler covered by `snap` into
    /// plain parts for the artifact serializer. The derived pools and
    /// the global map are not exported; [`Compiler::from_parts`]
    /// rebuilds them.
    pub fn export_parts(&self, snap: &CodeSnapshot) -> CodeParts {
        CodeParts {
            isa: self.code.isa,
            funcs: self.code.funcs[..snap.funcs].to_vec(),
            consts: self.code.consts[..snap.consts].to_vec(),
            field_lists: self.code.field_lists[..snap.field_lists].to_vec(),
            match_tables: self.code.match_tables[..snap.match_tables].to_vec(),
            globals: self.globals[..snap.globals].to_vec(),
            fusion: self.fusion,
        }
    }

    /// Rebuilds a compiler from decoded parts: the literal pools are
    /// re-derived by scanning the constant table (first occurrence
    /// wins, matching how [`Compiler::rollback`] leaves live pools)
    /// and the global map from the slot order.
    pub fn from_parts(parts: CodeParts) -> Compiler {
        let mut int_pool = HashMap::new();
        let mut str_pool = HashMap::new();
        let mut misc_pool = HashMap::new();
        for (i, v) in parts.consts.iter().enumerate() {
            let i = i as u32;
            match v {
                Value::Int(n) => {
                    int_pool.entry(*n).or_insert(i);
                }
                Value::Str(s) => {
                    str_pool.entry(s.to_string()).or_insert(i);
                }
                Value::Bool(b) => {
                    misc_pool.entry(u8::from(*b)).or_insert(i);
                }
                Value::Unit => {
                    misc_pool.entry(2).or_insert(i);
                }
                Value::List(xs) if xs.is_empty() => {
                    misc_pool.entry(3).or_insert(i);
                }
                _ => {}
            }
        }
        let global_map = parts
            .globals
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i as u32))
            .collect();
        Compiler {
            code: CodeObject {
                isa: parts.isa,
                funcs: parts.funcs,
                consts: parts.consts,
                field_lists: parts.field_lists,
                match_tables: parts.match_tables,
            },
            int_pool,
            str_pool,
            misc_pool,
            globals: parts.globals,
            global_map,
            fusion: parts.fusion,
            stats: FusionStats::default(),
        }
    }

    /// Rolls back to `snap`, discarding everything compiled since.
    pub fn rollback(&mut self, snap: &CodeSnapshot) {
        self.code.funcs.truncate(snap.funcs);
        self.code.consts.truncate(snap.consts);
        self.code.field_lists.truncate(snap.field_lists);
        self.code.match_tables.truncate(snap.match_tables);
        let consts = snap.consts as u32;
        self.int_pool.retain(|_, i| *i < consts);
        self.str_pool.retain(|_, i| *i < consts);
        self.misc_pool.retain(|_, i| *i < consts);
        let globals = snap.globals as u32;
        self.globals.truncate(snap.globals);
        self.global_map.retain(|_, i| *i < globals);
    }

    /// Compiles a term (closed up to the registered globals) into a
    /// new entry-point function and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Unbound`] when a free variable is not
    /// a registered global — for elaborated, typechecked input this
    /// indicates an elaboration bug.
    pub fn compile(&mut self, e: &FExpr) -> Result<u32, CompileError> {
        let mut fns = vec![FnCtx::new(FuncKind::Main, None, None)];
        match self.code.isa {
            Isa::Register => self.rc_tail(&mut fns, e)?,
            Isa::Stack => self.compile_expr(&mut fns, e, true)?,
        }
        let ctx = fns.pop().expect("main context");
        debug_assert!(fns.is_empty(), "unbalanced function contexts");
        debug_assert!(ctx.cap_srcs.is_empty(), "main function cannot capture");
        Ok(self.finish(ctx))
    }

    /// Enables or disables superinstruction fusion for functions
    /// compiled *from now on* (default: enabled). Already-compiled
    /// functions are unaffected, so a session that wants a fusion-off
    /// leg must set this before compiling its prelude.
    pub fn set_fusion(&mut self, on: bool) {
        self.fusion = on;
    }

    /// Whether superinstruction fusion is enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion
    }

    /// Cumulative pair-mining and fusion counters.
    pub fn fusion_stats(&self) -> &FusionStats {
        &self.stats
    }

    fn finish(&mut self, mut ctx: FnCtx) -> u32 {
        // Register code terminates every path itself (`RRet` /
        // `RTailCall`); the stack compiler leaves the result on the
        // operand stack and needs the trailing `Ret`.
        if self.code.isa == Isa::Stack {
            ctx.emit(Instr::Ret);
        }
        self.stats.instrs_scanned += ctx.code.len() as u64;
        for w in ctx.code.windows(2) {
            *self
                .stats
                .pair_counts
                .entry((mnemonic(&w[0]), mnemonic(&w[1])))
                .or_insert(0) += 1;
        }
        let (code, needs_scratch) = if self.fusion {
            match self.code.isa {
                Isa::Register => self.fuse_regs(ctx.code),
                Isa::Stack => (self.fuse(ctx.code), false),
            }
        } else {
            (ctx.code, false)
        };
        let idx = self.code.funcs.len() as u32;
        self.code.funcs.push(FuncCode {
            kind: ctx.kind,
            nslots: ctx.nslots + u16::from(needs_scratch),
            captures: ctx.cap_srcs,
            code,
        });
        idx
    }

    /// The peephole superinstruction pass: greedily fuses adjacent
    /// pairs (preferring operator fusions over push-push fusions via
    /// one instruction of lookahead), never across a *leader* — an
    /// instruction some jump lands on — and remaps every jump target,
    /// `CaseList` nil target, and match-table arm target through the
    /// old→new index map. Deterministic, so recompiling the same term
    /// after a rollback reproduces identical code.
    fn fuse(&mut self, code: Vec<Instr>) -> Vec<Instr> {
        let n = code.len();
        let mut leader = vec![false; n + 1];
        for instr in &code {
            match instr {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::CaseList { nil_target: t, .. } => {
                    leader[*t as usize] = true
                }
                Instr::Match(tbl) => {
                    for arm in &self.code.match_tables[*tbl as usize].arms {
                        leader[arm.target as usize] = true;
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut map = vec![0u32; n + 1];
        let mut i = 0;
        while i < n {
            map[i] = out.len() as u32;
            // Longest fusion first: a quadruple elides three
            // dispatches, a triple two, a pair one.
            if i + 3 < n && !leader[i + 1] && !leader[i + 2] && !leader[i + 3] {
                if let Some(f) = fuse_quad(code[i], code[i + 1], code[i + 2], code[i + 3]) {
                    for k in 1..4 {
                        map[i + k] = out.len() as u32;
                    }
                    *self.stats.fused_by_kind.entry(mnemonic(&f)).or_insert(0) += 1;
                    self.stats.fused += 3;
                    out.push(f);
                    i += 4;
                    continue;
                }
            }
            if i + 2 < n && !leader[i + 1] && !leader[i + 2] {
                if let Some(f) = fuse_triple(code[i], code[i + 1], code[i + 2]) {
                    // The swallowed slots are never leaders, so no
                    // jump can land there; map them anyway to keep
                    // the table total.
                    map[i + 1] = out.len() as u32;
                    map[i + 2] = out.len() as u32;
                    *self.stats.fused_by_kind.entry(mnemonic(&f)).or_insert(0) += 1;
                    self.stats.fused += 2;
                    out.push(f);
                    i += 3;
                    continue;
                }
            }
            let mut fused = None;
            if i + 1 < n && !leader[i + 1] {
                if let Some(f) = fuse_pair(code[i], code[i + 1]) {
                    // Lookahead: leave a push-push pair unfused when
                    // the *next* pair is an operator fusion.
                    let next_consumes = !consumes(&f)
                        && i + 2 < n
                        && !leader[i + 2]
                        && fuse_pair(code[i + 1], code[i + 2])
                            .as_ref()
                            .is_some_and(consumes);
                    if !next_consumes {
                        fused = Some(f);
                    }
                }
            }
            match fused {
                Some(f) => {
                    map[i + 1] = out.len() as u32;
                    *self.stats.fused_by_kind.entry(mnemonic(&f)).or_insert(0) += 1;
                    self.stats.fused += 1;
                    out.push(f);
                    i += 2;
                }
                None => {
                    out.push(code[i]);
                    i += 1;
                }
            }
        }
        map[n] = out.len() as u32;
        for instr in &mut out {
            match instr {
                Instr::Jump(t)
                | Instr::JumpIfFalse(t)
                | Instr::CaseList { nil_target: t, .. }
                | Instr::BinJumpIfFalse { target: t, .. }
                | Instr::LocalConstBinJump { target: t, .. } => *t = map[*t as usize],
                Instr::Match(tbl) => {
                    let tbl = *tbl as usize;
                    for arm in &mut self.code.match_tables[tbl].arms {
                        arm.target = map[arm.target as usize];
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The register-ISA peephole superinstruction pass, mirroring
    /// [`Compiler::fuse`]'s leader and remap machinery over the
    /// re-mined register fusion set ([`fuse_rtriple`] /
    /// [`fuse_rpair`]). Returns the fused stream and whether a
    /// scratch register must be reserved ([`Instr::RCapBinTail`]
    /// parks its cache-miss unfold result there).
    fn fuse_regs(&mut self, code: Vec<Instr>) -> (Vec<Instr>, bool) {
        let n = code.len();
        let mut leader = vec![false; n + 1];
        for instr in &code {
            match instr {
                Instr::Jump(t)
                | Instr::RJumpIfFalse { target: t, .. }
                | Instr::RCaseList { nil_target: t, .. } => leader[*t as usize] = true,
                Instr::RMatch { tbl, .. } => {
                    for arm in &self.code.match_tables[*tbl as usize].arms {
                        leader[arm.target as usize] = true;
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut map = vec![0u32; n + 1];
        let mut needs_scratch = false;
        let mut i = 0;
        while i < n {
            map[i] = out.len() as u32;
            if i + 2 < n && !leader[i + 1] && !leader[i + 2] {
                if let Some(f) = fuse_rtriple(code[i], code[i + 1], code[i + 2]) {
                    map[i + 1] = out.len() as u32;
                    map[i + 2] = out.len() as u32;
                    *self.stats.fused_by_kind.entry(mnemonic(&f)).or_insert(0) += 1;
                    self.stats.fused += 2;
                    needs_scratch = true;
                    out.push(f);
                    i += 3;
                    continue;
                }
            }
            if i + 1 < n && !leader[i + 1] {
                if let Some(f) = fuse_rpair(code[i], code[i + 1]) {
                    map[i + 1] = out.len() as u32;
                    *self.stats.fused_by_kind.entry(mnemonic(&f)).or_insert(0) += 1;
                    self.stats.fused += 1;
                    out.push(f);
                    i += 2;
                    continue;
                }
            }
            out.push(code[i]);
            i += 1;
        }
        map[n] = out.len() as u32;
        for instr in &mut out {
            match instr {
                Instr::Jump(t)
                | Instr::RJumpIfFalse { target: t, .. }
                | Instr::RCaseList { nil_target: t, .. }
                | Instr::RBinJump { target: t, .. } => *t = map[*t as usize],
                Instr::RMatch { tbl, .. } => {
                    let tbl = *tbl as usize;
                    for arm in &mut self.code.match_tables[tbl].arms {
                        arm.target = map[arm.target as usize];
                    }
                }
                _ => {}
            }
        }
        (out, needs_scratch)
    }

    fn pool_const(&mut self, v: Value, key: PoolKey) -> u32 {
        let consts = &mut self.code.consts;
        let mut insert = |v: Value| {
            let i = consts.len() as u32;
            consts.push(v);
            i
        };
        match key {
            PoolKey::Int(n) => *self.int_pool.entry(n).or_insert_with(|| insert(v)),
            PoolKey::Str(s) => *self.str_pool.entry(s).or_insert_with(|| insert(v)),
            PoolKey::Misc(k) => *self.misc_pool.entry(k).or_insert_with(|| insert(v)),
        }
    }

    /// Compiles one expression. `tail` marks tail position: a call
    /// there becomes [`Instr::TailCall`], reusing the current frame.
    /// Fix bodies reset it to `false` so their [`Instr::Ret`] always
    /// runs (the VM's unfold cache is written there).
    fn compile_expr(
        &mut self,
        fns: &mut Vec<FnCtx>,
        e: &FExpr,
        tail: bool,
    ) -> Result<(), CompileError> {
        match e {
            FExpr::Int(n) => {
                let i = self.pool_const(Value::Int(*n), PoolKey::Int(*n));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Bool(b) => {
                let i = self.pool_const(Value::Bool(*b), PoolKey::Misc(u8::from(*b)));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Str(s) => {
                let i = self.pool_const(Value::Str(Rc::from(s.as_str())), PoolKey::Str(s.clone()));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Unit => {
                let i = self.pool_const(Value::Unit, PoolKey::Misc(2));
                fns.last_mut().expect("fn ctx").emit(Instr::Const(i));
            }
            FExpr::Var(x) => {
                let load = match resolve_var(fns, *x) {
                    Some(CapSrc::Local(s)) => Instr::Local(s),
                    Some(CapSrc::Capture(i)) => Instr::Capture(i),
                    Some(CapSrc::Rec) => Instr::Rec,
                    None => match self.global_map.get(x) {
                        Some(&g) => Instr::Global(g),
                        None => return Err(CompileError::Unbound(*x)),
                    },
                };
                fns.last_mut().expect("fn ctx").emit(load);
            }
            FExpr::Lam(x, _, b) => {
                fns.push(FnCtx::new(FuncKind::Lambda, Some(*x), None));
                self.compile_expr(fns, b, true)?;
                let ctx = fns.pop().expect("lambda context");
                let idx = self.finish(ctx);
                fns.last_mut().expect("fn ctx").emit(Instr::Closure(idx));
            }
            FExpr::App(f, a) => {
                self.compile_expr(fns, f, false)?;
                self.compile_expr(fns, a, false)?;
                let call = if tail { Instr::TailCall } else { Instr::Call };
                fns.last_mut().expect("fn ctx").emit(call);
            }
            FExpr::TyAbs(_, b) => {
                fns.push(FnCtx::new(FuncKind::TyAbs, None, None));
                self.compile_expr(fns, b, true)?;
                let ctx = fns.pop().expect("tyabs context");
                let idx = self.finish(ctx);
                fns.last_mut().expect("fn ctx").emit(Instr::TyClosure(idx));
            }
            FExpr::TyApp(f, _) => {
                self.compile_expr(fns, f, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Force);
            }
            FExpr::If(c, t, el) => {
                self.compile_expr(fns, c, false)?;
                let to_else = fns.last_mut().expect("fn ctx").emit(Instr::JumpIfFalse(0));
                self.compile_expr(fns, t, tail)?;
                let to_end = fns.last_mut().expect("fn ctx").emit(Instr::Jump(0));
                let ctx = fns.last_mut().expect("fn ctx");
                let else_at = ctx.here();
                ctx.patch(to_else, else_at);
                self.compile_expr(fns, el, tail)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                ctx.patch(to_end, end);
            }
            FExpr::BinOp(op, a, b) => {
                self.compile_expr(fns, a, false)?;
                self.compile_expr(fns, b, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Bin(*op));
            }
            FExpr::UnOp(op, a) => {
                self.compile_expr(fns, a, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Un(*op));
            }
            FExpr::Pair(a, b) => {
                self.compile_expr(fns, a, false)?;
                self.compile_expr(fns, b, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::MakePair);
            }
            FExpr::Fst(a) => {
                self.compile_expr(fns, a, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Fst);
            }
            FExpr::Snd(a) => {
                self.compile_expr(fns, a, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Snd);
            }
            FExpr::Nil(_) => {
                fns.last_mut().expect("fn ctx").emit(Instr::PushNil);
            }
            FExpr::Cons(h, t) => {
                self.compile_expr(fns, h, false)?;
                self.compile_expr(fns, t, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::ConsList);
            }
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail: tail_name,
                cons,
            } => {
                self.compile_expr(fns, scrut, false)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let saved_scope = ctx.scope.len();
                let saved_slot = ctx.next_slot;
                let hslot = ctx.alloc_slot();
                let tslot = ctx.alloc_slot();
                let case_at = ctx.emit(Instr::CaseList {
                    head: hslot,
                    tail: tslot,
                    nil_target: 0,
                });
                ctx.scope.push((*head, hslot));
                ctx.scope.push((*tail_name, tslot));
                self.compile_expr(fns, cons, tail)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.scope.truncate(saved_scope);
                ctx.next_slot = saved_slot;
                let to_end = ctx.emit(Instr::Jump(0));
                let nil_at = ctx.here();
                ctx.patch(case_at, nil_at);
                self.compile_expr(fns, nil, tail)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                ctx.patch(to_end, end);
            }
            FExpr::Fix(x, _, b) => {
                // Not tail position: the fix body's `Ret` must run so
                // the VM can cache the one-step unfolding.
                fns.push(FnCtx::new(FuncKind::FixBody, None, Some(*x)));
                self.compile_expr(fns, b, false)?;
                let ctx = fns.pop().expect("fix context");
                let idx = self.finish(ctx);
                fns.last_mut().expect("fn ctx").emit(Instr::EnterFix(idx));
            }
            FExpr::Make(name, _, fields) => {
                for (_, fe) in fields {
                    self.compile_expr(fns, fe, false)?;
                }
                let syms: Rc<[Symbol]> = fields.iter().map(|(u, _)| *u).collect();
                let fl = self.code.field_lists.len() as u32;
                self.code.field_lists.push(syms);
                fns.last_mut().expect("fn ctx").emit(Instr::MakeRecord {
                    name: *name,
                    fields: fl,
                });
            }
            FExpr::Proj(rec, field) => {
                self.compile_expr(fns, rec, false)?;
                fns.last_mut().expect("fn ctx").emit(Instr::Project(*field));
            }
            FExpr::Inject(ctor, _, args) => {
                for a in args {
                    self.compile_expr(fns, a, false)?;
                }
                fns.last_mut().expect("fn ctx").emit(Instr::Inject {
                    ctor: *ctor,
                    argc: args.len() as u16,
                });
            }
            FExpr::Match(scrut, arms) => {
                self.compile_expr(fns, scrut, false)?;
                let tbl = self.code.match_tables.len() as u32;
                self.code.match_tables.push(MatchTable::default());
                fns.last_mut().expect("fn ctx").emit(Instr::Match(tbl));
                let mut compiled_arms = Vec::with_capacity(arms.len());
                let mut end_jumps = Vec::with_capacity(arms.len());
                for arm in arms {
                    let ctx = fns.last_mut().expect("fn ctx");
                    let target = ctx.here();
                    let saved_scope = ctx.scope.len();
                    let saved_slot = ctx.next_slot;
                    let binder_base = ctx.next_slot;
                    for b in &arm.binders {
                        let s = ctx.alloc_slot();
                        ctx.scope.push((*b, s));
                    }
                    self.compile_expr(fns, &arm.body, tail)?;
                    let ctx = fns.last_mut().expect("fn ctx");
                    ctx.scope.truncate(saved_scope);
                    ctx.next_slot = saved_slot;
                    end_jumps.push(ctx.emit(Instr::Jump(0)));
                    compiled_arms.push(MatchArmCode {
                        ctor: arm.ctor,
                        binder_base,
                        binders: arm.binders.len() as u16,
                        target,
                    });
                }
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                for j in end_jumps {
                    ctx.patch(j, end);
                }
                self.code.match_tables[tbl as usize].arms = compiled_arms;
            }
        }
        Ok(())
    }

    /// Compiles one expression for the register ISA in *tail*
    /// position: every control path it emits ends in [`Instr::RRet`]
    /// or [`Instr::RTailCall`], so branch joins need no jump and the
    /// frame is never resumed.
    fn rc_tail(&mut self, fns: &mut Vec<FnCtx>, e: &FExpr) -> Result<(), CompileError> {
        match e {
            FExpr::App(f, a) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let fr = self.rc_reg(fns, f)?;
                let arg = self.rc_operand(fns, a)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RTailCall { f: fr, arg });
                ctx.next_slot = mark;
            }
            FExpr::If(c, t, el) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let cond = self.rc_operand(fns, c)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let to_else = ctx.emit(Instr::RJumpIfFalse { cond, target: 0 });
                ctx.next_slot = mark;
                self.rc_tail(fns, t)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let else_at = ctx.here();
                ctx.patch(to_else, else_at);
                self.rc_tail(fns, el)?;
            }
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail: tail_name,
                cons,
            } => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_operand(fns, scrut)?;
                let ctx = fns.last_mut().expect("fn ctx");
                // The scrutinee temp is released before the binder
                // registers are carved out; `RCaseList` reads it
                // before writing, so aliasing is harmless.
                ctx.next_slot = mark;
                let saved_scope = ctx.scope.len();
                let hslot = ctx.alloc_slot();
                let tslot = ctx.alloc_slot();
                let case_at = ctx.emit(Instr::RCaseList {
                    src,
                    head: hslot,
                    tail: tslot,
                    nil_target: 0,
                });
                ctx.scope.push((*head, hslot));
                ctx.scope.push((*tail_name, tslot));
                self.rc_tail(fns, cons)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.scope.truncate(saved_scope);
                ctx.next_slot = mark;
                let nil_at = ctx.here();
                ctx.patch(case_at, nil_at);
                self.rc_tail(fns, nil)?;
            }
            FExpr::Match(scrut, arms) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_reg(fns, scrut)?;
                let tbl = self.code.match_tables.len() as u32;
                self.code.match_tables.push(MatchTable::default());
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RMatch { src, tbl });
                ctx.next_slot = mark;
                let mut compiled_arms = Vec::with_capacity(arms.len());
                for arm in arms {
                    let ctx = fns.last_mut().expect("fn ctx");
                    let target = ctx.here();
                    let saved_scope = ctx.scope.len();
                    let binder_base = ctx.next_slot;
                    for b in &arm.binders {
                        let s = ctx.alloc_slot();
                        ctx.scope.push((*b, s));
                    }
                    self.rc_tail(fns, &arm.body)?;
                    let ctx = fns.last_mut().expect("fn ctx");
                    ctx.scope.truncate(saved_scope);
                    ctx.next_slot = mark;
                    compiled_arms.push(MatchArmCode {
                        ctor: arm.ctor,
                        binder_base,
                        binders: arm.binders.len() as u16,
                        target,
                    });
                }
                self.code.match_tables[tbl as usize].arms = compiled_arms;
            }
            _ => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_operand(fns, e)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RRet { src });
                ctx.next_slot = mark;
            }
        }
        Ok(())
    }

    /// Compiles one expression for the register ISA, leaving its
    /// value in register `dst` (non-tail position).
    #[allow(clippy::too_many_lines)]
    fn rc_into(&mut self, fns: &mut Vec<FnCtx>, e: &FExpr, dst: u16) -> Result<(), CompileError> {
        match e {
            FExpr::Int(_) | FExpr::Bool(_) | FExpr::Str(_) | FExpr::Unit | FExpr::Nil(_) => {
                let konst = self.pool_literal(e);
                fns.last_mut()
                    .expect("fn ctx")
                    .emit(Instr::RConst { dst, konst });
            }
            FExpr::Var(x) => {
                let load = match resolve_var(fns, *x) {
                    Some(CapSrc::Local(s)) if s == dst => return Ok(()),
                    Some(CapSrc::Local(s)) => Instr::RMove { dst, src: s },
                    Some(CapSrc::Capture(i)) => Instr::RCapture { dst, idx: i },
                    Some(CapSrc::Rec) => Instr::RRec { dst },
                    None => match self.global_map.get(x) {
                        Some(&g) => Instr::RGlobal { dst, idx: g },
                        None => return Err(CompileError::Unbound(*x)),
                    },
                };
                fns.last_mut().expect("fn ctx").emit(load);
            }
            FExpr::Lam(x, _, b) => {
                fns.push(FnCtx::new(FuncKind::Lambda, Some(*x), None));
                self.rc_tail(fns, b)?;
                let ctx = fns.pop().expect("lambda context");
                let func = self.finish(ctx);
                fns.last_mut()
                    .expect("fn ctx")
                    .emit(Instr::RClosure { dst, func });
            }
            FExpr::App(f, a) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let fr = self.rc_reg(fns, f)?;
                let arg = self.rc_operand(fns, a)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RCall { dst, f: fr, arg });
                ctx.next_slot = mark;
            }
            FExpr::TyAbs(_, b) => {
                fns.push(FnCtx::new(FuncKind::TyAbs, None, None));
                self.rc_tail(fns, b)?;
                let ctx = fns.pop().expect("tyabs context");
                let func = self.finish(ctx);
                fns.last_mut()
                    .expect("fn ctx")
                    .emit(Instr::RTyClosure { dst, func });
            }
            FExpr::TyApp(f, _) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_reg(fns, f)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RForce { dst, src });
                ctx.next_slot = mark;
            }
            FExpr::If(c, t, el) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let cond = self.rc_operand(fns, c)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let to_else = ctx.emit(Instr::RJumpIfFalse { cond, target: 0 });
                ctx.next_slot = mark;
                self.rc_into(fns, t, dst)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let to_end = ctx.emit(Instr::Jump(0));
                let else_at = ctx.here();
                ctx.patch(to_else, else_at);
                self.rc_into(fns, el, dst)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                ctx.patch(to_end, end);
            }
            FExpr::BinOp(op, a, b) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let ra = self.rc_operand(fns, a)?;
                let rb = self.rc_operand(fns, b)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RBin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                ctx.next_slot = mark;
            }
            FExpr::UnOp(op, a) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_operand(fns, a)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RUn { op: *op, dst, src });
                ctx.next_slot = mark;
            }
            FExpr::Pair(a, b) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let ra = self.rc_operand(fns, a)?;
                let rb = self.rc_operand(fns, b)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RPair { dst, a: ra, b: rb });
                ctx.next_slot = mark;
            }
            FExpr::Fst(a) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_reg(fns, a)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RFst { dst, src });
                ctx.next_slot = mark;
            }
            FExpr::Snd(a) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_reg(fns, a)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RSnd { dst, src });
                ctx.next_slot = mark;
            }
            FExpr::Cons(h, t) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let head = self.rc_operand(fns, h)?;
                let tail = self.rc_operand(fns, t)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RCons { dst, head, tail });
                ctx.next_slot = mark;
            }
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail: tail_name,
                cons,
            } => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_operand(fns, scrut)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.next_slot = mark;
                let saved_scope = ctx.scope.len();
                let hslot = ctx.alloc_slot();
                let tslot = ctx.alloc_slot();
                let case_at = ctx.emit(Instr::RCaseList {
                    src,
                    head: hslot,
                    tail: tslot,
                    nil_target: 0,
                });
                ctx.scope.push((*head, hslot));
                ctx.scope.push((*tail_name, tslot));
                self.rc_into(fns, cons, dst)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.scope.truncate(saved_scope);
                ctx.next_slot = mark;
                let to_end = ctx.emit(Instr::Jump(0));
                let nil_at = ctx.here();
                ctx.patch(case_at, nil_at);
                self.rc_into(fns, nil, dst)?;
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                ctx.patch(to_end, end);
            }
            FExpr::Fix(x, _, b) => {
                // The fix body never tail-calls: its `RRet` must run
                // so the VM can cache the one-step unfolding.
                fns.push(FnCtx::new(FuncKind::FixBody, None, Some(*x)));
                let src = self.rc_operand(fns, b)?;
                fns.last_mut()
                    .expect("fix context")
                    .emit(Instr::RRet { src });
                let ctx = fns.pop().expect("fix context");
                let func = self.finish(ctx);
                fns.last_mut()
                    .expect("fn ctx")
                    .emit(Instr::REnterFix { dst, func });
            }
            FExpr::Make(name, _, fields) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let base = mark;
                for (_, fe) in fields {
                    let t = fns.last_mut().expect("fn ctx").alloc_slot();
                    self.rc_into(fns, fe, t)?;
                }
                let syms: Rc<[Symbol]> = fields.iter().map(|(u, _)| *u).collect();
                let fl = self.code.field_lists.len() as u32;
                self.code.field_lists.push(syms);
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RMakeRecord {
                    dst,
                    base,
                    name: *name,
                    fields: fl,
                });
                ctx.next_slot = mark;
            }
            FExpr::Proj(rec, field) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_reg(fns, rec)?;
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RProject {
                    dst,
                    src,
                    field: *field,
                });
                ctx.next_slot = mark;
            }
            FExpr::Inject(ctor, _, args) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let base = mark;
                for a in args {
                    let t = fns.last_mut().expect("fn ctx").alloc_slot();
                    self.rc_into(fns, a, t)?;
                }
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RInject {
                    dst,
                    base,
                    ctor: *ctor,
                    argc: args.len() as u16,
                });
                ctx.next_slot = mark;
            }
            FExpr::Match(scrut, arms) => {
                let mark = fns.last().expect("fn ctx").next_slot;
                let src = self.rc_reg(fns, scrut)?;
                let tbl = self.code.match_tables.len() as u32;
                self.code.match_tables.push(MatchTable::default());
                let ctx = fns.last_mut().expect("fn ctx");
                ctx.emit(Instr::RMatch { src, tbl });
                ctx.next_slot = mark;
                let mut compiled_arms = Vec::with_capacity(arms.len());
                let mut end_jumps = Vec::with_capacity(arms.len());
                for arm in arms {
                    let ctx = fns.last_mut().expect("fn ctx");
                    let target = ctx.here();
                    let saved_scope = ctx.scope.len();
                    let binder_base = ctx.next_slot;
                    for b in &arm.binders {
                        let s = ctx.alloc_slot();
                        ctx.scope.push((*b, s));
                    }
                    self.rc_into(fns, &arm.body, dst)?;
                    let ctx = fns.last_mut().expect("fn ctx");
                    ctx.scope.truncate(saved_scope);
                    ctx.next_slot = mark;
                    end_jumps.push(ctx.emit(Instr::Jump(0)));
                    compiled_arms.push(MatchArmCode {
                        ctor: arm.ctor,
                        binder_base,
                        binders: arm.binders.len() as u16,
                        target,
                    });
                }
                let ctx = fns.last_mut().expect("fn ctx");
                let end = ctx.here();
                for j in end_jumps {
                    ctx.patch(j, end);
                }
                self.code.match_tables[tbl as usize].arms = compiled_arms;
            }
        }
        Ok(())
    }

    /// Pools a literal expression's constant, returning its index.
    fn pool_literal(&mut self, e: &FExpr) -> u32 {
        match e {
            FExpr::Int(n) => self.pool_const(Value::Int(*n), PoolKey::Int(*n)),
            FExpr::Bool(b) => self.pool_const(Value::Bool(*b), PoolKey::Misc(u8::from(*b))),
            FExpr::Str(s) => {
                self.pool_const(Value::Str(Rc::from(s.as_str())), PoolKey::Str(s.clone()))
            }
            FExpr::Unit => self.pool_const(Value::Unit, PoolKey::Misc(2)),
            FExpr::Nil(_) => self.pool_const(Value::List(Rc::new(Vec::new())), PoolKey::Misc(3)),
            other => unreachable!("pooling non-literal {other}"),
        }
    }

    /// Compiles an expression to an RK operand: literals become
    /// inline constant references (no instruction at all), a variable
    /// bound to a register *is* that register (move coalescing), and
    /// everything else lands in a fresh temporary. Capture, `rec`,
    /// and global loads keep their instruction — a capture load can
    /// unfold recursion, so it must hold its place in the stream.
    fn rc_operand(&mut self, fns: &mut Vec<FnCtx>, e: &FExpr) -> Result<u16, CompileError> {
        match e {
            FExpr::Int(_) | FExpr::Bool(_) | FExpr::Str(_) | FExpr::Unit | FExpr::Nil(_) => {
                let konst = self.pool_literal(e);
                if konst <= u32::from(RK_MASK) {
                    return Ok(konst as u16 | RK_CONST);
                }
            }
            FExpr::Var(x) => {
                if let Some(CapSrc::Local(s)) = resolve_var(fns, *x) {
                    return Ok(s);
                }
            }
            _ => {}
        }
        let t = fns.last_mut().expect("fn ctx").alloc_slot();
        self.rc_into(fns, e, t)?;
        Ok(t)
    }

    /// Compiles an expression to a plain register (for operands that
    /// must not be RK constants: callees, scrutinees, pairs being
    /// projected).
    fn rc_reg(&mut self, fns: &mut Vec<FnCtx>, e: &FExpr) -> Result<u16, CompileError> {
        if let FExpr::Var(x) = e {
            if let Some(CapSrc::Local(s)) = resolve_var(fns, *x) {
                return Ok(s);
            }
        }
        let t = fns.last_mut().expect("fn ctx").alloc_slot();
        self.rc_into(fns, e, t)?;
        Ok(t)
    }
}

/// Keys for constant-pool deduplication.
enum PoolKey {
    Int(i64),
    Str(String),
    /// `0`/`1` for the booleans, `2` for unit, `3` for the empty
    /// list (register-ISA RK operands only).
    Misc(u8),
}

/// Resolves a variable against the in-progress function stack,
/// threading captures through intermediate functions. Returns how
/// the *innermost* function loads the value, or `None` for a free
/// variable (candidate global).
fn resolve_var(fns: &mut [FnCtx], name: Symbol) -> Option<CapSrc> {
    fn go(fns: &mut [FnCtx], level: usize, name: Symbol) -> Option<CapSrc> {
        let ctx = &fns[level];
        if let Some((_, slot)) = ctx.scope.iter().rev().find(|(n, _)| *n == name) {
            return Some(CapSrc::Local(*slot));
        }
        if ctx.rec_name == Some(name) {
            return Some(CapSrc::Rec);
        }
        if let Some(i) = ctx.cap_names.iter().position(|n| *n == name) {
            return Some(CapSrc::Capture(i as u16));
        }
        if level == 0 {
            return None;
        }
        // The parent's scope is frozen while this function compiles,
        // so capture-by-name deduplication is sound.
        let parent_src = go(fns, level - 1, name)?;
        let ctx = &mut fns[level];
        ctx.cap_names.push(name);
        ctx.cap_srcs.push(parent_src);
        Some(CapSrc::Capture((ctx.cap_names.len() - 1) as u16))
    }
    go(fns, fns.len() - 1, name)
}
