//! The System F type system (paper appendix, Figure "System F Type
//! System"), extended homomorphically to the host fragment.

use std::fmt;

use implicit_core::symbol::Symbol;

use crate::syntax::{BinOp, FDeclarations, FExpr, FType, UnOp};

/// A System F type error.
#[derive(Clone, Debug, PartialEq)]
pub enum FTypeError {
    /// Unbound term variable.
    UnboundVar(Symbol),
    /// Unknown interface.
    UnknownInterface(Symbol),
    /// Unknown interface field.
    UnknownField {
        /// Interface name.
        interface: Symbol,
        /// Field name.
        field: Symbol,
    },
    /// Types that must be equal are not.
    Mismatch {
        /// Expected type.
        expected: FType,
        /// Found type.
        found: FType,
        /// Location description.
        context: String,
    },
    /// Applied a non-function.
    NotAFunction(FType),
    /// Type-applied a non-quantified expression.
    NotAForall(FType),
    /// Projected a non-pair.
    NotAPair(FType),
    /// Matched a non-list.
    NotAList(FType),
    /// Projected a non-record.
    NotARecord(FType),
    /// `fix` at non-function type.
    FixNotFunction(FType),
    /// Record literal does not match its declaration.
    BadRecordLiteral {
        /// Interface name.
        interface: Symbol,
        /// Explanation.
        reason: String,
    },
    /// Unknown data constructor.
    UnknownCtor(Symbol),
    /// Match on a non-data type.
    NotAData(FType),
    /// Malformed match.
    BadMatch {
        /// The data type.
        data: Symbol,
        /// Explanation.
        reason: String,
    },
    /// Interface arity mismatch.
    ArityMismatch {
        /// Interface name.
        interface: Symbol,
        /// Expected parameter count.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
}

impl fmt::Display for FTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FTypeError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            FTypeError::UnknownInterface(i) => write!(f, "unknown interface `{i}`"),
            FTypeError::UnknownField { interface, field } => {
                write!(f, "interface `{interface}` has no field `{field}`")
            }
            FTypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            FTypeError::NotAFunction(t) => write!(f, "cannot apply value of type `{t}`"),
            FTypeError::NotAForall(t) => {
                write!(f, "cannot type-apply value of type `{t}`")
            }
            FTypeError::NotAPair(t) => write!(f, "cannot project value of type `{t}`"),
            FTypeError::NotAList(t) => write!(f, "cannot list-match value of type `{t}`"),
            FTypeError::NotARecord(t) => write!(f, "cannot field-project value of type `{t}`"),
            FTypeError::FixNotFunction(t) => {
                write!(f, "`fix` requires a function type, found `{t}`")
            }
            FTypeError::BadRecordLiteral { interface, reason } => {
                write!(f, "bad record literal for `{interface}`: {reason}")
            }
            FTypeError::UnknownCtor(c) => write!(f, "unknown data constructor `{c}`"),
            FTypeError::NotAData(t) => write!(f, "cannot match on `{t}`"),
            FTypeError::BadMatch { data, reason } => write!(f, "bad match on `{data}`: {reason}"),
            FTypeError::ArityMismatch {
                interface,
                expected,
                found,
            } => write!(
                f,
                "interface `{interface}` expects {expected} type argument(s), found {found}"
            ),
        }
    }
}

impl std::error::Error for FTypeError {}

/// Type-checks a closed expression.
///
/// # Errors
///
/// Returns the first [`FTypeError`] encountered.
pub fn typecheck(decls: &FDeclarations, e: &FExpr) -> Result<FType, FTypeError> {
    typecheck_open(decls, &[], e)
}

/// Type-checks an expression under an initial term environment.
///
/// # Errors
///
/// Returns the first [`FTypeError`] encountered.
pub fn typecheck_open(
    decls: &FDeclarations,
    gamma: &[(Symbol, FType)],
    e: &FExpr,
) -> Result<FType, FTypeError> {
    let mut env = gamma.to_vec();
    check(decls, &mut env, e)
}

fn eq(expected: &FType, found: &FType, context: &str) -> Result<(), FTypeError> {
    if expected.alpha_eq(found) {
        Ok(())
    } else {
        Err(FTypeError::Mismatch {
            expected: expected.clone(),
            found: found.clone(),
            context: context.to_owned(),
        })
    }
}

fn check(
    decls: &FDeclarations,
    gamma: &mut Vec<(Symbol, FType)>,
    e: &FExpr,
) -> Result<FType, FTypeError> {
    match e {
        FExpr::Int(_) => Ok(FType::Int),
        FExpr::Bool(_) => Ok(FType::Bool),
        FExpr::Str(_) => Ok(FType::Str),
        FExpr::Unit => Ok(FType::Unit),
        FExpr::Var(x) => gamma
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t.clone())
            .ok_or(FTypeError::UnboundVar(*x)),
        FExpr::Lam(x, t, b) => {
            gamma.push((*x, t.clone()));
            let out = check(decls, gamma, b);
            gamma.pop();
            Ok(FType::arrow(t.clone(), out?))
        }
        FExpr::App(f, a) => {
            let tf = check(decls, gamma, f)?;
            let ta = check(decls, gamma, a)?;
            match tf {
                FType::Arrow(dom, cod) => {
                    eq(&dom, &ta, "application")?;
                    Ok((*cod).clone())
                }
                other => Err(FTypeError::NotAFunction(other)),
            }
        }
        FExpr::TyAbs(a, b) => {
            // F-TAbs side condition α ∉ ftv(Γ): since elaboration
            // freshens binders, a violation indicates a bug upstream;
            // report it as a mismatch-style error.
            if gamma.iter().any(|(_, t)| t.ftv().contains(a)) {
                return Err(FTypeError::Mismatch {
                    expected: FType::Var(*a),
                    found: FType::Var(*a),
                    context: format!("type abstraction captures `{a}` free in the environment"),
                });
            }
            let tb = check(decls, gamma, b)?;
            Ok(FType::Forall(*a, std::rc::Rc::new(tb)))
        }
        FExpr::TyApp(f, t) => {
            let tf = check(decls, gamma, f)?;
            match tf {
                FType::Forall(a, body) => Ok(body.subst(a, t)),
                other => Err(FTypeError::NotAForall(other)),
            }
        }
        FExpr::If(c, t, el) => {
            let tc = check(decls, gamma, c)?;
            eq(&FType::Bool, &tc, "if condition")?;
            let tt = check(decls, gamma, t)?;
            let te = check(decls, gamma, el)?;
            eq(&tt, &te, "if branches")?;
            Ok(tt)
        }
        FExpr::BinOp(op, a, b) => {
            let ta = check(decls, gamma, a)?;
            let tb = check(decls, gamma, b)?;
            use BinOp::*;
            match op {
                Add | Sub | Mul | Div | Mod => {
                    eq(&FType::Int, &ta, "arithmetic")?;
                    eq(&FType::Int, &tb, "arithmetic")?;
                    Ok(FType::Int)
                }
                Lt | Le => {
                    eq(&FType::Int, &ta, "comparison")?;
                    eq(&FType::Int, &tb, "comparison")?;
                    Ok(FType::Bool)
                }
                And | Or => {
                    eq(&FType::Bool, &ta, "logic")?;
                    eq(&FType::Bool, &tb, "logic")?;
                    Ok(FType::Bool)
                }
                Concat => {
                    eq(&FType::Str, &ta, "concatenation")?;
                    eq(&FType::Str, &tb, "concatenation")?;
                    Ok(FType::Str)
                }
                Eq => {
                    if !matches!(ta, FType::Int | FType::Bool | FType::Str) {
                        return Err(FTypeError::Mismatch {
                            expected: FType::Int,
                            found: ta,
                            context: "`==` requires a base type".into(),
                        });
                    }
                    eq(&ta, &tb, "equality")?;
                    Ok(FType::Bool)
                }
            }
        }
        FExpr::UnOp(op, a) => {
            let ta = check(decls, gamma, a)?;
            let (dom, cod) = match op {
                UnOp::Not => (FType::Bool, FType::Bool),
                UnOp::Neg => (FType::Int, FType::Int),
                UnOp::IntToStr => (FType::Int, FType::Str),
            };
            eq(&dom, &ta, "unary operand")?;
            Ok(cod)
        }
        FExpr::Pair(a, b) => Ok(FType::prod(
            check(decls, gamma, a)?,
            check(decls, gamma, b)?,
        )),
        FExpr::Fst(a) => match check(decls, gamma, a)? {
            FType::Prod(l, _) => Ok((*l).clone()),
            other => Err(FTypeError::NotAPair(other)),
        },
        FExpr::Snd(a) => match check(decls, gamma, a)? {
            FType::Prod(_, r) => Ok((*r).clone()),
            other => Err(FTypeError::NotAPair(other)),
        },
        FExpr::Nil(t) => Ok(FType::list(t.clone())),
        FExpr::Cons(h, t) => {
            let th = check(decls, gamma, h)?;
            let tt = check(decls, gamma, t)?;
            match &tt {
                FType::List(el) => {
                    eq(el, &th, "cons")?;
                    Ok(tt.clone())
                }
                _ => Err(FTypeError::NotAList(tt)),
            }
        }
        FExpr::ListCase {
            scrut,
            nil,
            head,
            tail,
            cons,
        } => {
            let ts = check(decls, gamma, scrut)?;
            let FType::List(el) = ts else {
                return Err(FTypeError::NotAList(ts));
            };
            let tn = check(decls, gamma, nil)?;
            gamma.push((*head, (*el).clone()));
            gamma.push((*tail, FType::List(el)));
            let tc = check(decls, gamma, cons);
            gamma.pop();
            gamma.pop();
            eq(&tn, &tc?, "case branches")?;
            Ok(tn)
        }
        FExpr::Fix(x, t, b) => {
            // Function types and quantified (rule-image) types are
            // both closure-valued, so value recursion is safe.
            if !matches!(t, FType::Arrow(_, _) | FType::Forall(_, _)) {
                return Err(FTypeError::FixNotFunction(t.clone()));
            }
            gamma.push((*x, t.clone()));
            let tb = check(decls, gamma, b);
            gamma.pop();
            eq(t, &tb?, "fix body")?;
            Ok(t.clone())
        }
        FExpr::Make(name, args, fields) => {
            let decl = decls
                .lookup(*name)
                .ok_or(FTypeError::UnknownInterface(*name))?;
            if decl.vars.len() != args.len() {
                return Err(FTypeError::ArityMismatch {
                    interface: *name,
                    expected: decl.vars.len(),
                    found: args.len(),
                });
            }
            if fields.len() != decl.fields.len() {
                return Err(FTypeError::BadRecordLiteral {
                    interface: *name,
                    reason: format!(
                        "expected {} field(s), found {}",
                        decl.fields.len(),
                        fields.len()
                    ),
                });
            }
            for (u, fe) in fields {
                let want = decl.field_type(*u, args).ok_or(FTypeError::UnknownField {
                    interface: *name,
                    field: *u,
                })?;
                let got = check(decls, gamma, fe)?;
                eq(&want, &got, &format!("field `{u}`"))?;
            }
            Ok(FType::Con(*name, args.clone()))
        }
        FExpr::Proj(rec, field) => {
            let tr = check(decls, gamma, rec)?;
            let FType::Con(name, args) = tr else {
                return Err(FTypeError::NotARecord(tr));
            };
            let decl = decls
                .lookup(name)
                .ok_or(FTypeError::UnknownInterface(name))?;
            decl.field_type(*field, &args)
                .ok_or(FTypeError::UnknownField {
                    interface: name,
                    field: *field,
                })
        }
        FExpr::Inject(ctor, targs, args) => check_inject(decls, gamma, *ctor, targs, args),
        FExpr::Match(scrut, arms) => check_match(decls, gamma, scrut, arms),
    }
}

/// `FExpr::Inject` checking, out of line to keep the recursive
/// checker's stack frames small.
#[inline(never)]
fn check_inject(
    decls: &FDeclarations,
    gamma: &mut Vec<(Symbol, FType)>,
    ctor: Symbol,
    targs: &[FType],
    args: &[FExpr],
) -> Result<FType, FTypeError> {
    let data = decls
        .lookup_ctor(ctor)
        .ok_or(FTypeError::UnknownCtor(ctor))?
        .clone();
    if data.params.len() != targs.len() {
        return Err(FTypeError::ArityMismatch {
            interface: data.name,
            expected: data.params.len(),
            found: targs.len(),
        });
    }
    let want = data
        .ctor_arg_types(ctor, targs)
        .expect("ctor just looked up");
    if want.len() != args.len() {
        return Err(FTypeError::ArityMismatch {
            interface: ctor,
            expected: want.len(),
            found: args.len(),
        });
    }
    for (w, a) in want.iter().zip(args) {
        let got = check(decls, gamma, a)?;
        eq(w, &got, &format!("constructor `{ctor}`"))?;
    }
    Ok(FType::Con(data.name, targs.to_vec()))
}

/// `FExpr::Match` checking, out of line to keep the recursive
/// checker's stack frames small.
#[inline(never)]
fn check_match(
    decls: &FDeclarations,
    gamma: &mut Vec<(Symbol, FType)>,
    scrut: &FExpr,
    arms: &[crate::syntax::FMatchArm],
) -> Result<FType, FTypeError> {
    let ts = check(decls, gamma, scrut)?;
    let FType::Con(name, targs) = &ts else {
        return Err(FTypeError::NotAData(ts));
    };
    let data = decls
        .lookup_data(*name)
        .ok_or(FTypeError::NotAData(ts.clone()))?
        .clone();
    let mut remaining: Vec<Symbol> = data.ctors.iter().map(|(c, _)| *c).collect();
    let mut result: Option<FType> = None;
    for arm in arms {
        let Some(pos) = remaining.iter().position(|c| *c == arm.ctor) else {
            return Err(FTypeError::BadMatch {
                data: *name,
                reason: format!("unexpected arm `{}`", arm.ctor),
            });
        };
        remaining.remove(pos);
        let want = data
            .ctor_arg_types(arm.ctor, targs)
            .expect("arm ctor exists");
        if want.len() != arm.binders.len() {
            return Err(FTypeError::BadMatch {
                data: *name,
                reason: format!("binder count for `{}`", arm.ctor),
            });
        }
        for (b, w) in arm.binders.iter().zip(&want) {
            gamma.push((*b, w.clone()));
        }
        let got = check(decls, gamma, &arm.body);
        for _ in &arm.binders {
            gamma.pop();
        }
        let got = got?;
        match &result {
            None => result = Some(got),
            Some(prev) => eq(prev, &got, "match arms")?,
        }
    }
    if !remaining.is_empty() {
        return Err(FTypeError::BadMatch {
            data: *name,
            reason: "non-exhaustive match".into(),
        });
    }
    result.ok_or(FTypeError::BadMatch {
        data: *name,
        reason: "empty match".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use implicit_core::symbol::{fresh, Symbol};

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn check0(e: &FExpr) -> Result<FType, FTypeError> {
        typecheck(&FDeclarations::new(), e)
    }

    #[test]
    fn polymorphic_identity() {
        let a = v("a");
        let id = FExpr::ty_abs([a], FExpr::lam("x", FType::Var(a), FExpr::var("x")));
        let t = check0(&id).unwrap();
        assert!(t.alpha_eq(&FType::Forall(
            a,
            std::rc::Rc::new(FType::arrow(FType::Var(a), FType::Var(a)))
        )));
        let inst = FExpr::TyApp(std::rc::Rc::new(id), FType::Int);
        assert_eq!(check0(&inst).unwrap(), FType::arrow(FType::Int, FType::Int));
    }

    #[test]
    fn tyabs_capture_condition() {
        // λ(x:a). Λa. x — the abstraction would capture a.
        let a = v("a");
        let bad = FExpr::lam(
            "x",
            FType::Var(a),
            FExpr::TyAbs(a, std::rc::Rc::new(FExpr::var("x"))),
        );
        assert!(check0(&bad).is_err());
    }

    #[test]
    fn paper_elaboration_example_types() {
        // Λα. λ(x:α). (x, x) : ∀α. α → α × α
        let a = fresh("alpha");
        let e = FExpr::ty_abs(
            [a],
            FExpr::lam(
                "x",
                FType::Var(a),
                FExpr::Pair(
                    std::rc::Rc::new(FExpr::var("x")),
                    std::rc::Rc::new(FExpr::var("x")),
                ),
            ),
        );
        let t = check0(&e).unwrap();
        let want = FType::Forall(
            a,
            std::rc::Rc::new(FType::arrow(
                FType::Var(a),
                FType::prod(FType::Var(a), FType::Var(a)),
            )),
        );
        assert!(t.alpha_eq(&want));
    }

    #[test]
    fn application_checks_domains() {
        let f = FExpr::lam("x", FType::Int, FExpr::var("x"));
        assert!(check0(&FExpr::app(f.clone(), FExpr::Int(1))).is_ok());
        assert!(check0(&FExpr::app(f, FExpr::Bool(true))).is_err());
    }

    #[test]
    fn records_typecheck() {
        let mut decls = FDeclarations::new();
        decls.declare(crate::syntax::FInterfaceDecl {
            name: v("Show"),
            vars: vec![v("a")],
            fields: vec![(v("show"), FType::arrow(FType::Var(v("a")), FType::Str))],
        });
        let lit = FExpr::Make(
            v("Show"),
            vec![FType::Int],
            vec![(
                v("show"),
                FExpr::lam(
                    "n",
                    FType::Int,
                    FExpr::UnOp(UnOp::IntToStr, std::rc::Rc::new(FExpr::var("n"))),
                ),
            )],
        );
        assert_eq!(
            typecheck(&decls, &lit).unwrap(),
            FType::Con(v("Show"), vec![FType::Int])
        );
        let proj = FExpr::Proj(std::rc::Rc::new(lit), v("show"));
        assert_eq!(
            typecheck(&decls, &proj).unwrap(),
            FType::arrow(FType::Int, FType::Str)
        );
    }

    #[test]
    fn list_and_fix_typecheck() {
        // length : [Int] → Int
        let len_ty = FType::arrow(FType::list(FType::Int), FType::Int);
        let len = FExpr::Fix(
            v("len"),
            len_ty.clone(),
            std::rc::Rc::new(FExpr::lam(
                "xs",
                FType::list(FType::Int),
                FExpr::ListCase {
                    scrut: std::rc::Rc::new(FExpr::var("xs")),
                    nil: std::rc::Rc::new(FExpr::Int(0)),
                    head: v("h"),
                    tail: v("t"),
                    cons: std::rc::Rc::new(FExpr::BinOp(
                        BinOp::Add,
                        std::rc::Rc::new(FExpr::Int(1)),
                        std::rc::Rc::new(FExpr::app(FExpr::var("len"), FExpr::var("t"))),
                    )),
                },
            )),
        );
        assert_eq!(check0(&len).unwrap(), len_ty);
    }
}
