//! Property tests for the System F substrate: type substitution
//! lemmas, α-equivalence laws, and evaluator soundness on randomly
//! generated *well-typed* terms.

use proptest::prelude::*;

use implicit_core::symbol::{fresh, Symbol};
use systemf::eval::{EvalError, Evaluator};
use systemf::syntax::{BinOp, FDeclarations, FExpr, FType};
use systemf::typeck::typecheck;

fn vname() -> impl Strategy<Value = Symbol> {
    prop_oneof![Just("fa"), Just("fb"), Just("fc")].prop_map(Symbol::intern)
}

fn arb_ftype() -> impl Strategy<Value = FType> {
    let leaf = prop_oneof![
        Just(FType::Int),
        Just(FType::Bool),
        Just(FType::Str),
        Just(FType::Unit),
        vname().prop_map(FType::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FType::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FType::prod(a, b)),
            inner.clone().prop_map(FType::list),
            (vname(), inner).prop_map(|(v, b)| FType::Forall(v, std::rc::Rc::new(b))),
        ]
    })
}

fn arb_ground_ftype() -> impl Strategy<Value = FType> {
    let leaf = prop_oneof![Just(FType::Int), Just(FType::Bool), Just(FType::Str)];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FType::prod(a, b)),
            inner.prop_map(FType::list),
        ]
    })
}

proptest! {
    #[test]
    fn alpha_eq_is_reflexive(t in arb_ftype()) {
        prop_assert!(t.alpha_eq(&t));
    }

    #[test]
    fn subst_of_absent_variable_is_identity(t in arb_ftype(), u in arb_ground_ftype()) {
        let ghost = Symbol::intern("zz_absent");
        prop_assert!(t.subst(ghost, &u).alpha_eq(&t));
    }

    #[test]
    fn subst_removes_the_substituted_variable(t in arb_ftype(), u in arb_ground_ftype()) {
        let a = Symbol::intern("fa");
        let out = t.subst(a, &u);
        prop_assert!(!out.ftv().contains(&a));
    }

    #[test]
    fn alpha_renaming_preserves_alpha_class(t in arb_ftype()) {
        // Rename one binder layer freshly, compare.
        let a = Symbol::intern("binder_x");
        let wrapped = FType::Forall(a, std::rc::Rc::new(t.clone()));
        let b = fresh("binder_x");
        let renamed = FType::Forall(b, std::rc::Rc::new(t.subst(a, &FType::Var(b))));
        prop_assert!(wrapped.alpha_eq(&renamed));
    }
}

/// A tiny generator of *well-typed* System F programs of type Int:
/// arithmetic over β-redexes and polymorphic identities.
fn arb_int_expr() -> impl Strategy<Value = FExpr> {
    let leaf = (-50i64..50).prop_map(FExpr::Int);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::BinOp(
                BinOp::Add,
                a.into(),
                b.into()
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::BinOp(
                BinOp::Mul,
                a.into(),
                b.into()
            )),
            // (λx:Int. x + e1) e2
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                let x = fresh("px");
                FExpr::app(
                    FExpr::lam(
                        x,
                        FType::Int,
                        FExpr::BinOp(BinOp::Add, FExpr::Var(x).into(), a.into()),
                    ),
                    b,
                )
            }),
            // (Λα. λx:α. x) Int e
            inner.clone().prop_map(|e| {
                let a = fresh("pa");
                let x = fresh("py");
                let id = FExpr::ty_abs([a], FExpr::lam(x, FType::Var(a), FExpr::Var(x)));
                FExpr::app(FExpr::TyApp(id.into(), FType::Int), e)
            }),
            // if e1 ≤ e2 then e3 else e3'
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(a, b, c, d)| {
                FExpr::If(
                    FExpr::BinOp(BinOp::Le, a.into(), b.into()).into(),
                    c.into(),
                    d.into(),
                )
            }),
        ]
    })
}

proptest! {
    #[test]
    fn welltyped_int_programs_evaluate_to_ints(e in arb_int_expr()) {
        let decls = FDeclarations::new();
        let ty = typecheck(&decls, &e).expect("generated term is well-typed");
        prop_assert_eq!(ty, FType::Int);
        match Evaluator::new().eval(&e) {
            Ok(systemf::Value::Int(_)) => {}
            Ok(other) => prop_assert!(false, "non-Int value {}", other),
            Err(err) => prop_assert!(false, "evaluation failed: {err}"),
        }
    }

    #[test]
    fn evaluation_is_deterministic(e in arb_int_expr()) {
        let v1 = Evaluator::new().eval(&e).unwrap();
        let v2 = Evaluator::new().eval(&e).unwrap();
        prop_assert_eq!(v1.try_eq(&v2), Some(true));
    }
}

#[test]
fn fuel_is_monotone() {
    // If evaluation succeeds with fuel f, it succeeds with any f' ≥ f
    // and yields the same value.
    let fac = {
        let f = Symbol::intern("mf");
        FExpr::app(
            FExpr::Fix(
                f,
                FType::arrow(FType::Int, FType::Int),
                std::rc::Rc::new(FExpr::lam(
                    "n",
                    FType::Int,
                    FExpr::If(
                        FExpr::BinOp(BinOp::Le, FExpr::var("n").into(), FExpr::Int(0).into())
                            .into(),
                        FExpr::Int(1).into(),
                        FExpr::BinOp(
                            BinOp::Mul,
                            FExpr::var("n").into(),
                            FExpr::app(
                                FExpr::Var(f),
                                FExpr::BinOp(
                                    BinOp::Sub,
                                    FExpr::var("n").into(),
                                    FExpr::Int(1).into(),
                                ),
                            )
                            .into(),
                        )
                        .into(),
                    ),
                )),
            ),
            FExpr::Int(10),
        )
    };
    let mut needed = None;
    for fuel in [10u64, 100, 1000, 10_000] {
        match Evaluator::with_fuel(fuel).eval(&fac) {
            Ok(v) => {
                assert_eq!(v.to_string(), "3628800");
                needed.get_or_insert(fuel);
            }
            Err(EvalError::OutOfFuel) => {
                assert!(needed.is_none(), "fuel must be monotone");
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(needed.is_some(), "10k fuel must suffice for 10!");
}
