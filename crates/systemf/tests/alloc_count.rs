//! Allocation budget for the eval hot path.
//!
//! A counting global allocator measures heap allocations (count and
//! bytes) for representative batch-eval workloads: building lists
//! with `Cons`, folding them with `ListCase` + `Fst`/`Snd`, and a
//! `Match`/`Proj` recursion. The budgets below pin the post-PR-3
//! numbers (uniquely-owned `Rc` payloads are moved, not re-copied);
//! the before/after counts are recorded in EXPERIMENTS.md §6.
//!
//! The same workloads also run through the bytecode backend, with
//! separate budgets for compilation (instruction buffers, constant
//! pool, capture lists) and execution (value heap only — frames and
//! operand stacks amortize to a handful of `Vec` growths).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use systemf::eval::{Evaluator, Value};
use systemf::syntax::{BinOp, FExpr, FMatchArm, FType};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce() -> Value) -> (Value, u64, u64) {
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = BYTES.load(Ordering::Relaxed);
    let v = f();
    (
        v,
        ALLOCS.load(Ordering::Relaxed) - allocs0,
        BYTES.load(Ordering::Relaxed) - bytes0,
    )
}

/// `sum (list of (i, 2i) for i in 0..n)` via `fix` + `ListCase`,
/// reading both components with `Fst`/`Snd`. The list is a `Cons`
/// literal, so each tail is uniquely owned during construction.
fn pair_list_fold(n: i64) -> FExpr {
    let pair_ty = FType::Prod(FType::Int.into(), FType::Int.into());
    let list_ty = FType::List(std::rc::Rc::new(pair_ty.clone()));
    let mut list = FExpr::Nil(pair_ty);
    for i in (0..n).rev() {
        list = FExpr::Cons(
            FExpr::Pair(FExpr::Int(i).into(), FExpr::Int(2 * i).into()).into(),
            list.into(),
        );
    }
    let body = FExpr::ListCase {
        scrut: FExpr::var("xs").into(),
        nil: FExpr::Int(0).into(),
        head: "h".into(),
        tail: "t".into(),
        cons: FExpr::BinOp(
            BinOp::Add,
            FExpr::BinOp(
                BinOp::Add,
                FExpr::Fst(FExpr::var("h").into()).into(),
                FExpr::Snd(FExpr::var("h").into()).into(),
            )
            .into(),
            FExpr::app(FExpr::var("sum"), FExpr::var("t")).into(),
        )
        .into(),
    };
    let sum = FExpr::Fix(
        "sum".into(),
        FType::arrow(list_ty.clone(), FType::Int),
        FExpr::lam("xs", list_ty, body).into(),
    );
    FExpr::app(sum, list)
}

/// `build n = n :: build (n-1)` — every `Cons` tail comes straight
/// out of the recursive call, uniquely owned. The cold evaluator
/// copies the whole accumulated list per step (O(n²) bytes).
fn cons_build(n: i64) -> FExpr {
    let list_ty = FType::List(std::rc::Rc::new(FType::Int));
    let body = FExpr::If(
        FExpr::BinOp(BinOp::Lt, FExpr::var("k").into(), FExpr::Int(1).into()).into(),
        FExpr::Nil(FType::Int).into(),
        FExpr::Cons(
            FExpr::var("k").into(),
            FExpr::app(
                FExpr::var("build"),
                FExpr::BinOp(BinOp::Sub, FExpr::var("k").into(), FExpr::Int(1).into()),
            )
            .into(),
        )
        .into(),
    );
    let build = FExpr::Fix(
        "build".into(),
        FType::arrow(FType::Int, list_ty),
        FExpr::lam("k", FType::Int, body).into(),
    );
    FExpr::app(build, FExpr::Int(n))
}

/// Counts down from `n` through a `Match` on a freshly injected
/// constructor, adding a record `Proj` each step.
fn match_proj_loop(n: i64) -> FExpr {
    let step = FExpr::Match(
        FExpr::Inject(
            "MkStep".into(),
            Vec::new(),
            vec![FExpr::BinOp(
                BinOp::Sub,
                FExpr::var("n").into(),
                FExpr::Int(1).into(),
            )],
        )
        .into(),
        vec![FMatchArm {
            ctor: "MkStep".into(),
            binders: vec!["m".into()],
            body: FExpr::BinOp(
                BinOp::Add,
                FExpr::app(FExpr::var("loop"), FExpr::var("m")).into(),
                FExpr::Proj(
                    FExpr::Make("R".into(), Vec::new(), vec![("v".into(), FExpr::Int(1))]).into(),
                    "v".into(),
                )
                .into(),
            ),
        }],
    );
    let body = FExpr::If(
        FExpr::BinOp(BinOp::Lt, FExpr::var("n").into(), FExpr::Int(1).into()).into(),
        FExpr::Int(0).into(),
        step.into(),
    );
    let f = FExpr::Fix(
        "loop".into(),
        FType::arrow(FType::Int, FType::Int),
        FExpr::lam("n", FType::Int, body).into(),
    );
    FExpr::app(f, FExpr::Int(n))
}

#[test]
fn eval_hot_path_allocation_budget() {
    // The tree-walking evaluator recurses per list element; give the
    // debug build a roomy stack.
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(budget_body)
        .unwrap()
        .join()
        .unwrap();
}

fn budget_body() {
    let fold = pair_list_fold(200);
    let build = cons_build(500);
    let matches = match_proj_loop(200);

    let (v1, a1, b1) = allocs_during(|| Evaluator::new().eval(&fold).unwrap());
    assert_eq!(v1.to_string(), (3 * 200 * 199 / 2).to_string());

    let (v2, a2, b2) = allocs_during(|| Evaluator::new().eval(&build).unwrap());
    match &v2 {
        Value::List(xs) => assert_eq!(xs.len(), 500),
        other => panic!("expected list, got {other}"),
    }

    let (v3, a3, b3) = allocs_during(|| Evaluator::new().eval(&matches).unwrap());
    assert_eq!(v3.to_string(), "200");

    eprintln!("alloc_count: pair_list_fold(200)  = {a1} allocs / {b1} bytes");
    eprintln!("alloc_count: cons_build(500)      = {a2} allocs / {b2} bytes");
    eprintln!("alloc_count: match_proj_loop(200) = {a3} allocs / {b3} bytes");

    // Budgets pin the post-fix numbers with ~30% headroom so
    // unrelated churn doesn't flake (see EXPERIMENTS.md §6 for the
    // measured before/after table).
    assert!(a1 < 2_600, "pair_list_fold regressed: {a1} allocs");
    assert!(a2 < 2_100, "cons_build regressed: {a2} allocs");
    assert!(
        b2 < 200_000,
        "cons_build byte traffic regressed: {b2} bytes"
    );
    assert!(a3 < 1_900, "match_proj_loop regressed: {a3} allocs");
}

#[test]
fn tracing_disabled_allocates_nothing_extra() {
    // The resolution engine is instrumented with a `TraceSink`
    // parameter; with the default `NullSink` every emission guard is
    // statically false, so no event — and in particular no
    // pretty-printed query string — may ever be built. Pin the
    // resolution allocation count and check the public `resolve`
    // entry point (which routes through `resolve_with` + `NullSink`)
    // against the explicit-NullSink call, allocation for allocation.
    use implicit_core::resolve::{resolve, resolve_with, ResolutionPolicy};
    use implicit_core::trace::NullSink;

    let (env, query) = genprog::chain_env(24);
    let policy = ResolutionPolicy::paper().without_cache();
    // Warm up interning and any lazy statics once.
    resolve(&env, &query, &policy).unwrap();

    let (_, a_plain, b_plain) = allocs_during(|| {
        resolve(&env, &query, &policy).unwrap();
        Value::Unit
    });
    let (_, a_null, b_null) = allocs_during(|| {
        resolve_with(&env, &query, &policy, &mut NullSink).unwrap();
        Value::Unit
    });
    eprintln!("alloc_count[trace]: resolve chain(24) plain = {a_plain} allocs / {b_plain} bytes");
    eprintln!("alloc_count[trace]: resolve chain(24) null  = {a_null} allocs / {b_null} bytes");

    assert_eq!(
        (a_plain, b_plain),
        (a_null, b_null),
        "NullSink resolution must allocate exactly like the plain entry point"
    );
    // Absolute budget: a 24-deep derivation chain measures 244
    // allocations (~10 per sub-query). If tracing ever allocates on
    // the disabled path (e.g. an event string built outside the
    // `enabled()` guard), that adds several allocations per event —
    // five-plus events per query — and lands far above this bar.
    assert!(
        a_null < 300,
        "disabled-tracing resolution allocation budget exceeded: {a_null} allocs"
    );
}

/// Compiles `e`, then measures compile and run allocations
/// separately (the warm pipeline pays the former once per program and
/// the latter per evaluation).
fn vm_allocs(e: &FExpr) -> (Value, (u64, u64), (u64, u64)) {
    use systemf::{Compiler, Vm};
    let mut compiler = Compiler::new();
    let mut main = 0;
    let (_, ca, cb) = allocs_during(|| {
        main = compiler.compile(e).unwrap();
        Value::Unit
    });
    let (v, ra, rb) = allocs_during(|| Vm::new().run(compiler.code(), main, &[]).unwrap());
    (v, (ca, cb), (ra, rb))
}

#[test]
fn vm_path_allocation_budget() {
    let fold = pair_list_fold(200);
    let build = cons_build(500);
    let matches = match_proj_loop(200);

    let (v1, c1, r1) = vm_allocs(&fold);
    assert_eq!(v1.to_string(), (3 * 200 * 199 / 2).to_string());

    let (v2, c2, r2) = vm_allocs(&build);
    match &v2 {
        Value::List(xs) => assert_eq!(xs.len(), 500),
        other => panic!("expected list, got {other}"),
    }

    let (v3, c3, r3) = vm_allocs(&matches);
    assert_eq!(v3.to_string(), "200");

    eprintln!("alloc_count[vm]: pair_list_fold(200)  compile {c1:?}, run {r1:?} (allocs, bytes)");
    eprintln!("alloc_count[vm]: cons_build(500)      compile {c2:?}, run {r2:?}");
    eprintln!("alloc_count[vm]: match_proj_loop(200) compile {c3:?}, run {r3:?}");

    // Compile cost is a handful of `Vec` growths: instruction buffers
    // double amortized, and the 200 `Cons` literals in pair_list_fold
    // land in one flat instruction stream, not 200 nodes.
    assert!(c1.0 < 100, "pair_list_fold compile regressed: {c1:?}");
    assert!(c2.0 < 50, "cons_build compile regressed: {c2:?}");
    assert!(c3.0 < 50, "match_proj_loop compile regressed: {c3:?}");

    // Run cost is the per-run bump arena: tagged words are `Copy`, so
    // ints/bools/pairs/conses cost amortized `Vec` doublings instead
    // of one `Rc` box per value. The register loop measures 34 / 39 /
    // 434 allocations — fewer than the stack loop's 40 / 44 / 433,
    // since one flat register file replaces the locals + operand-stack
    // pair (the match loop still pays one args-`Vec` per `Inject` and
    // one fields-`Vec` per `Make`). Byte traffic on the deep non-tail
    // recursion is a little higher (each of the 500 live windows is a
    // full frame's registers, and the file doubles through them);
    // budgets leave ~40% headroom.
    assert!(r1.0 < 50, "pair_list_fold run regressed: {r1:?}");
    assert!(r2.0 < 55, "cons_build run regressed: {r2:?}");
    assert!(
        r2.1 < 320_000,
        "cons_build run byte traffic regressed: {r2:?}"
    );
    assert!(r3.0 < 600, "match_proj_loop run regressed: {r3:?}");
}
