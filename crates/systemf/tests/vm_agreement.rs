//! Backend-agreement differential test: for generated λ⇒ programs,
//! the register VM, the stack VM, the tree-walking System F
//! evaluator, and the direct operational semantics must compute the
//! same value — under every resolution policy, since each policy may
//! elaborate to a *different* System F term (different evidence), and
//! both VM ISAs have to agree with the tree-walker on whichever term
//! it is handed.

use implicit_core::resolve::ResolutionPolicy;
use implicit_opsem::Interpreter;
use systemf::Isa;

const PROGRAMS: usize = 1000;

/// The four policies the pipeline exposes.
fn policies() -> [(&'static str, ResolutionPolicy); 4] {
    [
        ("paper", ResolutionPolicy::paper()),
        ("paper-nocache", ResolutionPolicy::paper().without_cache()),
        (
            "most-specific",
            ResolutionPolicy::paper().with_most_specific(),
        ),
        (
            "env-extension",
            ResolutionPolicy::paper().with_env_extension(),
        ),
    ]
}

#[test]
fn vm_agrees_with_tree_walk_and_opsem_under_all_policies() {
    // The tree-walker and elaborator recurse on the host stack, so
    // mirror the pipeline driver's worker stack here; the VM itself
    // needs none of it (see `vm_deep.rs`).
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(body)
        .expect("spawn")
        .join()
        .expect("agreement test thread");
}

fn body() {
    let decls = genprog::data_prelude();
    let mut r = genprog::rng(0xB14_CAFE);
    let cfg = genprog::GenConfig::default();
    for i in 0..PROGRAMS {
        let p = genprog::gen_program_with(&mut r, &cfg, &decls);
        for (name, policy) in &policies() {
            let out = implicit_elab::run_with(&decls, &p.expr, policy)
                .unwrap_or_else(|e| panic!("program {i} [{name}]: elaboration leg failed: {e}"));
            let tree = out.value.to_string();

            let vm = systemf::compile_and_run_isa(&out.target, Isa::Register).unwrap_or_else(|e| {
                panic!("program {i} [{name}]: register vm failed: {e}\n{}", p.expr)
            });
            assert_eq!(
                vm.to_string(),
                tree,
                "program {i} [{name}]: register vm vs tree-walk on\n{}",
                p.expr
            );

            let stack = systemf::compile_and_run_isa(&out.target, Isa::Stack).unwrap_or_else(|e| {
                panic!("program {i} [{name}]: stack vm failed: {e}\n{}", p.expr)
            });
            assert_eq!(
                stack.to_string(),
                tree,
                "program {i} [{name}]: stack vm vs register vm/tree on\n{}",
                p.expr
            );

            let opsem = Interpreter::new(&decls)
                .with_policy(policy.clone())
                .eval(&p.expr)
                .unwrap_or_else(|e| panic!("program {i} [{name}]: opsem failed: {e}\n{}", p.expr));
            assert_eq!(
                opsem.to_string(),
                tree,
                "program {i} [{name}]: opsem vs elaboration on\n{}",
                p.expr
            );
        }
    }
}
