//! Deep-recursion regression tests for the bytecode VM.
//!
//! The tree-walking evaluator recurses on the host stack once per
//! `fix` unfold, which is why `implicit_pipeline::driver` gives its
//! workers 64 MiB stacks. The VM heap-allocates its frames, so the
//! same programs must run on the 8 MiB default main-thread stack —
//! and far below it. Both recursion shapes are covered:
//!
//! * a **non-tail** fold (`sum n = n + sum (n-1)`), which grows the
//!   VM's *heap* frame stack 100k deep while host stack stays flat;
//! * a **tail** loop, which after tail-call compilation runs in
//!   constant frames *and* constant heap.

use std::rc::Rc;

use systemf::syntax::{BinOp, FExpr, FType};
use systemf::vm::compile_and_run_isa;
use systemf::Isa;

const N: i64 = 100_000;

/// `fix f: Int -> Int. \n. if n <= 0 then z else <step>` applied to
/// [`N`].
fn countdown(step: FExpr, z: FExpr) -> FExpr {
    let f = FExpr::Fix(
        "f".into(),
        FType::arrow(FType::Int, FType::Int),
        Rc::new(FExpr::lam(
            "n",
            FType::Int,
            FExpr::If(
                Rc::new(FExpr::BinOp(
                    BinOp::Le,
                    Rc::new(FExpr::var("n")),
                    Rc::new(FExpr::Int(0)),
                )),
                Rc::new(z),
                Rc::new(step),
            ),
        )),
    );
    FExpr::app(f, FExpr::Int(N))
}

fn recurse_on(n_minus_1: FExpr) -> FExpr {
    FExpr::app(FExpr::var("f"), n_minus_1)
}

fn n_minus_1() -> FExpr {
    FExpr::BinOp(BinOp::Sub, Rc::new(FExpr::var("n")), Rc::new(FExpr::Int(1)))
}

/// Runs `work` on a thread whose stack is deliberately smaller than
/// the 8 MiB main-thread default, so passing here proves the
/// evaluation cannot be leaning on host-stack recursion. (`FExpr` is
/// `Rc`-based and not `Send`, so the program is built inside the
/// thread.)
fn on_small_stack(work: impl FnOnce() -> String + Send + 'static) -> String {
    std::thread::Builder::new()
        .stack_size(1 << 20)
        .spawn(work)
        .expect("spawn")
        .join()
        .expect("no stack overflow")
}

#[test]
fn non_tail_fold_of_100k_steps_runs_in_constant_host_stack() {
    // sum n = n + sum (n - 1): the addition happens *after* the
    // recursive call returns, so the VM's frame stack (heap frames on
    // the stack ISA, register-file windows on the register ISA)
    // genuinely grows 100k deep — only the host stack stays flat.
    for isa in [Isa::Register, Isa::Stack] {
        let out = on_small_stack(move || {
            let step = FExpr::BinOp(
                BinOp::Add,
                Rc::new(FExpr::var("n")),
                Rc::new(recurse_on(n_minus_1())),
            );
            let e = countdown(step, FExpr::Int(0));
            compile_and_run_isa(&e, isa)
                .map(|v| v.to_string())
                .expect("vm")
        });
        assert_eq!(out, (N * (N + 1) / 2).to_string(), "{isa:?}");
    }
}

#[test]
fn tail_loop_of_100k_steps_runs_in_constant_host_stack() {
    // f n = f (n - 1): compiled to a tail call, so even the frame
    // stack stays at depth 1 the whole way down, on both ISAs.
    for isa in [Isa::Register, Isa::Stack] {
        let out = on_small_stack(move || {
            let e = countdown(recurse_on(n_minus_1()), FExpr::Int(42));
            compile_and_run_isa(&e, isa)
                .map(|v| v.to_string())
                .expect("vm")
        });
        assert_eq!(out, "42", "{isa:?}");
    }
}
