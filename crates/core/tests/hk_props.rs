//! Property tests for constructor matching and substitution
//! (the type-constructor-polymorphism extension).

use proptest::prelude::*;

use implicit_core::alpha;
use implicit_core::subst::TySubst;
use implicit_core::symbol::Symbol;
use implicit_core::syntax::{TyCon, Type};
use implicit_core::unify;

fn hk_head() -> impl Strategy<Value = Symbol> {
    prop_oneof![Just("hkp_f"), Just("hkp_g")].prop_map(Symbol::intern)
}

fn elem_var() -> impl Strategy<Value = Symbol> {
    prop_oneof![Just("hkp_a"), Just("hkp_b")].prop_map(Symbol::intern)
}

/// Patterns mixing applied heads with plain structure.
fn arb_hk_pattern() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Int),
        Just(Type::Bool),
        elem_var().prop_map(Type::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (hk_head(), inner.clone()).prop_map(|(f, a)| Type::var_app(f, vec![a])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::prod(a, b)),
            inner.prop_map(Type::list),
        ]
    })
}

/// Ground constructor images for the two heads.
fn arb_ctor() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Ctor(TyCon::List)),
        Just(Type::Ctor(TyCon::Named(Symbol::intern("HkpBox")))),
    ]
}

fn arb_ground() -> impl Strategy<Value = Type> {
    prop_oneof![Just(Type::Int), Just(Type::Bool), Just(Type::Str)].prop_recursive(
        2,
        8,
        2,
        |inner| {
            prop_oneof![
                inner.clone().prop_map(Type::list),
                (inner.clone(), inner).prop_map(|(a, b)| Type::prod(a, b)),
            ]
        },
    )
}

proptest! {
    /// Matching a pattern against its own instance always succeeds
    /// and reproduces the instance — including through constructor
    /// heads.
    #[test]
    fn hk_match_solution_reproduces_target(
        pattern in arb_hk_pattern(),
        cf in arb_ctor(),
        cg in arb_ctor(),
        ta in arb_ground(),
        tb in arb_ground(),
    ) {
        let mut theta = TySubst::new();
        theta.bind(Symbol::intern("hkp_f"), cf);
        theta.bind(Symbol::intern("hkp_g"), cg);
        theta.bind(Symbol::intern("hkp_a"), ta);
        theta.bind(Symbol::intern("hkp_b"), tb);
        let target = theta.apply_type(&pattern);
        let flex = [
            Symbol::intern("hkp_f"),
            Symbol::intern("hkp_g"),
            Symbol::intern("hkp_a"),
            Symbol::intern("hkp_b"),
        ];
        let found = unify::match_type(&pattern, &target, &flex);
        prop_assert!(found.is_some(), "own instance must match: {pattern} vs {target}");
        prop_assert!(
            alpha::alpha_eq_type(&found.unwrap().apply_type(&pattern), &target),
            "solution must reproduce the target"
        );
    }

    /// Substituting constructor images commutes with composition.
    #[test]
    fn hk_subst_composition(pattern in arb_hk_pattern(), cf in arb_ctor(), ta in arb_ground()) {
        let s1 = TySubst::single(Symbol::intern("hkp_f"), cf);
        let s2 = TySubst::single(Symbol::intern("hkp_a"), ta);
        let seq = s1.apply_type(&s2.apply_type(&pattern));
        let comp = s1.compose(&s2).apply_type(&pattern);
        prop_assert_eq!(seq, comp);
    }

    /// mgu of a pattern with its instance exists and unifies.
    #[test]
    fn hk_mgu_finds_instances(pattern in arb_hk_pattern(), cf in arb_ctor(), ta in arb_ground()) {
        let mut theta = TySubst::new();
        theta.bind(Symbol::intern("hkp_f"), cf.clone());
        theta.bind(Symbol::intern("hkp_g"), cf);
        theta.bind(Symbol::intern("hkp_a"), ta.clone());
        theta.bind(Symbol::intern("hkp_b"), ta);
        let inst = theta.apply_type(&pattern);
        if let Some(sigma) = unify::mgu(&pattern, &inst) {
            prop_assert!(alpha::alpha_eq_type(
                &sigma.apply_type(&pattern),
                &sigma.apply_type(&inst)
            ));
        } else {
            // mgu may legitimately fail only when the instance
            // repeats a head inconsistently — impossible here, since
            // we substituted consistently.
            prop_assert!(false, "instance must unify: {pattern} vs {inst}");
        }
    }
}
