//! Property-based tests over the core data structures and
//! judgments: substitution, matching, unification, α-equivalence,
//! canonicalization, printing/parsing, and resolution stability.

use proptest::prelude::*;

use implicit_core::alpha;
use implicit_core::env::ImplicitEnv;
use implicit_core::parse;
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::subst::{freshen_rule, TySubst};
use implicit_core::symbol::Symbol;
use implicit_core::syntax::{RuleType, Type};
use implicit_core::unify;

// ---------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------

fn var_name() -> impl Strategy<Value = Symbol> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")].prop_map(Symbol::intern)
}

/// Arbitrary simple types over a few base types and variables.
fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Int),
        Just(Type::Bool),
        Just(Type::Str),
        Just(Type::Unit),
        var_name().prop_map(Type::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::prod(a, b)),
            inner.prop_map(Type::list),
        ]
    })
}

/// Arbitrary ground (variable-free) types.
fn arb_ground_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Int),
        Just(Type::Bool),
        Just(Type::Str),
        Just(Type::Unit)
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::prod(a, b)),
            inner.prop_map(Type::list),
        ]
    })
}

/// Arbitrary rule types: quantify over the variables that occur.
fn arb_rule_type() -> impl Strategy<Value = RuleType> {
    (
        arb_type(),
        proptest::collection::vec(arb_type(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(head, ctx, quantify)| {
            let vars: Vec<Symbol> = if quantify {
                head.ftv().into_iter().collect()
            } else {
                Vec::new()
            };
            RuleType::new(vars, ctx.into_iter().map(|t| t.promote()).collect(), head)
        })
}

/// Arbitrary ground substitutions over the fixed variable pool.
fn arb_subst() -> impl Strategy<Value = TySubst> {
    proptest::collection::vec((var_name(), arb_ground_type()), 0..4).prop_map(|pairs| {
        let mut s = TySubst::new();
        for (v, t) in pairs {
            s.bind(v, t);
        }
        s
    })
}

// ---------------------------------------------------------------
// Substitution
// ---------------------------------------------------------------

proptest! {
    #[test]
    fn subst_composition_agrees_with_sequencing(t in arb_type(), s1 in arb_subst(), s2 in arb_subst()) {
        let composed = s1.compose(&s2);
        prop_assert_eq!(composed.apply_type(&t), s1.apply_type(&s2.apply_type(&t)));
    }

    #[test]
    fn empty_subst_is_identity(t in arb_type()) {
        prop_assert_eq!(TySubst::new().apply_type(&t), t);
    }

    #[test]
    fn ground_substitution_grounds_pool_vars(t in arb_type()) {
        let mut s = TySubst::new();
        for name in ["a", "b", "c", "d"] {
            s.bind(Symbol::intern(name), Type::Int);
        }
        let out = s.apply_type(&t);
        prop_assert!(out.ftv().is_empty(), "ftv left: {:?}", out.ftv());
    }

    #[test]
    fn rule_substitution_preserves_unambiguity_of_ground_rules(r in arb_rule_type(), s in arb_subst()) {
        // Substitution cannot *introduce* quantified variables, so an
        // unambiguous rule stays unambiguous.
        if r.is_unambiguous() {
            prop_assert!(s.apply_rule(&r).is_unambiguous());
        }
    }
}

// ---------------------------------------------------------------
// Matching and unification
// ---------------------------------------------------------------

proptest! {
    #[test]
    fn match_solution_reproduces_target(pattern in arb_type(), s in arb_subst()) {
        // θ(p) matches against p for the flexible vars of p.
        let target = s.apply_type(&pattern);
        let vars: Vec<Symbol> = pattern.ftv().into_iter().collect();
        let theta = unify::match_type(&pattern, &target, &vars);
        prop_assert!(theta.is_some(), "own instance must match");
        prop_assert_eq!(theta.unwrap().apply_type(&pattern), target);
    }

    #[test]
    fn match_respects_rigidity(t in arb_ground_type()) {
        // Ground targets never match distinct ground patterns.
        let p = Type::prod(t.clone(), Type::Int);
        prop_assert!(unify::match_type(&p, &t, &[]).is_none() || p == t);
    }

    #[test]
    fn mgu_is_a_unifier(a in arb_type(), b in arb_type()) {
        if let Some(theta) = unify::mgu(&a, &b) {
            prop_assert!(
                alpha::alpha_eq_type(&theta.apply_type(&a), &theta.apply_type(&b)),
                "mgu must unify: {} vs {}",
                theta.apply_type(&a),
                theta.apply_type(&b)
            );
        }
    }

    #[test]
    fn mgu_finds_instances(t in arb_type(), s in arb_subst()) {
        // A type always unifies with its own instances.
        let inst = s.apply_type(&t);
        // Rename apart: instance variables could clash. Use ground
        // substitutions only (arb_subst is ground), so no clash.
        prop_assert!(unify::mgu(&t, &inst).is_some());
    }
}

// ---------------------------------------------------------------
// α-equivalence and canonicalization
// ---------------------------------------------------------------

proptest! {
    #[test]
    fn freshening_preserves_alpha_class(r in arb_rule_type()) {
        let (f, _) = freshen_rule(&r);
        prop_assert!(alpha::alpha_eq(&r, &f));
    }

    #[test]
    fn canonical_context_is_idempotent(r in arb_rule_type()) {
        let rebuilt = RuleType::new(r.vars().to_vec(), r.context().to_vec(), r.head().clone());
        prop_assert_eq!(r.context(), rebuilt.context());
    }

    #[test]
    fn promotion_roundtrips(t in arb_type()) {
        prop_assert_eq!(t.promote().to_type(), t);
    }

    #[test]
    fn alpha_keys_are_stable_under_freshening(r in arb_rule_type()) {
        let (f, _) = freshen_rule(&r);
        prop_assert_eq!(alpha::canonical_key(&r), alpha::canonical_key(&f));
    }
}

// ---------------------------------------------------------------
// Printing and parsing
// ---------------------------------------------------------------

proptest! {
    #[test]
    fn type_printing_roundtrips(t in arb_type()) {
        let printed = t.to_string();
        let reparsed = parse::parse_type(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(reparsed, t);
    }

    #[test]
    fn rule_type_printing_roundtrips(r in arb_rule_type()) {
        let printed = r.to_string();
        let reparsed = parse::parse_rule_type(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert!(alpha::alpha_eq(&reparsed, &r), "roundtrip changed {printed}");
    }
}

// ---------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------

proptest! {
    #[test]
    fn resolution_is_deterministic(seed in 0u64..500) {
        // Same environment and query → identical derivations.
        let n = (seed % 8) as usize;
        let (env, q) = build_chain(n);
        let p = ResolutionPolicy::paper();
        let r1 = resolve(&env, &q, &p).unwrap();
        let r2 = resolve(&env, &q, &p).unwrap();
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn ground_resolution_is_stable_under_substitution(t in arb_ground_type(), s in arb_subst()) {
        // Ground environments: resolvability is invariant under
        // substitution (the type-safety condition, trivially).
        let env = ImplicitEnv::with_frame(vec![t.clone().promote()]);
        prop_assert!(implicit_core::coherence::stable_under(
            &env,
            &t.promote(),
            &s,
            &ResolutionPolicy::paper()
        ));
    }

    #[test]
    fn successful_resolutions_always_verify(n in 0usize..8, assumed in 0usize..4) {
        let assumed = assumed.min(n);
        let (env, q) = build_partial(n.max(1), assumed);
        if let Ok(res) = resolve(&env, &q, &ResolutionPolicy::paper()) {
            prop_assert!(implicit_core::logic::verify_derivation(&env, &res));
        }
    }
}

fn build_chain(n: usize) -> (ImplicitEnv, RuleType) {
    fn ty(k: usize) -> Type {
        let mut t = Type::Int;
        for _ in 0..k {
            t = Type::list(t);
        }
        t
    }
    let mut frame = vec![Type::Int.promote()];
    for k in 1..=n {
        frame.push(RuleType::mono(vec![ty(k - 1).promote()], ty(k)));
    }
    (ImplicitEnv::with_frame(frame), ty(n).promote())
}

fn build_partial(n: usize, assumed: usize) -> (ImplicitEnv, RuleType) {
    fn ty(k: usize) -> Type {
        let mut t = Type::Bool;
        for _ in 0..k {
            t = Type::list(t);
        }
        t
    }
    let premises: Vec<RuleType> = (0..n).map(|k| ty(k + 1).promote()).collect();
    let head = Type::prod(Type::Int, Type::Int);
    let rule = RuleType::mono(premises.clone(), head.clone());
    let mut frame: Vec<RuleType> = premises[assumed..].to_vec();
    frame.push(rule);
    let query = RuleType::mono(premises[..assumed].to_vec(), head);
    (ImplicitEnv::with_frame(frame), query)
}
