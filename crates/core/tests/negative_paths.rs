//! Negative-path coverage for the static side conditions: each test
//! asserts the *specific* error variant and its payload, not just
//! `is_err()` — a regression that changes which condition fires (or
//! what it reports) must fail loudly.

use implicit_core::coherence::{
    exists_most_specific, query_stability, unique_instances, CoherenceError,
};
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{RuleType, Type};
use implicit_core::termination::{check_env, check_rule, TerminationViolation};
use implicit_core::{ImplicitEnv, Symbol};

fn tv(name: &str) -> Symbol {
    Symbol::intern(name)
}

// ---------------------------------------------------------------
// Termination (Appendix A)
// ---------------------------------------------------------------

#[test]
fn premise_as_large_as_head_reports_sizes() {
    // {Int × Int} ⇒ Int: premise head size 3 vs head size 1.
    let rule = RuleType::mono(vec![Type::prod(Type::Int, Type::Int).promote()], Type::Int);
    match check_rule(&rule) {
        Err(TerminationViolation::PremiseNotSmaller {
            rule: r,
            premise,
            premise_size,
            head_size,
        }) => {
            assert_eq!(r, rule);
            assert_eq!(premise, Type::prod(Type::Int, Type::Int).promote());
            assert_eq!(premise_size, 3);
            assert_eq!(head_size, 1);
        }
        other => panic!("expected PremiseNotSmaller, got {other:?}"),
    }
}

#[test]
fn equal_sized_premise_is_not_strictly_smaller() {
    // {String} ⇒ Int: sizes are equal (1 vs 1) — "strictly smaller"
    // must reject ties.
    let rule = RuleType::mono(vec![Type::Str.promote()], Type::Int);
    match check_rule(&rule) {
        Err(TerminationViolation::PremiseNotSmaller {
            premise_size,
            head_size,
            ..
        }) => {
            assert_eq!((premise_size, head_size), (1, 1));
        }
        other => panic!("expected PremiseNotSmaller, got {other:?}"),
    }
}

#[test]
fn growing_variable_is_named() {
    // ∀a. {a × a} ⇒ (a × Int) × Int: the premise head (size 3) is
    // strictly smaller than the rule head (size 5), but `a` occurs
    // twice in the premise and once in the head — condition 2 fires
    // and must name the variable.
    let a = tv("neg_a");
    let rule = RuleType::new(
        vec![a],
        vec![Type::prod(Type::var(a), Type::var(a)).promote()],
        Type::prod(Type::prod(Type::var(a), Type::Int), Type::Int),
    );
    match check_rule(&rule) {
        Err(TerminationViolation::VariableGrows {
            rule: r,
            premise,
            var,
        }) => {
            assert_eq!(r, rule);
            assert_eq!(premise, Type::prod(Type::var(a), Type::var(a)).promote());
            assert_eq!(var, a);
        }
        other => panic!("expected VariableGrows, got {other:?}"),
    }
}

#[test]
fn env_check_pinpoints_the_offending_rule() {
    // A well-behaved inner frame must not mask a violating outer one.
    let bad = RuleType::mono(vec![Type::Str.promote()], Type::Int);
    let mut env = ImplicitEnv::new();
    env.push(vec![bad.clone()]);
    env.push(vec![Type::Bool.promote()]); // innermost, fine
    match check_env(&env) {
        Err(TerminationViolation::PremiseNotSmaller { rule, .. }) => assert_eq!(rule, bad),
        other => panic!("expected PremiseNotSmaller, got {other:?}"),
    }
}

// ---------------------------------------------------------------
// Coherence (§6)
// ---------------------------------------------------------------

#[test]
fn overlapping_instances_carry_a_witness() {
    // ∀a. a → Int and ∀a. Int → a unify at Int → Int.
    let a = tv("neg_b");
    let left = RuleType::new(vec![a], vec![], Type::arrow(Type::var(a), Type::Int));
    let right = RuleType::new(vec![a], vec![], Type::arrow(Type::Int, Type::var(a)));
    match unique_instances(&[left.clone(), right.clone()]) {
        Err(CoherenceError::OverlappingInstances {
            left: l,
            right: r,
            witness,
        }) => {
            assert_eq!(l, left);
            assert_eq!(r, right);
            assert_eq!(witness, Type::arrow(Type::Int, Type::Int));
        }
        other => panic!("expected OverlappingInstances, got {other:?}"),
    }
}

#[test]
fn missing_meet_reports_the_most_general_common_instance() {
    // ∀a. a × Int and ∀a. Int × a overlap at Int × Int, and no rule
    // in the set matches that meet exactly.
    let a = tv("neg_c");
    let left = RuleType::new(vec![a], vec![], Type::prod(Type::var(a), Type::Int));
    let right = RuleType::new(vec![a], vec![], Type::prod(Type::Int, Type::var(a)));
    match exists_most_specific(&[left.clone(), right.clone()]) {
        Err(CoherenceError::NoMostSpecific {
            left: l,
            right: r,
            meet,
        }) => {
            assert_eq!(l, left);
            assert_eq!(r, right);
            assert_eq!(meet, Type::prod(Type::Int, Type::Int));
        }
        other => panic!("expected NoMostSpecific, got {other:?}"),
    }
    // Adding the meet as its own rule repairs the set.
    assert_eq!(
        exists_most_specific(&[left, right, Type::prod(Type::Int, Type::Int).promote()]),
        Ok(())
    );
}

#[test]
fn unstable_query_names_winner_and_rival() {
    // The query head `a × Int` (free `a`) statically resolves to the
    // outer ∀b. b × Int, but the *nearer* ground rule Int × Int could
    // steal the match once `a` is instantiated to Int.
    let a = tv("neg_d");
    let b = tv("neg_e");
    let winner = RuleType::new(vec![b], vec![], Type::prod(Type::var(b), Type::Int));
    let rival = Type::prod(Type::Int, Type::Int).promote();
    let mut env = ImplicitEnv::new();
    env.push(vec![winner.clone()]); // outer
    env.push(vec![rival.clone()]); // inner (nearer)
    let query = Type::prod(Type::var(a), Type::Int).promote();
    match query_stability(&env, &query, &ResolutionPolicy::paper()) {
        Err(CoherenceError::UnstableQuery {
            query: q,
            winner: w,
            rival: r,
        }) => {
            assert_eq!(q, query);
            assert_eq!(w, winner);
            assert_eq!(r, rival);
        }
        other => panic!("expected UnstableQuery, got {other:?}"),
    }
    // A ground query in the same environment is stable.
    let ground = Type::prod(Type::Bool, Type::Int).promote();
    assert_eq!(
        query_stability(&env, &ground, &ResolutionPolicy::paper()),
        Ok(())
    );
}
