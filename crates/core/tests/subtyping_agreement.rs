//! The fifth-engine agreement property: the intersection-subtyping
//! resolver ([`implicit_core::subtyping`]) must agree with the logic
//! resolver at every query site of 1000 generated programs, under all
//! four resolution policies — same successes (identical evidence
//! after the `MpStep` → `Resolution` conversion), same failures
//! (equal error values).

use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::subtyping::{cross_check, subtype_resolve, walk_query_sites};

/// All four policy variants, at a depth ample enough that the logic
/// resolver's fuel-conserving derivation cache cannot make the two
/// engines diverge on fuel accounting.
fn policies() -> [(&'static str, ResolutionPolicy); 4] {
    let depth = 4096;
    [
        ("paper", ResolutionPolicy::paper().with_max_depth(depth)),
        (
            "paper-nocache",
            ResolutionPolicy::paper()
                .without_cache()
                .with_max_depth(depth),
        ),
        (
            "most-specific",
            ResolutionPolicy::paper()
                .with_most_specific()
                .with_max_depth(depth),
        ),
        (
            "env-extension",
            ResolutionPolicy::paper()
                .with_env_extension()
                .with_max_depth(depth),
        ),
    ]
}

#[test]
fn subtyping_engine_agrees_on_1000_generated_programs() {
    let decls = genprog::data_prelude();
    let mut r = genprog::rng(0x5B7E);
    let gen = genprog::GenConfig::default();
    let mut sites = 0u64;
    for i in 0..1000 {
        let p = genprog::gen_program_with(&mut r, &gen, &decls);
        walk_query_sites(&p.expr, &mut |env, query| {
            sites += 1;
            for (pname, policy) in policies() {
                if let Err(detail) = cross_check(env, query, &policy) {
                    panic!(
                        "program {i} [{pname}] query `{query}`: {detail}\n{}",
                        p.expr
                    );
                }
            }
        });
    }
    // The generator emits queries liberally; a silent walker would
    // make this test vacuous.
    assert!(sites > 1000, "only {sites} query sites in 1000 programs");
}

#[test]
fn subtyping_engine_agrees_on_synthetic_workload_families() {
    // The same four-policy agreement over the seeded env-level
    // workload families (chains, wide frames, deep stacks, poly
    // decoys, partial resolution, higher-kinded constructors).
    for seed in 0..200u64 {
        let n = 1 + (seed / 7) as usize % 24;
        let (family, env, query) = match seed % 7 {
            0 => ("chain", genprog::chain_env(n).0, genprog::chain_env(n).1),
            1 => {
                let (e, q) = genprog::wide_env(n * 4, (seed % 5) as f64 / 4.0);
                ("wide", e, q)
            }
            2 => {
                let (e, q) = genprog::deep_stack_env(n * 2);
                ("deep_stack", e, q)
            }
            3 => {
                let (e, q) = genprog::poly_env(n);
                ("poly", e, q)
            }
            4 => {
                let (e, q) = genprog::poly_wide_env(n);
                ("poly_wide", e, q)
            }
            5 => {
                let (e, q) = genprog::partial_env(n.min(12), n.min(12) / 2);
                ("partial", e, q)
            }
            _ => {
                let (e, q) = genprog::hk_nested_env(n.min(12));
                ("hk_nested", e, q)
            }
        };
        for (pname, policy) in policies() {
            if let Err(detail) = cross_check(&env, &query, &policy) {
                panic!("seed {seed} [{family}/{pname}]: {detail}");
            }
        }
    }
}

#[test]
fn evidence_shape_matches_exactly_not_just_success() {
    // Spot-check that agreement is structural: the subtyping proof
    // converts into the logic resolver's very derivation — same rule
    // references, same instantiations, same premise tree.
    let policy = ResolutionPolicy::paper().with_max_depth(4096);
    for n in [1usize, 4, 9] {
        let (env, q) = genprog::partial_env(n + 2, n);
        let logic = resolve(&env, &q, &policy).expect("workload resolves");
        let sub = subtype_resolve(&env, &q, &policy).expect("subtyping resolves");
        let converted = sub.to_resolution();
        assert_eq!(logic, converted, "partial_env({}, {n})", n + 2);
        assert_eq!(logic.steps(), sub.steps());
    }
}
