//! Core-level tests for the type-constructor-polymorphism extension:
//! α-equivalence, substitution, parsing/printing, resolution and the
//! kind checks, all over applied type variables.

use implicit_core::alpha;
use implicit_core::parse::{parse_rule_type, parse_type};
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::subst::TySubst;
use implicit_core::symbol::Symbol;
use implicit_core::syntax::{RuleType, TyCon, Type};
use implicit_core::typeck::infer_binder_kinds;
use implicit_core::ImplicitEnv;

fn v(s: &str) -> Symbol {
    Symbol::intern(s)
}

#[test]
fn alpha_equivalence_covers_constructor_binders() {
    // ∀f. {} ⇒ f Int  ≡  ∀g. {} ⇒ g Int
    let rf = RuleType::new(vec![v("f")], vec![], Type::var_app(v("f"), vec![Type::Int]));
    let rg = RuleType::new(vec![v("g")], vec![], Type::var_app(v("g"), vec![Type::Int]));
    assert!(alpha::alpha_eq(&rf, &rg));
    // …but not ≡ ∀h. {} ⇒ h Bool.
    let rh = RuleType::new(
        vec![v("h")],
        vec![],
        Type::var_app(v("h"), vec![Type::Bool]),
    );
    assert!(!alpha::alpha_eq(&rf, &rh));
    // Free constructor heads keep their identity.
    let free1 = RuleType::simple(Type::var_app(v("p"), vec![Type::Int]));
    let free2 = RuleType::simple(Type::var_app(v("q"), vec![Type::Int]));
    assert!(!alpha::alpha_eq(&free1, &free2));
}

#[test]
fn substitution_instantiates_constructor_heads() {
    let f = v("sub_f");
    let t = Type::var_app(f, vec![Type::var_app(f, vec![Type::Int])]);
    // f ↦ List: f (f Int) becomes [[Int]].
    let s = TySubst::single(f, Type::Ctor(TyCon::List));
    assert_eq!(s.apply_type(&t), Type::list(Type::list(Type::Int)));
    // f ↦ g: head renaming.
    let s2 = TySubst::single(f, Type::Var(v("sub_g")));
    assert_eq!(
        s2.apply_type(&t),
        Type::var_app(v("sub_g"), vec![Type::var_app(v("sub_g"), vec![Type::Int])])
    );
    // f ↦ Named interface: becomes a Con application.
    let s3 = TySubst::single(f, Type::Ctor(TyCon::Named(v("BoxS"))));
    assert_eq!(
        s3.apply_type(&t),
        Type::Con(v("BoxS"), vec![Type::Con(v("BoxS"), vec![Type::Int])])
    );
}

#[test]
fn substitution_respects_constructor_binders() {
    // [f ↦ List](∀f. {} ⇒ f Int) leaves the bound f alone.
    let f = v("sub_h");
    let rho = RuleType::new(vec![f], vec![], Type::var_app(f, vec![Type::Int]));
    let s = TySubst::single(f, Type::Ctor(TyCon::List));
    assert!(alpha::alpha_eq(&s.apply_rule(&rho), &rho));
}

#[test]
fn parsing_and_printing_roundtrip_applied_variables() {
    let sources = [
        "f a -> String",
        "f (f a)",
        "forall f a. {forall b. {b -> String} => f b -> String, a -> String} => f (f a) -> String",
        "m Int Bool",
    ];
    for src in sources {
        let r = parse_rule_type(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = r.to_string();
        let reparsed =
            parse_rule_type(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert!(alpha::alpha_eq(&r, &reparsed), "roundtrip changed `{src}`");
    }
    // `List` bare is a constructor reference; applied it is the list
    // type.
    assert_eq!(parse_type("List").unwrap(), Type::Ctor(TyCon::List));
    assert_eq!(parse_type("List Int").unwrap(), Type::list(Type::Int));
}

#[test]
fn binder_kind_inference() {
    let rho = parse_rule_type(
        "forall f a. {forall b. {b -> String} => f b -> String, a -> String} => f (f a) -> String",
    )
    .unwrap();
    let decls = implicit_core::syntax::Declarations::new();
    let kinds = infer_binder_kinds(&decls, &rho).unwrap();
    assert_eq!(kinds.get(&v("f")), Some(&1));
    assert_eq!(kinds.get(&v("a")), Some(&0));
    // Conflicting use is an error.
    let bad = parse_rule_type("forall f. {f Int} => f * Int").unwrap();
    assert!(infer_binder_kinds(&decls, &bad).is_err());
}

#[test]
fn deep_constructor_nesting_resolves_linearly() {
    // {∀b.{b→String} ⇒ f b→String, a→String} ⊢r fⁿ a → String takes
    // n+1 steps.
    let container = parse_rule_type("forall b. {b -> String} => f b -> String").unwrap();
    let elem = parse_rule_type("a -> String").unwrap();
    let env = ImplicitEnv::with_frame(vec![container, elem]);
    for n in [1usize, 3, 8, 20] {
        let mut t = Type::var(v("a"));
        for _ in 0..n {
            t = Type::var_app(v("f"), vec![t]);
        }
        let query = Type::arrow(t, Type::Str).promote();
        let res = resolve(&env, &query, &ResolutionPolicy::paper().with_max_depth(256))
            .unwrap_or_else(|e| panic!("depth {n}: {e}"));
        assert_eq!(res.steps(), n + 1, "depth {n}");
        assert!(implicit_core::logic::verify_derivation(&env, &res));
    }
}

#[test]
fn matching_keeps_head_consistency() {
    // f a × f b against [Int] × Box Int must fail (f cannot be both
    // List and Box).
    let f = v("mix_f");
    let pattern = Type::prod(
        Type::var_app(f, vec![Type::Int]),
        Type::var_app(f, vec![Type::Bool]),
    );
    let target_ok = Type::prod(Type::list(Type::Int), Type::list(Type::Bool));
    let target_bad = Type::prod(
        Type::list(Type::Int),
        Type::Con(v("BoxM"), vec![Type::Bool]),
    );
    assert!(implicit_core::unify::match_type(&pattern, &target_ok, &[f]).is_some());
    assert!(implicit_core::unify::match_type(&pattern, &target_bad, &[f]).is_none());
}

#[test]
fn mgu_unifies_constructor_applications() {
    // f Int ~ [a]  ⇒  f ↦ List, a ↦ Int.
    let f = v("mgu_f");
    let a = v("mgu_a");
    let l = Type::var_app(f, vec![Type::Int]);
    let r = Type::list(Type::Var(a));
    let theta = implicit_core::unify::mgu(&l, &r).unwrap();
    assert_eq!(theta.apply_type(&l), Type::list(Type::Int));
    assert_eq!(theta.apply_type(&r), Type::list(Type::Int));
}

#[test]
fn termination_checker_handles_applied_heads() {
    // ∀b. {b → String} ⇒ f b → String terminates (premise smaller,
    // occurrences fine).
    let rho = parse_rule_type("forall b. {b -> String} => f b -> String").unwrap();
    assert!(implicit_core::termination::check_rule(&rho).is_ok());
    // ∀b. {f b → String} ⇒ b → String does not (premise larger).
    let bad = parse_rule_type("forall b. {f b -> String} => b -> String").unwrap();
    assert!(implicit_core::termination::check_rule(&bad).is_err());
}
