//! Trace-conformance suite: pins the exact event streams the
//! resolution engine emits for the paper's §3.2 examples, and the
//! invariants the rest of the observability layer builds on — cache
//! transparency (warm streams equal cold streams modulo cache
//! markers) and the inertness of [`NullSink`].

use implicit_core::env::ImplicitEnv;
use implicit_core::resolve::{resolve, resolve_with, ResolutionPolicy};
use implicit_core::symbol::Symbol;
use implicit_core::syntax::{RuleType, Type};
use implicit_core::trace::{chrome_trace_json, ChromeSink, CollectSink, NullSink, TraceEvent};

fn v(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn tv(s: &str) -> Type {
    Type::var(v(s))
}

/// ∀a. {a} ⇒ a × a — the paper's running pair rule.
fn pair_rule() -> RuleType {
    RuleType::new(
        vec![v("a")],
        vec![tv("a").promote()],
        Type::prod(tv("a"), tv("a")),
    )
}

fn p() -> ResolutionPolicy {
    ResolutionPolicy::paper()
}

/// Runs one query against a fresh copy of the environment and returns
/// the collected stream.
fn trace_of(env: &ImplicitEnv, query: &RuleType, policy: &ResolutionPolicy) -> Vec<TraceEvent> {
    let mut sink = CollectSink::new();
    resolve_with(env, query, policy, &mut sink).expect("query resolves");
    sink.events
}

#[test]
fn example_1_recursive_resolution_stream() {
    // §3.2 Example 1: Int; ∀a.{a}⇒a×a ⊢r Int×Int. The engine enters
    // the product query, misses the cache, admits the pair rule from
    // the innermost frame, recursively resolves the Int premise from
    // the outer frame, and closes both queries.
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]);
    env.push(vec![pair_rule()]);
    let query = Type::prod(Type::Int, Type::Int).promote();

    let q = query.to_string();
    let int = Type::Int.promote().to_string();
    assert_eq!(
        trace_of(&env, &query, &p()),
        vec![
            TraceEvent::QueryEnter {
                query: q.clone(),
                depth: 0,
                measure: query.head().size(),
            },
            TraceEvent::CacheMiss { query: q.clone() },
            TraceEvent::CandidateAdmitted {
                frame: 0,
                index: 0,
                rule: pair_rule().to_string(),
            },
            TraceEvent::QueryEnter {
                query: int.clone(),
                depth: 1,
                measure: 1,
            },
            TraceEvent::CacheMiss { query: int.clone() },
            TraceEvent::CandidateAdmitted {
                frame: 1,
                index: 0,
                rule: int.clone(),
            },
            TraceEvent::QueryResolved {
                query: int,
                steps: 1,
            },
            TraceEvent::QueryResolved { query: q, steps: 2 },
        ]
    );
}

#[test]
fn example_2_rule_query_assumes_its_context() {
    // §3.2 Example 2: ?({Int} ⇒ Int × Int) matches the pair rule
    // wholesale — the Int premise is discharged from the query's own
    // context (partial resolution), not recursively resolved.
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]);
    env.push(vec![pair_rule()]);
    let query = RuleType::mono(vec![Type::Int.promote()], Type::prod(Type::Int, Type::Int));

    let q = query.to_string();
    assert_eq!(
        trace_of(&env, &query, &p()),
        vec![
            TraceEvent::QueryEnter {
                query: q.clone(),
                depth: 0,
                measure: query.head().size(),
            },
            TraceEvent::CacheMiss { query: q.clone() },
            TraceEvent::CandidateAdmitted {
                frame: 0,
                index: 0,
                rule: pair_rule().to_string(),
            },
            TraceEvent::PremiseAssumed {
                index: 0,
                rho: Type::Int.promote().to_string(),
            },
            TraceEvent::QueryResolved { query: q, steps: 1 },
        ]
    );
}

#[test]
fn example_3_partial_resolution_mixes_derived_and_assumed() {
    // §3.2 Example 3: Bool; ∀a.{Bool,a}⇒a×a ⊢r {Int} ⇒ Int×Int —
    // the Bool premise resolves against the outer frame while Int
    // stays assumed from the query's context. The rule's context is
    // stored as {a, Bool}, so the assumed premise lands first.
    let rule = RuleType::new(
        vec![v("a")],
        vec![Type::Bool.promote(), tv("a").promote()],
        Type::prod(tv("a"), tv("a")),
    );
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Bool.promote()]);
    env.push(vec![rule.clone()]);
    let query = RuleType::mono(vec![Type::Int.promote()], Type::prod(Type::Int, Type::Int));

    let q = query.to_string();
    let boolean = Type::Bool.promote().to_string();
    assert_eq!(
        trace_of(&env, &query, &p()),
        vec![
            TraceEvent::QueryEnter {
                query: q.clone(),
                depth: 0,
                measure: query.head().size(),
            },
            TraceEvent::CacheMiss { query: q.clone() },
            TraceEvent::CandidateAdmitted {
                frame: 0,
                index: 0,
                rule: rule.to_string(),
            },
            TraceEvent::PremiseAssumed {
                index: 0,
                rho: Type::Int.promote().to_string(),
            },
            TraceEvent::QueryEnter {
                query: boolean.clone(),
                depth: 1,
                measure: 1,
            },
            TraceEvent::CacheMiss {
                query: boolean.clone(),
            },
            TraceEvent::CandidateAdmitted {
                frame: 1,
                index: 0,
                rule: boolean.clone(),
            },
            TraceEvent::QueryResolved {
                query: boolean,
                steps: 1,
            },
            TraceEvent::QueryResolved { query: q, steps: 2 },
        ]
    );
}

#[test]
fn failed_queries_emit_enter_then_failed() {
    // §3.2 "semantic resolution" counterexample: resolution commits
    // to the nearest Int rule (Bool⇒Int) and gets stuck on Bool.
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Str.promote()]);
    env.push(vec![RuleType::mono(vec![Type::Str.promote()], Type::Int)]);
    env.push(vec![RuleType::mono(vec![Type::Bool.promote()], Type::Int)]);
    let query = Type::Int.promote();

    let mut sink = CollectSink::new();
    resolve_with(&env, &query, &p(), &mut sink).expect_err("stuck on Bool");
    let names: Vec<&str> = sink.events.iter().map(TraceEvent::name).collect();
    assert_eq!(
        names,
        vec![
            "query_enter",        // Int
            "cache_miss",         // Int
            "candidate_admitted", // Bool ⇒ Int from the nearest frame
            "query_enter",        // Bool premise
            "cache_miss",         // Bool
            "query_failed",       // Bool has no rule
            "query_failed",       // Int propagates the failure
        ]
    );
    // Failures are never cached, so a retry replays the same stream.
    let mut again = CollectSink::new();
    resolve_with(&env, &query, &p(), &mut again).expect_err("still stuck");
    assert_eq!(sink.events, again.events);
}

#[test]
fn cache_hits_replay_the_cold_stream() {
    // Cache transparency: the warm stream equals the cold stream
    // modulo CacheHit/CacheMiss markers — a consumer that filters the
    // markers cannot tell whether the cache was on.
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]);
    env.push(vec![pair_rule()]);
    let query = Type::prod(Type::Int, Type::Int).promote();

    let mut cold = CollectSink::new();
    resolve_with(&env, &query, &p(), &mut cold).expect("cold run resolves");
    let mut warm = CollectSink::new();
    resolve_with(&env, &query, &p(), &mut warm).expect("warm run resolves");

    assert!(
        warm.events
            .iter()
            .any(|ev| matches!(ev, TraceEvent::CacheHit { .. })),
        "second resolution of the same query must hit the derivation cache"
    );
    assert_eq!(
        cold.without_cache_markers(),
        warm.without_cache_markers(),
        "cache must be observationally transparent in the trace"
    );
}

#[test]
fn null_sink_observes_nothing_and_changes_nothing() {
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]);
    env.push(vec![pair_rule()]);
    let query = Type::prod(Type::Int, Type::Int).promote();

    let via_plain = resolve(&env, &query, &p()).expect("resolves");
    let via_null = resolve_with(&env, &query, &p(), &mut NullSink).expect("resolves");
    assert_eq!(via_plain.steps(), via_null.steps());
    assert_eq!(via_plain.rule, via_null.rule);
    assert!(!implicit_core::trace::TraceSink::enabled(&NullSink));
}

#[test]
fn resolution_stream_exports_as_chrome_trace() {
    // End to end: resolve through a Chrome recorder and validate the
    // JSON shape — one instant event per resolution event, tagged
    // with the resolution category.
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]);
    env.push(vec![pair_rule()]);
    let query = Type::prod(Type::Int, Type::Int).promote();

    let mut chrome = ChromeSink::new();
    resolve_with(&env, &query, &p(), &mut chrome).expect("resolves");
    let rows = chrome.into_rows();
    assert_eq!(rows.len(), 8, "same cardinality as the CollectSink stream");
    let json = chrome_trace_json(&rows);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"query_enter\""));
    assert!(json.contains("\"cat\":\"resolution\""));
    assert!(json.contains("\"ph\":\"i\""));
    assert!(json.contains("\"steps\":2"));
}
