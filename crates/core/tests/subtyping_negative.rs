//! Negative-path pinning for the subtyping leg: on the existing
//! negative corpus (see `negative_paths.rs`), the intersection-
//! subtyping guards must report the *same*
//! [`TerminationViolation`]/[`CoherenceError`] payloads as the
//! source-level checks — same variant, same rules, same witnesses —
//! so a divergence report reads identically whichever engine raised
//! it.

// Same allowance the core crate makes: guard errors carry their full
// witnesses by design.
#![allow(clippy::result_large_err)]

use implicit_core::coherence::{
    exists_most_specific, query_stability, unique_instances, CoherenceError,
};
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::subtyping::{
    check_member, check_translation, member_meet, most_specific_members, stable_query,
    translate_env, translate_rule, unique_members, Intersection, Member,
};
use implicit_core::syntax::{RuleType, Type};
use implicit_core::termination::{check_env, check_rule, TerminationViolation};
use implicit_core::{ImplicitEnv, Symbol};

fn tv(name: &str) -> Symbol {
    Symbol::intern(name)
}

fn member(rho: &RuleType) -> Member {
    Member {
        itype: translate_rule(rho),
        source: rho.clone(),
    }
}

/// Both engines' verdicts on one rule, asserted equal and returned.
fn termination_verdicts(rho: &RuleType) -> Result<(), TerminationViolation> {
    let source = check_rule(rho);
    let translated = check_member(&member(rho));
    assert_eq!(source, translated, "engines disagree on {rho}");
    source
}

// ---------------------------------------------------------------
// Termination (Appendix A) — corpus cases from negative_paths.rs
// ---------------------------------------------------------------

#[test]
fn premise_as_large_as_head_reports_identical_sizes() {
    let rule = RuleType::mono(vec![Type::prod(Type::Int, Type::Int).promote()], Type::Int);
    match termination_verdicts(&rule) {
        Err(TerminationViolation::PremiseNotSmaller {
            rule: r,
            premise,
            premise_size,
            head_size,
        }) => {
            assert_eq!(r, rule);
            assert_eq!(premise, Type::prod(Type::Int, Type::Int).promote());
            assert_eq!((premise_size, head_size), (3, 1));
        }
        other => panic!("expected PremiseNotSmaller, got {other:?}"),
    }
}

#[test]
fn equal_sized_premise_rejected_identically() {
    let rule = RuleType::mono(vec![Type::Str.promote()], Type::Int);
    match termination_verdicts(&rule) {
        Err(TerminationViolation::PremiseNotSmaller {
            premise_size,
            head_size,
            ..
        }) => assert_eq!((premise_size, head_size), (1, 1)),
        other => panic!("expected PremiseNotSmaller, got {other:?}"),
    }
}

#[test]
fn growing_variable_named_identically() {
    let a = tv("subneg_a");
    let rule = RuleType::new(
        vec![a],
        vec![Type::prod(Type::var(a), Type::var(a)).promote()],
        Type::prod(Type::prod(Type::var(a), Type::Int), Type::Int),
    );
    match termination_verdicts(&rule) {
        Err(TerminationViolation::VariableGrows {
            rule: r,
            premise,
            var,
        }) => {
            assert_eq!(r, rule);
            assert_eq!(premise, Type::prod(Type::var(a), Type::var(a)).promote());
            assert_eq!(var, a);
        }
        other => panic!("expected VariableGrows, got {other:?}"),
    }
}

#[test]
fn translated_env_check_pinpoints_the_same_offending_rule() {
    let bad = RuleType::mono(vec![Type::Str.promote()], Type::Int);
    let mut env = ImplicitEnv::new();
    env.push(vec![bad.clone()]);
    env.push(vec![Type::Bool.promote()]); // innermost, fine
    let source = check_env(&env);
    let translated = check_translation(&translate_env(&env));
    assert_eq!(source, translated);
    match translated {
        Err(TerminationViolation::PremiseNotSmaller { rule, .. }) => assert_eq!(rule, bad),
        other => panic!("expected PremiseNotSmaller, got {other:?}"),
    }
}

// ---------------------------------------------------------------
// Coherence (§6) — corpus cases from negative_paths.rs
// ---------------------------------------------------------------

#[test]
fn overlapping_members_carry_the_same_witness() {
    let a = tv("subneg_b");
    let left = RuleType::new(vec![a], vec![], Type::arrow(Type::var(a), Type::Int));
    let right = RuleType::new(vec![a], vec![], Type::arrow(Type::Int, Type::var(a)));
    let rules = [left.clone(), right.clone()];
    let source = unique_instances(&rules);
    let translated = unique_members(&Intersection::from_context(&rules));
    assert_eq!(source, translated);
    match translated {
        Err(CoherenceError::OverlappingInstances {
            left: l,
            right: r,
            witness,
        }) => {
            assert_eq!(l, left);
            assert_eq!(r, right);
            assert_eq!(witness, Type::arrow(Type::Int, Type::Int));
        }
        other => panic!("expected OverlappingInstances, got {other:?}"),
    }
    // The member-level meet agrees with the witness, too.
    assert_eq!(
        member_meet(&member(&left), &member(&right)),
        Some(Type::arrow(Type::Int, Type::Int))
    );
}

#[test]
fn missing_meet_reports_the_same_most_general_common_instance() {
    let a = tv("subneg_c");
    let left = RuleType::new(vec![a], vec![], Type::prod(Type::var(a), Type::Int));
    let right = RuleType::new(vec![a], vec![], Type::prod(Type::Int, Type::var(a)));
    let rules = [left.clone(), right.clone()];
    let source = exists_most_specific(&rules);
    let translated = most_specific_members(&Intersection::from_context(&rules));
    assert_eq!(source, translated);
    match translated {
        Err(CoherenceError::NoMostSpecific {
            left: l,
            right: r,
            meet,
        }) => {
            assert_eq!(l, left);
            assert_eq!(r, right);
            assert_eq!(meet, Type::prod(Type::Int, Type::Int));
        }
        other => panic!("expected NoMostSpecific, got {other:?}"),
    }
    // Adding the meet as its own rule repairs both readings.
    let repaired = [left, right, Type::prod(Type::Int, Type::Int).promote()];
    assert_eq!(exists_most_specific(&repaired), Ok(()));
    assert_eq!(
        most_specific_members(&Intersection::from_context(&repaired)),
        Ok(())
    );
}

#[test]
fn unstable_query_names_the_same_winner_and_rival() {
    let a = tv("subneg_d");
    let b = tv("subneg_e");
    let winner = RuleType::new(vec![b], vec![], Type::prod(Type::var(b), Type::Int));
    let rival = Type::prod(Type::Int, Type::Int).promote();
    let mut env = ImplicitEnv::new();
    env.push(vec![winner.clone()]); // outer
    env.push(vec![rival.clone()]); // inner (nearer)
    let query = Type::prod(Type::var(a), Type::Int).promote();
    let policy = ResolutionPolicy::paper();

    let source = query_stability(&env, &query, &policy);
    let translated = stable_query(&translate_env(&env), &query, &policy);
    assert_eq!(source, translated);
    match translated {
        Err(CoherenceError::UnstableQuery {
            query: q,
            winner: w,
            rival: r,
        }) => {
            assert_eq!(q, query);
            assert_eq!(w, winner);
            assert_eq!(r, rival);
        }
        other => panic!("expected UnstableQuery, got {other:?}"),
    }
    // A ground query is stable under both readings.
    let ground = Type::prod(Type::Bool, Type::Int).promote();
    assert_eq!(query_stability(&env, &ground, &policy), Ok(()));
    assert_eq!(stable_query(&translate_env(&env), &ground, &policy), Ok(()));
}
