//! Termination conditions for resolution (Appendix A).
//!
//! Recursive resolution may diverge for ill-chosen rule sets — the
//! appendix's example is the mutual pair `{Char} ⇒ Int` and
//! `{Int} ⇒ Char`, which alternate forever. The paper adapts the
//! modular syntactic restrictions developed for Haskell type-class
//! instances (the Paterson conditions of "Understanding functional
//! dependencies via constraint handling rules"): a rule
//! `∀ᾱ. {ρ₁, …, ρₙ} ⇒ τ` is *terminating* when, for every premise
//! `ρᵢ` with head `τᵢ`,
//!
//! 1. no free type variable occurs more often in `τᵢ` than in `τ`,
//! 2. `τᵢ` is strictly smaller than `τ` (fewer constructors), and
//! 3. `ρᵢ` is itself terminating (higher-order premises recurse).
//!
//! If every rule in every frame of an environment is terminating,
//! every resolution measure strictly decreases and `Δ ⊢r ρ` cannot
//! diverge (the environment stays fixed during resolution — one of
//! the paper's arguments *for* the simpler `TyRes` rule).

use std::fmt;

use crate::env::ImplicitEnv;
use crate::syntax::RuleType;

/// Why a rule fails the termination conditions.
#[derive(Clone, Debug, PartialEq)]
pub enum TerminationViolation {
    /// A premise head is not strictly smaller than the rule head.
    PremiseNotSmaller {
        /// The offending rule.
        rule: RuleType,
        /// The premise whose head is too large.
        premise: RuleType,
        /// Size of the premise head.
        premise_size: usize,
        /// Size of the rule head.
        head_size: usize,
    },
    /// A type variable occurs more often in a premise head than in
    /// the rule head.
    VariableGrows {
        /// The offending rule.
        rule: RuleType,
        /// The premise in which the variable grows.
        premise: RuleType,
        /// The growing variable.
        var: crate::syntax::TyVar,
    },
}

impl fmt::Display for TerminationViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationViolation::PremiseNotSmaller {
                rule,
                premise,
                premise_size,
                head_size,
            } => write!(
                f,
                "rule `{rule}`: premise `{premise}` (size {premise_size}) is not strictly smaller \
                 than the head (size {head_size})"
            ),
            TerminationViolation::VariableGrows { rule, premise, var } => write!(
                f,
                "rule `{rule}`: type variable `{var}` occurs more often in premise `{premise}` \
                 than in the head"
            ),
        }
    }
}

impl std::error::Error for TerminationViolation {}

/// Checks one rule against the termination conditions.
///
/// # Errors
///
/// Returns the first violated condition.
///
/// # Examples
///
/// ```
/// use implicit_core::syntax::{RuleType, Type};
/// use implicit_core::termination::check_rule;
///
/// // {Int} ⇒ Int × Int terminates…
/// let ok = RuleType::mono(vec![Type::Int.promote()],
///                         Type::prod(Type::Int, Type::Int));
/// assert!(check_rule(&ok).is_ok());
///
/// // …but {Char} ⇒ Int does not (premise not smaller than head).
/// let bad = RuleType::mono(vec![Type::Str.promote()], Type::Int);
/// assert!(check_rule(&bad).is_err());
/// ```
pub fn check_rule(rho: &RuleType) -> Result<(), TerminationViolation> {
    let head = rho.head();
    let head_size = head.size();
    // Free variables relevant to condition 1: the rule's own
    // quantifiers plus anything free in the rule.
    let mut vars: Vec<crate::syntax::TyVar> = rho.vars().to_vec();
    for v in rho.ftv() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    for premise in rho.context() {
        let ph = premise.head();
        if ph.size() >= head_size {
            return Err(TerminationViolation::PremiseNotSmaller {
                rule: rho.clone(),
                premise: premise.clone(),
                premise_size: ph.size(),
                head_size,
            });
        }
        for &v in &vars {
            if premise_occurrences(premise, v) > head.occurrences(v) {
                return Err(TerminationViolation::VariableGrows {
                    rule: rho.clone(),
                    premise: premise.clone(),
                    var: v,
                });
            }
        }
        // Higher-order premises must be terminating themselves: when
        // such a premise is queried, its context enters a recursive
        // resolution.
        check_rule(premise)?;
    }
    Ok(())
}

fn premise_occurrences(premise: &RuleType, v: crate::syntax::TyVar) -> usize {
    // Occurrences in the premise's head, with the premise's own
    // binders masking.
    if premise.vars().contains(&v) {
        0
    } else {
        premise.head().occurrences(v)
    }
}

/// Checks every rule of a context.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_context(context: &[RuleType]) -> Result<(), TerminationViolation> {
    context.iter().try_for_each(check_rule)
}

/// Checks every rule in every frame of an implicit environment.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_env(env: &ImplicitEnv) -> Result<(), TerminationViolation> {
    for (_, frame) in env.frames_innermost_first() {
        check_context(frame)?;
    }
    Ok(())
}

/// Convenience: is the whole environment terminating?
pub fn is_terminating(env: &ImplicitEnv) -> bool {
    check_env(env).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;
    use crate::syntax::Type;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    #[test]
    fn appendix_loop_is_rejected() {
        // {Char}⇒Int, {Int}⇒Char (Char as Str).
        let r1 = RuleType::mono(vec![Type::Str.promote()], Type::Int);
        let r2 = RuleType::mono(vec![Type::Int.promote()], Type::Str);
        assert!(check_rule(&r1).is_err());
        assert!(check_rule(&r2).is_err());
        let env = ImplicitEnv::with_frame(vec![r1, r2]);
        assert!(!is_terminating(&env));
    }

    #[test]
    fn structural_rules_are_accepted() {
        // ∀a. {a} ⇒ a × a : premise a smaller than a × a, occurrences
        // 1 ≤ 2.
        let pair = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        assert!(check_rule(&pair).is_ok());
        // ∀a b. {a, b} ⇒ a × b (the eqPair shape).
        let eq_pair = RuleType::new(
            vec![v("a"), v("b")],
            vec![tv("a").promote(), tv("b").promote()],
            Type::prod(tv("a"), tv("b")),
        );
        assert!(check_rule(&eq_pair).is_ok());
    }

    #[test]
    fn growing_variables_are_rejected() {
        // ∀a. {a × a} ⇒ (a × Int) × Int : the premise is smaller than
        // the head, but `a` occurs twice in the premise vs once in
        // the head — exactly the duplication that lets resolution
        // diverge by doubling.
        let bad = RuleType::new(
            vec![v("a")],
            vec![Type::prod(tv("a"), tv("a")).promote()],
            Type::prod(Type::prod(tv("a"), Type::Int), Type::Int),
        );
        let err = check_rule(&bad).unwrap_err();
        assert!(matches!(err, TerminationViolation::VariableGrows { .. }));
    }

    #[test]
    fn equal_size_premise_is_rejected() {
        // {Int} ⇒ Bool : premise size == head size.
        let bad = RuleType::mono(vec![Type::Int.promote()], Type::Bool);
        let err = check_rule(&bad).unwrap_err();
        assert!(matches!(
            err,
            TerminationViolation::PremiseNotSmaller { .. }
        ));
    }

    #[test]
    fn higher_order_premises_are_checked_recursively() {
        // {{Char} ⇒ Int×Int×huge?} — build an outer rule whose premise
        // is itself a non-terminating rule, nested inside a large
        // enough head that the outer conditions hold.
        let inner_bad = RuleType::mono(vec![Type::Str.promote()], Type::Int);
        let big_head = Type::prod(
            Type::prod(Type::Int, Type::Int),
            Type::prod(Type::Int, Type::Int),
        );
        let outer = RuleType::mono(vec![inner_bad], big_head);
        assert!(check_rule(&outer).is_err());
    }

    #[test]
    fn context_free_rules_trivially_terminate() {
        assert!(check_rule(&Type::Int.promote()).is_ok());
        let id = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        assert!(check_rule(&id).is_ok());
    }

    #[test]
    fn env_check_reports_any_frame() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![RuleType::mono(vec![Type::Str.promote()], Type::Int)]);
        assert!(check_env(&env).is_err());
    }

    #[test]
    fn violations_display_helpfully() {
        let bad = RuleType::mono(vec![Type::Int.promote()], Type::Bool);
        let msg = check_rule(&bad).unwrap_err().to_string();
        assert!(msg.contains("not strictly smaller"), "got {msg}");
    }
}
