//! Hash-consing for types and rule types.
//!
//! Resolution spends most of its time comparing and re-walking the
//! same types: every lookup re-matches each candidate rule head
//! against the target, and substitution rebuilds trees whose shared
//! subterms never change. This module gives both operations an O(1)
//! fast path by interning [`Type`]s and [`RuleType`]s into a
//! thread-local arena of *structural identities*:
//!
//! * [`type_id`] / [`rule_id`] map a term to a [`TypeId`] /
//!   [`RuleId`] such that two terms receive the same id **iff** they
//!   are structurally equal (the derived `PartialEq`). Interning a
//!   term whose `Rc`-shared subtrees have been seen before costs one
//!   shallow node per *unshared* level: the arena memoizes by `Rc`
//!   pointer (keeping a clone alive so addresses are never reused),
//!   and clones share their subtrees.
//! * [`is_ground`] answers "does this type mention any type
//!   variable?" from per-node metadata computed once at interning
//!   time. Ground types are fixed points of substitution and match a
//!   target exactly when they equal it, which turns the common
//!   monomorphic-rule head-match into an id comparison.
//! * [`HeadKey`] is a one-level fingerprint of a type's outermost
//!   constructor, used by the environment's per-frame index
//!   ([`crate::env::ImplicitEnv`]) to skip candidates that cannot
//!   match and by the derivation cache to decide which entries a
//!   pushed frame can shadow.
//!
//! The arena is thread-local rather than global because the terms it
//! pins contain `Rc`s (so they cannot cross threads anyway); ids from
//! different threads must not be compared, which the public API makes
//! impossible to do accidentally since ids are only produced and
//! consumed on the same thread as the terms they describe.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::symbol::Symbol;
use crate::syntax::{RuleType, TyCon, Type};

/// Structural identity of an interned [`Type`]: equal ids ⇔ equal
/// types (on the thread that produced them).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TypeId(u32);

/// Structural identity of an interned [`RuleType`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RuleId(u32);

/// The outermost-constructor fingerprint of a type, used to index
/// implicit-environment frames by rule head.
///
/// Keys are *conservative*: a candidate rule whose head has key `c`
/// can match a target with key `t` only if [`HeadKey::admits`] holds.
/// Variable-headed types (which can match, or be matched by, many
/// shapes) map to [`HeadKey::Wildcard`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HeadKey {
    /// A variable-headed type (`α` or `f τ̄`): matches anything as a
    /// pattern, and is matched only by variable-headed patterns as a
    /// target.
    Wildcard,
    /// `Int`
    Int,
    /// `Bool`
    Bool,
    /// `String`
    Str,
    /// `Unit`
    Unit,
    /// `τ₁ → τ₂`
    Arrow,
    /// `τ₁ × τ₂`
    Prod,
    /// `[τ]`
    List,
    /// The first-class list constructor `List` (kind `* → *`).
    CtorList,
    /// A named interface/data constructor, applied (`I τ̄`) or
    /// first-class (`Ctor(I)`); nullary applications and constructor
    /// references share a key because matching identifies them.
    Con(Symbol),
    /// A rule type `∀ᾱ. π ⇒ τ`.
    Rule,
}

impl HeadKey {
    /// Can a rule head with key `self` possibly match a target with
    /// key `target`?
    ///
    /// Completeness (no false negatives) follows from the matcher's
    /// case analysis: a non-variable pattern only ever matches a
    /// target with the same outermost constructor (with nullary
    /// `Con`/`Ctor` identification folded into [`HeadKey::Con`]),
    /// and variable-headed targets are matched only by
    /// variable-headed patterns.
    pub fn admits(self, target: HeadKey) -> bool {
        self == HeadKey::Wildcard || self == target
    }
}

/// The head-constructor fingerprint of `ty`. O(1): inspects only the
/// root node.
pub fn head_key(ty: &Type) -> HeadKey {
    match ty {
        Type::Var(_) | Type::VarApp(_, _) => HeadKey::Wildcard,
        Type::Int => HeadKey::Int,
        Type::Bool => HeadKey::Bool,
        Type::Str => HeadKey::Str,
        Type::Unit => HeadKey::Unit,
        Type::Arrow(_, _) => HeadKey::Arrow,
        Type::Prod(_, _) => HeadKey::Prod,
        Type::List(_) => HeadKey::List,
        Type::Ctor(TyCon::List) => HeadKey::CtorList,
        Type::Ctor(TyCon::Named(n)) | Type::Con(n, _) => HeadKey::Con(*n),
        Type::Rule(_) => HeadKey::Rule,
    }
}

/// Flattened type node: children are ids, so node equality/hashing is
/// shallow.
#[derive(Clone, PartialEq, Eq, Hash)]
enum TypeNode {
    Var(Symbol),
    Int,
    Bool,
    Str,
    Unit,
    Arrow(TypeId, TypeId),
    Prod(TypeId, TypeId),
    List(TypeId),
    Con(Symbol, Vec<TypeId>),
    VarApp(Symbol, Vec<TypeId>),
    Ctor(TyCon),
    Rule(RuleId),
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct RuleNode {
    vars: Vec<Symbol>,
    context: Vec<RuleId>,
    head: TypeId,
}

/// Pointer-memo entries keep an `Rc` clone alive so the keyed address
/// cannot be reused by a different allocation. The memos are cleared
/// (wholesale) past a size cap; the structural tables are append-only
/// so ids stay valid for the program lifetime.
const PTR_MEMO_CAP: usize = 1 << 20;

#[derive(Default)]
struct Arena {
    type_table: HashMap<TypeNode, TypeId>,
    /// Reverse of `type_table`: node for each id, for [`type_of`].
    type_nodes: Vec<TypeNode>,
    /// Reverse of `rule_table`: node for each id, for [`rule_of`].
    rule_nodes: Vec<RuleNode>,
    /// Per-[`TypeId`] metadata: `true` when the type mentions no
    /// type variable (bound or free).
    type_ground: Vec<bool>,
    /// `true` when the type contains a first-class constructor
    /// reference (`Type::Ctor`) anywhere; such types can match
    /// non-identical terms through the matcher's nullary
    /// `Con`/`Ctor` identification.
    type_has_ctor: Vec<bool>,
    rule_table: HashMap<RuleNode, RuleId>,
    rule_ground: Vec<bool>,
    rule_has_ctor: Vec<bool>,
    /// Keyed by `Rc` address; the stored clone pins the allocation so
    /// the address cannot be reused while the entry lives.
    type_ptr_memo: HashMap<usize, (TypeId, Rc<Type>)>,
    rule_ptr_memo: HashMap<usize, (RuleId, Rc<RuleType>)>,
}

impl Arena {
    fn intern_type_node(&mut self, node: TypeNode, ground: bool, has_ctor: bool) -> TypeId {
        if let Some(&id) = self.type_table.get(&node) {
            return id;
        }
        let id = TypeId(u32::try_from(self.type_ground.len()).expect("type arena overflow"));
        self.type_ground.push(ground);
        self.type_has_ctor.push(has_ctor);
        self.type_nodes.push(node.clone());
        self.type_table.insert(node, id);
        id
    }

    fn intern_rule_node(&mut self, node: RuleNode, ground: bool, has_ctor: bool) -> RuleId {
        if let Some(&id) = self.rule_table.get(&node) {
            return id;
        }
        let id = RuleId(u32::try_from(self.rule_ground.len()).expect("rule arena overflow"));
        self.rule_ground.push(ground);
        self.rule_has_ctor.push(has_ctor);
        self.rule_nodes.push(node.clone());
        self.rule_table.insert(node, id);
        id
    }

    fn rebuild_type(&self, id: TypeId) -> Type {
        match &self.type_nodes[id.0 as usize] {
            TypeNode::Var(a) => Type::Var(*a),
            TypeNode::Int => Type::Int,
            TypeNode::Bool => Type::Bool,
            TypeNode::Str => Type::Str,
            TypeNode::Unit => Type::Unit,
            TypeNode::Arrow(a, b) => Type::Arrow(
                Rc::new(self.rebuild_type(*a)),
                Rc::new(self.rebuild_type(*b)),
            ),
            TypeNode::Prod(a, b) => Type::Prod(
                Rc::new(self.rebuild_type(*a)),
                Rc::new(self.rebuild_type(*b)),
            ),
            TypeNode::List(a) => Type::List(Rc::new(self.rebuild_type(*a))),
            TypeNode::Con(n, args) => {
                Type::Con(*n, args.iter().map(|i| self.rebuild_type(*i)).collect())
            }
            TypeNode::VarApp(f, args) => {
                Type::VarApp(*f, args.iter().map(|i| self.rebuild_type(*i)).collect())
            }
            TypeNode::Ctor(c) => Type::Ctor(*c),
            TypeNode::Rule(r) => Type::Rule(Rc::new(self.rebuild_rule(*r))),
        }
    }

    fn rebuild_rule(&self, id: RuleId) -> RuleType {
        let node = &self.rule_nodes[id.0 as usize];
        RuleType::new(
            node.vars.clone(),
            node.context.iter().map(|i| self.rebuild_rule(*i)).collect(),
            self.rebuild_type(node.head),
        )
    }

    fn intern_type_rc(&mut self, ty: &Rc<Type>) -> TypeId {
        let key = Rc::as_ptr(ty) as usize;
        if let Some(&(id, _)) = self.type_ptr_memo.get(&key) {
            return id;
        }
        let id = self.intern_type(ty);
        if self.type_ptr_memo.len() >= PTR_MEMO_CAP {
            self.type_ptr_memo.clear();
        }
        self.type_ptr_memo.insert(key, (id, Rc::clone(ty)));
        id
    }

    fn intern_rule_rc(&mut self, rho: &Rc<RuleType>) -> RuleId {
        let key = Rc::as_ptr(rho) as usize;
        if let Some(&(id, _)) = self.rule_ptr_memo.get(&key) {
            return id;
        }
        let id = self.intern_rule(rho);
        if self.rule_ptr_memo.len() >= PTR_MEMO_CAP {
            self.rule_ptr_memo.clear();
        }
        self.rule_ptr_memo.insert(key, (id, Rc::clone(rho)));
        id
    }

    fn type_meta(&self, id: TypeId) -> (bool, bool) {
        (
            self.type_ground[id.0 as usize],
            self.type_has_ctor[id.0 as usize],
        )
    }

    fn intern_type(&mut self, ty: &Type) -> TypeId {
        let (node, ground, has_ctor) = match ty {
            Type::Var(a) => (TypeNode::Var(*a), false, false),
            Type::Int => (TypeNode::Int, true, false),
            Type::Bool => (TypeNode::Bool, true, false),
            Type::Str => (TypeNode::Str, true, false),
            Type::Unit => (TypeNode::Unit, true, false),
            Type::Arrow(a, b) => {
                let ia = self.intern_type_rc(a);
                let ib = self.intern_type_rc(b);
                let (ga, ca) = self.type_meta(ia);
                let (gb, cb) = self.type_meta(ib);
                (TypeNode::Arrow(ia, ib), ga && gb, ca || cb)
            }
            Type::Prod(a, b) => {
                let ia = self.intern_type_rc(a);
                let ib = self.intern_type_rc(b);
                let (ga, ca) = self.type_meta(ia);
                let (gb, cb) = self.type_meta(ib);
                (TypeNode::Prod(ia, ib), ga && gb, ca || cb)
            }
            Type::List(a) => {
                let ia = self.intern_type_rc(a);
                let (ga, ca) = self.type_meta(ia);
                (TypeNode::List(ia), ga, ca)
            }
            Type::Con(n, args) => {
                let ids: Vec<TypeId> = args.iter().map(|t| self.intern_type(t)).collect();
                let ground = ids.iter().all(|i| self.type_ground[i.0 as usize]);
                let has_ctor = ids.iter().any(|i| self.type_has_ctor[i.0 as usize]);
                (TypeNode::Con(*n, ids), ground, has_ctor)
            }
            Type::VarApp(f, args) => {
                let ids: Vec<TypeId> = args.iter().map(|t| self.intern_type(t)).collect();
                let has_ctor = ids.iter().any(|i| self.type_has_ctor[i.0 as usize]);
                (TypeNode::VarApp(*f, ids), false, has_ctor)
            }
            Type::Ctor(c) => (TypeNode::Ctor(*c), true, true),
            Type::Rule(r) => {
                let ir = self.intern_rule_rc(r);
                (
                    TypeNode::Rule(ir),
                    self.rule_ground[ir.0 as usize],
                    self.rule_has_ctor[ir.0 as usize],
                )
            }
        };
        self.intern_type_node(node, ground, has_ctor)
    }

    fn intern_rule(&mut self, rho: &RuleType) -> RuleId {
        let context: Vec<RuleId> = rho.context().iter().map(|r| self.intern_rule(r)).collect();
        let head = self.intern_type(rho.head());
        let ground = rho.vars().is_empty()
            && self.type_ground[head.0 as usize]
            && context.iter().all(|i| self.rule_ground[i.0 as usize]);
        let has_ctor = self.type_has_ctor[head.0 as usize]
            || context.iter().any(|i| self.rule_has_ctor[i.0 as usize]);
        self.intern_rule_node(
            RuleNode {
                vars: rho.vars().to_vec(),
                context,
                head,
            },
            ground,
            has_ctor,
        )
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::default());
}

/// Interns `ty`, returning its structural identity.
///
/// # Examples
///
/// ```
/// use implicit_core::intern::{type_id, types_equal};
/// use implicit_core::syntax::Type;
///
/// let a = Type::list(Type::prod(Type::Int, Type::Bool));
/// let b = Type::list(Type::prod(Type::Int, Type::Bool));
/// assert_eq!(type_id(&a), type_id(&b));
/// assert!(types_equal(&a, &b));
/// assert!(!types_equal(&a, &Type::Int));
/// ```
pub fn type_id(ty: &Type) -> TypeId {
    ARENA.with(|a| a.borrow_mut().intern_type(ty))
}

/// Interns `rho`, returning its structural identity.
pub fn rule_id(rho: &RuleType) -> RuleId {
    ARENA.with(|a| a.borrow_mut().intern_rule(rho))
}

/// Reconstructs the type an id was interned from (structurally equal
/// to every type that maps to `id`). Used by the artifact store to
/// serialize caches that are keyed by intern id.
///
/// Returns `None` when `id` does not denote a live arena entry (e.g.
/// after [`truncate_to`]).
pub fn type_of(id: TypeId) -> Option<Type> {
    ARENA.with(|a| {
        let a = a.borrow();
        if (id.0 as usize) < a.type_nodes.len() {
            Some(a.rebuild_type(id))
        } else {
            None
        }
    })
}

/// Reconstructs the rule type an id was interned from; see [`type_of`].
pub fn rule_of(id: RuleId) -> Option<RuleType> {
    ARENA.with(|a| {
        let a = a.borrow();
        if (id.0 as usize) < a.rule_nodes.len() {
            Some(a.rebuild_rule(id))
        } else {
            None
        }
    })
}

/// `true` when `ty` mentions no type variable (bound or free), so it
/// is a fixed point of every substitution and matches a target iff it
/// equals it. O(1) amortized for `Rc`-shared subtrees.
pub fn is_ground(ty: &Type) -> bool {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let id = a.intern_type(ty);
        a.type_ground[id.0 as usize]
    })
}

/// `true` when `rho` has no quantifiers and mentions no type variable
/// anywhere (so freshening and substitution are both the identity).
pub fn rule_is_ground(rho: &RuleType) -> bool {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let id = a.intern_rule(rho);
        a.rule_ground[id.0 as usize]
    })
}

/// [`is_ground`] keyed by `Rc` identity: O(1) for a pointer the arena
/// has already seen (substitution uses this to share, rather than
/// rebuild, variable-free subtrees).
pub fn is_ground_rc(ty: &Rc<Type>) -> bool {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let id = a.intern_type_rc(ty);
        a.type_ground[id.0 as usize]
    })
}

/// [`rule_is_ground`] keyed by `Rc` identity; O(1) for already-seen
/// pointers.
pub fn rule_is_ground_rc(rho: &Rc<RuleType>) -> bool {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let id = a.intern_rule_rc(rho);
        a.rule_ground[id.0 as usize]
    })
}

/// Structural equality via interning: one shallow re-intern per side
/// when subtrees are `Rc`-shared (e.g. clones of a stored rule).
pub fn types_equal(a: &Type, b: &Type) -> bool {
    ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        arena.intern_type(a) == arena.intern_type(b)
    })
}

/// Outcome of the O(1) ground-pattern match test
/// ([`ground_head_check`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroundCheck {
    /// The pattern certainly matches the target (they are equal).
    Match,
    /// The pattern certainly does not match the target.
    NoMatch,
    /// Undecided: the terms involve first-class constructor
    /// references, whose nullary `Con`/`Ctor` identification the id
    /// comparison cannot see; run the full matcher.
    Unknown,
}

/// Decides whether a *ground* rule head `pattern` matches `target`
/// without walking either term.
///
/// A ground pattern has no variables to instantiate, so it matches a
/// target exactly when the two are equal up to the matcher's nullary
/// `Con`/`Ctor` identification:
///
/// * equal ids → [`GroundCheck::Match`];
/// * a target with variables can never be matched by a ground
///   pattern (every pattern position is rigid) → [`GroundCheck::NoMatch`];
/// * otherwise, unequal ground terms differ structurally; that is
///   conclusive unless one side contains a `Type::Ctor` node, where
///   the identification could still bridge the difference →
///   [`GroundCheck::NoMatch`] / [`GroundCheck::Unknown`].
///
/// # Panics
///
/// Does not panic, but the result is only meaningful when
/// `is_ground(pattern)` holds.
pub fn ground_head_check(pattern: &Type, target: &Type) -> GroundCheck {
    ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        let p = arena.intern_type(pattern);
        let t = arena.intern_type(target);
        if p == t {
            return GroundCheck::Match;
        }
        let (t_ground, t_ctor) = arena.type_meta(t);
        if !t_ground {
            return GroundCheck::NoMatch;
        }
        let (_, p_ctor) = arena.type_meta(p);
        if p_ctor || t_ctor {
            GroundCheck::Unknown
        } else {
            GroundCheck::NoMatch
        }
    })
}

/// A watermark over the thread-local arena, taken with [`snapshot`].
///
/// Ids are assigned sequentially and children are always interned
/// before their parents, so every id below the watermark describes a
/// term whose entire subterm closure is also below it. That makes a
/// snapshot a coherent *prefix* of the arena: [`truncate_to`] can
/// discard everything interned after it without dangling child ids,
/// and callers holding caches keyed by [`TypeId`] / [`RuleId`] can
/// use [`InternSnapshot::covers_type`] / [`covers_rule`] to decide
/// which entries survive the truncation.
///
/// Like the ids themselves, a snapshot is only meaningful on the
/// thread that took it.
///
/// [`covers_rule`]: InternSnapshot::covers_rule
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InternSnapshot {
    types: u32,
    rules: u32,
}

impl InternSnapshot {
    /// `true` when `id` was interned at or before the snapshot (so it
    /// survives a [`truncate_to`] back to it).
    pub fn covers_type(&self, id: TypeId) -> bool {
        id.0 < self.types
    }

    /// `true` when `id` was interned at or before the snapshot.
    pub fn covers_rule(&self, id: RuleId) -> bool {
        id.0 < self.rules
    }

    /// Number of type entries the snapshot covers.
    pub fn type_count(&self) -> usize {
        self.types as usize
    }

    /// Number of rule entries the snapshot covers.
    pub fn rule_count(&self) -> usize {
        self.rules as usize
    }
}

/// Takes a watermark of the current thread's arena.
pub fn snapshot() -> InternSnapshot {
    ARENA.with(|a| {
        let a = a.borrow();
        InternSnapshot {
            types: a.type_ground.len() as u32,
            rules: a.rule_ground.len() as u32,
        }
    })
}

/// Current arena sizes `(types, rules)` — the growth since a
/// [`snapshot`] is the usual trim heuristic for long-lived sessions.
pub fn arena_len() -> (usize, usize) {
    ARENA.with(|a| {
        let a = a.borrow();
        (a.type_ground.len(), a.rule_ground.len())
    })
}

/// Rolls the arena back to `snap`: every id interned after the
/// snapshot is forgotten (its structural-table entry, metadata, and
/// pointer-memo pins are dropped) and the id space is reused by
/// subsequent interning.
///
/// Ids below the watermark remain valid and stable. Ids above it
/// become dangling — callers must drop or purge any cache keyed by a
/// non-covered id *before* truncating (see
/// [`InternSnapshot::covers_type`] / [`InternSnapshot::covers_rule`]);
/// the derivation cache and the opsem runtime memo both expose
/// retain-hooks for exactly this.
pub fn truncate_to(snap: &InternSnapshot) {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        a.type_table.retain(|_, id| id.0 < snap.types);
        a.type_ground.truncate(snap.types as usize);
        a.type_has_ctor.truncate(snap.types as usize);
        a.type_nodes.truncate(snap.types as usize);
        a.rule_table.retain(|_, id| id.0 < snap.rules);
        a.rule_ground.truncate(snap.rules as usize);
        a.rule_has_ctor.truncate(snap.rules as usize);
        a.rule_nodes.truncate(snap.rules as usize);
        // Pointer memos may alias ids past the watermark through any
        // shared subtree; keep only entries whose id survives.
        a.type_ptr_memo.retain(|_, (id, _)| id.0 < snap.types);
        a.rule_ptr_memo.retain(|_, (id, _)| id.0 < snap.rules);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn equal_types_share_an_id() {
        let t1 = Type::arrow(Type::Int, Type::list(Type::Bool));
        let t2 = Type::arrow(Type::Int, Type::list(Type::Bool));
        assert_eq!(type_id(&t1), type_id(&t2));
        assert_ne!(type_id(&t1), type_id(&Type::Int));
    }

    #[test]
    fn clones_reintern_through_the_pointer_memo() {
        let mut t = Type::Int;
        for _ in 0..64 {
            t = Type::list(t);
        }
        let id = type_id(&t);
        let clone = t.clone(); // shares the child Rc chain
        assert_eq!(type_id(&clone), id);
    }

    #[test]
    fn groundness_is_per_node() {
        assert!(is_ground(&Type::Int));
        assert!(is_ground(&Type::prod(Type::Int, Type::list(Type::Str))));
        assert!(!is_ground(&Type::var(v("a"))));
        assert!(!is_ground(&Type::arrow(Type::Int, Type::var(v("a")))));
        assert!(!is_ground(&Type::var_app(v("f"), vec![Type::Int])));
        assert!(is_ground(&Type::Ctor(TyCon::List)));
    }

    #[test]
    fn rule_ids_distinguish_binders_and_contexts() {
        let r1 = RuleType::new(vec![v("a")], vec![], Type::var(v("a")));
        let r2 = RuleType::new(vec![v("b")], vec![], Type::var(v("b")));
        // Interning is structural, not α-aware: distinct binder names
        // are distinct rules.
        assert_ne!(rule_id(&r1), rule_id(&r2));
        assert_eq!(rule_id(&r1), rule_id(&r1.clone()));

        let mono = RuleType::mono(vec![Type::Int.promote()], Type::Bool);
        assert!(!rule_is_ground(&r1));
        assert!(rule_is_ground(&mono));
    }

    #[test]
    fn head_keys_fingerprint_the_outermost_constructor() {
        let eq = v("Eq");
        assert_eq!(head_key(&Type::Int), HeadKey::Int);
        assert_eq!(head_key(&Type::list(Type::Int)), HeadKey::List);
        assert_eq!(head_key(&Type::var(v("a"))), HeadKey::Wildcard);
        assert_eq!(
            head_key(&Type::var_app(v("f"), vec![Type::Int])),
            HeadKey::Wildcard
        );
        // Nullary constructor applications and constructor references
        // are identified, mirroring the matcher.
        assert_eq!(head_key(&Type::Con(eq, vec![])), HeadKey::Con(eq));
        assert_eq!(head_key(&Type::Ctor(TyCon::Named(eq))), HeadKey::Con(eq));
        assert_eq!(head_key(&Type::Ctor(TyCon::List)), HeadKey::CtorList);
        let rho = RuleType::new(vec![v("a")], vec![], Type::var(v("a")));
        assert_eq!(head_key(&rho.to_type()), HeadKey::Rule);
    }

    #[test]
    fn ground_check_decides_variable_free_matches() {
        let chain = Type::list(Type::list(Type::Int));
        assert_eq!(
            ground_head_check(&chain, &chain.clone()),
            GroundCheck::Match
        );
        assert_eq!(
            ground_head_check(&chain, &Type::list(Type::Int)),
            GroundCheck::NoMatch
        );
        // Ground patterns cannot match targets that mention variables.
        assert_eq!(
            ground_head_check(&Type::Int, &Type::var(v("a"))),
            GroundCheck::NoMatch
        );
        // Constructor references force the full matcher: Con(n, [])
        // and Ctor(n) are identified even though their ids differ.
        let eq = v("EqC");
        assert_eq!(
            ground_head_check(&Type::Con(eq, vec![]), &Type::Ctor(TyCon::Named(eq))),
            GroundCheck::Unknown
        );
    }

    #[test]
    fn truncation_preserves_covered_ids_and_reuses_the_rest() {
        let base = Type::list(Type::Int);
        let base_id = type_id(&base);
        let snap = snapshot();
        assert!(snap.covers_type(base_id));

        let tall = Type::prod(Type::list(Type::list(Type::Int)), Type::Bool);
        let tall_id = type_id(&tall);
        let rho = RuleType::mono(vec![base.promote()], tall.clone());
        let rho_id = rule_id(&rho);
        assert!(!snap.covers_type(tall_id));
        assert!(!snap.covers_rule(rho_id));

        truncate_to(&snap);
        assert_eq!(arena_len(), (snap.type_count(), snap.rule_count()));
        // Covered ids are stable across the rollback.
        assert_eq!(type_id(&base), base_id);
        // Pruned terms re-intern coherently: equal terms still get
        // equal ids, and the arena grows back to the same size.
        let tall_id2 = type_id(&tall);
        assert_eq!(type_id(&tall.clone()), tall_id2);
        assert_eq!(rule_id(&rho), rule_id(&rho.clone()));
        assert!(!snap.covers_type(tall_id2));
        assert!(is_ground(&tall));
        assert_eq!(ground_head_check(&tall, &tall.clone()), GroundCheck::Match);
    }

    #[test]
    fn truncation_to_a_stale_longer_snapshot_is_a_no_op() {
        let t = Type::list(Type::list(Type::Str));
        let id = type_id(&t);
        let snap = snapshot();
        truncate_to(&snap);
        assert_eq!(type_id(&t), id);
    }

    #[test]
    fn admits_is_reflexive_plus_wildcard() {
        assert!(HeadKey::Int.admits(HeadKey::Int));
        assert!(HeadKey::Wildcard.admits(HeadKey::Int));
        assert!(HeadKey::Wildcard.admits(HeadKey::Wildcard));
        // A constructor-headed pattern cannot match a variable-headed
        // target...
        assert!(!HeadKey::Int.admits(HeadKey::Wildcard));
        // ...nor a differently-headed one.
        assert!(!HeadKey::Arrow.admits(HeadKey::Prod));
        assert!(!HeadKey::Con(v("Eq")).admits(HeadKey::Con(v("Ord"))));
    }
}
