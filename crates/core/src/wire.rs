//! Binary wire format for session artifacts.
//!
//! The artifact store (crate `implicit-pipeline`) persists a warm
//! session — interned prelude types, the implicit environment's
//! derivation cache, elaborated evidence values and compiled bytecode
//! — across processes. This module provides the shared encoder /
//! decoder primitives: fixed-width little-endian integers, strings,
//! and memoized encodings of [`Symbol`]s, [`Type`]s, [`RuleType`]s,
//! [`Expr`]s and resolution derivations.
//!
//! Three properties matter for cross-process reuse:
//!
//! * **Symbols are serialized by name.** `Symbol` ids are process
//!   local (the global interner assigns them in first-use order), so
//!   the wire form is the string, memoized: the first occurrence
//!   writes the name, later occurrences a back-reference.
//! * **Types are serialized structurally, shared by table index.**
//!   Intern-arena ids ([`crate::intern`]) are thread-local and never
//!   written. Instead the encoder keeps a table of already-written
//!   types; the decoder rebuilds the same table in the same order
//!   (both sides assign a type's index *after* its children, so the
//!   tables agree), and re-interns on the loading thread as needed.
//! * **Corruption is detected, not trusted.** [`Enc::finish`] appends
//!   an FNV-64 checksum of the payload; [`Dec::new`] verifies it
//!   before any field is decoded, so a truncated or bit-flipped
//!   artifact fails loudly at open time and the caller can fall back
//!   to a cold build.

use std::collections::HashMap;
use std::rc::Rc;

use crate::env::OverlapPolicy;
use crate::resolve::{Premise, Resolution, ResolutionPolicy, RuleRef};
use crate::symbol::Symbol;
use crate::syntax::{BinOp, Expr, MatchArm, RuleType, TyCon, Type, UnOp};

/// Decode failure: out-of-range tag, dangling back-reference,
/// truncated input, or checksum mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Clamps a wire-supplied element count before pre-allocating, so a
/// checksum-valid but corrupt (or crafted) length can't force a huge
/// up-front allocation and abort the process; an honest count above
/// the clamp just grows the vec as elements are pushed, and a lying
/// count fails element-by-element with a decode `Err` instead.
pub fn cap(n: usize) -> usize {
    n.min(1 << 16)
}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming encoder with per-stream memo tables.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
    syms: HashMap<Symbol, u32>,
    types: HashMap<Type, u32>,
    rules: HashMap<RuleType, u32>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The bytes written so far (checksum not yet appended).
    pub fn buf(&self) -> &[u8] {
        &self.buf
    }

    /// Appends the FNV-64 checksum and returns the finished payload.
    pub fn finish(mut self) -> Vec<u8> {
        let h = fnv64(&self.buf);
        self.buf.extend_from_slice(&h.to_le_bytes());
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a symbol: back-reference if seen, else its name.
    pub fn sym(&mut self, s: Symbol) {
        if let Some(&i) = self.syms.get(&s) {
            self.u8(0);
            self.u32(i);
            return;
        }
        self.u8(1);
        self.str(s.as_str());
        let i = self.syms.len() as u32;
        self.syms.insert(s, i);
    }

    /// Writes a type: back-reference if structurally seen, else the
    /// node (children first; the table index is assigned after the
    /// children so encoder and decoder tables stay aligned).
    pub fn ty(&mut self, t: &Type) {
        if let Some(&i) = self.types.get(t) {
            self.u8(0);
            self.u32(i);
            return;
        }
        self.u8(1);
        match t {
            Type::Var(a) => {
                self.u8(0);
                self.sym(*a);
            }
            Type::Int => self.u8(1),
            Type::Bool => self.u8(2),
            Type::Str => self.u8(3),
            Type::Unit => self.u8(4),
            Type::Arrow(a, b) => {
                self.u8(5);
                self.ty(a);
                self.ty(b);
            }
            Type::Prod(a, b) => {
                self.u8(6);
                self.ty(a);
                self.ty(b);
            }
            Type::List(e) => {
                self.u8(7);
                self.ty(e);
            }
            Type::Con(n, args) => {
                self.u8(8);
                self.sym(*n);
                self.u32(args.len() as u32);
                for a in args {
                    self.ty(a);
                }
            }
            Type::VarApp(v, args) => {
                self.u8(9);
                self.sym(*v);
                self.u32(args.len() as u32);
                for a in args {
                    self.ty(a);
                }
            }
            Type::Ctor(TyCon::List) => self.u8(10),
            Type::Ctor(TyCon::Named(n)) => {
                self.u8(11);
                self.sym(*n);
            }
            Type::Rule(r) => {
                self.u8(12);
                self.rule(r);
            }
        }
        let i = self.types.len() as u32;
        self.types.insert(t.clone(), i);
    }

    /// Writes a rule type (memoized like [`Enc::ty`]).
    pub fn rule(&mut self, r: &RuleType) {
        if let Some(&i) = self.rules.get(r) {
            self.u8(0);
            self.u32(i);
            return;
        }
        self.u8(1);
        self.u32(r.vars().len() as u32);
        for v in r.vars() {
            self.sym(*v);
        }
        self.u32(r.context().len() as u32);
        for c in r.context() {
            self.rule(c);
        }
        self.ty(r.head());
        let i = self.rules.len() as u32;
        self.rules.insert(r.clone(), i);
    }

    /// Writes a λ⇒ expression (structural, no memo: source-level
    /// sharing is incidental and prelude exprs are small).
    pub fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            Expr::Bool(b) => {
                self.u8(1);
                self.bool(*b);
            }
            Expr::Str(s) => {
                self.u8(2);
                self.str(s);
            }
            Expr::Unit => self.u8(3),
            Expr::Var(x) => {
                self.u8(4);
                self.sym(*x);
            }
            Expr::Lam(x, t, b) => {
                self.u8(5);
                self.sym(*x);
                self.ty(t);
                self.expr(b);
            }
            Expr::App(f, a) => {
                self.u8(6);
                self.expr(f);
                self.expr(a);
            }
            Expr::Query(r) => {
                self.u8(7);
                self.rule(r);
            }
            Expr::RuleAbs(r, b) => {
                self.u8(8);
                self.rule(r);
                self.expr(b);
            }
            Expr::TyApp(f, ts) => {
                self.u8(9);
                self.expr(f);
                self.u32(ts.len() as u32);
                for t in ts {
                    self.ty(t);
                }
            }
            Expr::RuleApp(f, args) => {
                self.u8(10);
                self.expr(f);
                self.u32(args.len() as u32);
                for (a, r) in args {
                    self.expr(a);
                    self.rule(r);
                }
            }
            Expr::If(c, t, f) => {
                self.u8(11);
                self.expr(c);
                self.expr(t);
                self.expr(f);
            }
            Expr::BinOp(op, a, b) => {
                self.u8(12);
                self.u8(binop_tag(*op));
                self.expr(a);
                self.expr(b);
            }
            Expr::UnOp(op, a) => {
                self.u8(13);
                self.u8(unop_tag(*op));
                self.expr(a);
            }
            Expr::Pair(a, b) => {
                self.u8(14);
                self.expr(a);
                self.expr(b);
            }
            Expr::Fst(a) => {
                self.u8(15);
                self.expr(a);
            }
            Expr::Snd(a) => {
                self.u8(16);
                self.expr(a);
            }
            Expr::Nil(t) => {
                self.u8(17);
                self.ty(t);
            }
            Expr::Cons(h, t) => {
                self.u8(18);
                self.expr(h);
                self.expr(t);
            }
            Expr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => {
                self.u8(19);
                self.expr(scrut);
                self.expr(nil);
                self.sym(*head);
                self.sym(*tail);
                self.expr(cons);
            }
            Expr::Fix(x, t, b) => {
                self.u8(20);
                self.sym(*x);
                self.ty(t);
                self.expr(b);
            }
            Expr::Make(n, ts, fields) => {
                self.u8(21);
                self.sym(*n);
                self.u32(ts.len() as u32);
                for t in ts {
                    self.ty(t);
                }
                self.u32(fields.len() as u32);
                for (f, e) in fields {
                    self.sym(*f);
                    self.expr(e);
                }
            }
            Expr::Proj(e, f) => {
                self.u8(22);
                self.expr(e);
                self.sym(*f);
            }
            Expr::Inject(c, ts, args) => {
                self.u8(23);
                self.sym(*c);
                self.u32(ts.len() as u32);
                for t in ts {
                    self.ty(t);
                }
                self.u32(args.len() as u32);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Match(scrut, arms) => {
                self.u8(24);
                self.expr(scrut);
                self.u32(arms.len() as u32);
                for arm in arms {
                    self.sym(arm.ctor);
                    self.u32(arm.binders.len() as u32);
                    for b in &arm.binders {
                        self.sym(*b);
                    }
                    self.expr(&arm.body);
                }
            }
        }
    }

    /// Writes a resolution derivation.
    pub fn resolution(&mut self, r: &Resolution) {
        self.rule(&r.query);
        match &r.rule {
            RuleRef::Env { frame, index } => {
                self.u8(0);
                self.len(*frame);
                self.len(*index);
            }
            RuleRef::Extension { level, index } => {
                self.u8(1);
                self.len(*level);
                self.len(*index);
            }
        }
        self.rule(&r.rule_type);
        self.u32(r.type_args.len() as u32);
        for t in &r.type_args {
            self.ty(t);
        }
        self.u32(r.premises.len() as u32);
        for p in &r.premises {
            match p {
                Premise::Assumed { index, rho } => {
                    self.u8(0);
                    self.len(*index);
                    self.rule(rho);
                }
                Premise::Derived(d) => {
                    self.u8(1);
                    self.resolution(d);
                }
            }
        }
    }

    /// Writes an overlap policy.
    pub fn overlap(&mut self, o: OverlapPolicy) {
        self.u8(match o {
            OverlapPolicy::Forbid => 0,
            OverlapPolicy::MostSpecific => 1,
        });
    }

    /// Writes a binary operator.
    pub fn binop(&mut self, op: BinOp) {
        self.u8(binop_tag(op));
    }

    /// Writes a unary operator.
    pub fn unop(&mut self, op: UnOp) {
        self.u8(unop_tag(op));
    }

    /// Writes a resolution policy.
    pub fn policy(&mut self, p: &ResolutionPolicy) {
        self.u8(match p.overlap {
            OverlapPolicy::Forbid => 0,
            OverlapPolicy::MostSpecific => 1,
        });
        self.bool(p.env_extension);
        self.len(p.max_depth);
        self.bool(p.cache);
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Lt => 6,
        BinOp::Le => 7,
        BinOp::And => 8,
        BinOp::Or => 9,
        BinOp::Concat => 10,
    }
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Not => 0,
        UnOp::Neg => 1,
        UnOp::IntToStr => 2,
    }
}

/// Streaming decoder, mirror of [`Enc`].
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    syms: Vec<Symbol>,
    types: Vec<Type>,
    rules: Vec<RuleType>,
}

impl<'a> Dec<'a> {
    /// Opens `data`, verifying the trailing FNV-64 checksum first.
    pub fn new(data: &'a [u8]) -> Result<Dec<'a>, WireError> {
        if data.len() < 8 {
            return err("payload shorter than its checksum");
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv64(body) != stored {
            return err("checksum mismatch (truncated or corrupted payload)");
        }
        Ok(Dec {
            data: body,
            pos: 0,
            syms: Vec::new(),
            types: Vec::new(),
            rules: Vec::new(),
        })
    }

    /// True when every payload byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.data.len() {
            return err("unexpected end of payload");
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `usize` written with [`Enc::len`]. This is a decode
    /// step, not a size accessor, so there is no `is_empty` twin.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError("length overflows usize".into()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a boolean.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => err(format!("bad bool byte {b}")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError("invalid UTF-8".into()))
    }

    /// Reads a symbol.
    pub fn sym(&mut self) -> Result<Symbol, WireError> {
        match self.u8()? {
            0 => {
                let i = self.u32()? as usize;
                self.syms
                    .get(i)
                    .copied()
                    .ok_or_else(|| WireError(format!("dangling symbol backref {i}")))
            }
            1 => {
                let s = Symbol::intern(&self.str()?);
                self.syms.push(s);
                Ok(s)
            }
            b => err(format!("bad symbol tag {b}")),
        }
    }

    /// Reads a type.
    pub fn ty(&mut self) -> Result<Type, WireError> {
        match self.u8()? {
            0 => {
                let i = self.u32()? as usize;
                self.types
                    .get(i)
                    .cloned()
                    .ok_or_else(|| WireError(format!("dangling type backref {i}")))
            }
            1 => {
                let t = match self.u8()? {
                    0 => Type::Var(self.sym()?),
                    1 => Type::Int,
                    2 => Type::Bool,
                    3 => Type::Str,
                    4 => Type::Unit,
                    5 => {
                        let a = self.ty()?;
                        let b = self.ty()?;
                        Type::Arrow(Rc::new(a), Rc::new(b))
                    }
                    6 => {
                        let a = self.ty()?;
                        let b = self.ty()?;
                        Type::Prod(Rc::new(a), Rc::new(b))
                    }
                    7 => Type::List(Rc::new(self.ty()?)),
                    8 => {
                        let n = self.sym()?;
                        let k = self.u32()? as usize;
                        let mut args = Vec::with_capacity(cap(k));
                        for _ in 0..k {
                            args.push(self.ty()?);
                        }
                        Type::Con(n, args)
                    }
                    9 => {
                        let v = self.sym()?;
                        let k = self.u32()? as usize;
                        let mut args = Vec::with_capacity(cap(k));
                        for _ in 0..k {
                            args.push(self.ty()?);
                        }
                        Type::VarApp(v, args)
                    }
                    10 => Type::Ctor(TyCon::List),
                    11 => Type::Ctor(TyCon::Named(self.sym()?)),
                    12 => Type::Rule(Rc::new(self.rule()?)),
                    b => return err(format!("bad type tag {b}")),
                };
                self.types.push(t.clone());
                Ok(t)
            }
            b => err(format!("bad type memo tag {b}")),
        }
    }

    /// Reads a rule type.
    pub fn rule(&mut self) -> Result<RuleType, WireError> {
        match self.u8()? {
            0 => {
                let i = self.u32()? as usize;
                self.rules
                    .get(i)
                    .cloned()
                    .ok_or_else(|| WireError(format!("dangling rule backref {i}")))
            }
            1 => {
                let nv = self.u32()? as usize;
                let mut vars = Vec::with_capacity(cap(nv));
                for _ in 0..nv {
                    vars.push(self.sym()?);
                }
                let nc = self.u32()? as usize;
                let mut context = Vec::with_capacity(cap(nc));
                for _ in 0..nc {
                    context.push(self.rule()?);
                }
                let head = self.ty()?;
                let r = RuleType::new(vars, context, head);
                self.rules.push(r.clone());
                Ok(r)
            }
            b => err(format!("bad rule memo tag {b}")),
        }
    }

    /// Reads a λ⇒ expression.
    pub fn expr(&mut self) -> Result<Expr, WireError> {
        Ok(match self.u8()? {
            0 => Expr::Int(self.i64()?),
            1 => Expr::Bool(self.bool()?),
            2 => Expr::Str(self.str()?),
            3 => Expr::Unit,
            4 => Expr::Var(self.sym()?),
            5 => {
                let x = self.sym()?;
                let t = self.ty()?;
                let b = self.expr()?;
                Expr::Lam(x, t, Rc::new(b))
            }
            6 => {
                let f = self.expr()?;
                let a = self.expr()?;
                Expr::App(Rc::new(f), Rc::new(a))
            }
            7 => Expr::Query(self.rule()?),
            8 => {
                let r = self.rule()?;
                let b = self.expr()?;
                Expr::RuleAbs(Rc::new(r), Rc::new(b))
            }
            9 => {
                let f = self.expr()?;
                let k = self.u32()? as usize;
                let mut ts = Vec::with_capacity(cap(k));
                for _ in 0..k {
                    ts.push(self.ty()?);
                }
                Expr::TyApp(Rc::new(f), ts)
            }
            10 => {
                let f = self.expr()?;
                let k = self.u32()? as usize;
                let mut args = Vec::with_capacity(cap(k));
                for _ in 0..k {
                    let a = self.expr()?;
                    let r = self.rule()?;
                    args.push((a, r));
                }
                Expr::RuleApp(Rc::new(f), args)
            }
            11 => {
                let c = self.expr()?;
                let t = self.expr()?;
                let f = self.expr()?;
                Expr::If(Rc::new(c), Rc::new(t), Rc::new(f))
            }
            12 => {
                let op = binop_from(self.u8()?)?;
                let a = self.expr()?;
                let b = self.expr()?;
                Expr::BinOp(op, Rc::new(a), Rc::new(b))
            }
            13 => {
                let op = unop_from(self.u8()?)?;
                let a = self.expr()?;
                Expr::UnOp(op, Rc::new(a))
            }
            14 => {
                let a = self.expr()?;
                let b = self.expr()?;
                Expr::Pair(Rc::new(a), Rc::new(b))
            }
            15 => Expr::Fst(Rc::new(self.expr()?)),
            16 => Expr::Snd(Rc::new(self.expr()?)),
            17 => Expr::Nil(self.ty()?),
            18 => {
                let h = self.expr()?;
                let t = self.expr()?;
                Expr::Cons(Rc::new(h), Rc::new(t))
            }
            19 => {
                let scrut = self.expr()?;
                let nil = self.expr()?;
                let head = self.sym()?;
                let tail = self.sym()?;
                let cons = self.expr()?;
                Expr::ListCase {
                    scrut: Rc::new(scrut),
                    nil: Rc::new(nil),
                    head,
                    tail,
                    cons: Rc::new(cons),
                }
            }
            20 => {
                let x = self.sym()?;
                let t = self.ty()?;
                let b = self.expr()?;
                Expr::Fix(x, t, Rc::new(b))
            }
            21 => {
                let n = self.sym()?;
                let kt = self.u32()? as usize;
                let mut ts = Vec::with_capacity(cap(kt));
                for _ in 0..kt {
                    ts.push(self.ty()?);
                }
                let kf = self.u32()? as usize;
                let mut fields = Vec::with_capacity(cap(kf));
                for _ in 0..kf {
                    let f = self.sym()?;
                    let e = self.expr()?;
                    fields.push((f, e));
                }
                Expr::Make(n, ts, fields)
            }
            22 => {
                let e = self.expr()?;
                let f = self.sym()?;
                Expr::Proj(Rc::new(e), f)
            }
            23 => {
                let c = self.sym()?;
                let kt = self.u32()? as usize;
                let mut ts = Vec::with_capacity(cap(kt));
                for _ in 0..kt {
                    ts.push(self.ty()?);
                }
                let ka = self.u32()? as usize;
                let mut args = Vec::with_capacity(cap(ka));
                for _ in 0..ka {
                    args.push(self.expr()?);
                }
                Expr::Inject(c, ts, args)
            }
            24 => {
                let scrut = self.expr()?;
                let k = self.u32()? as usize;
                let mut arms = Vec::with_capacity(cap(k));
                for _ in 0..k {
                    let ctor = self.sym()?;
                    let nb = self.u32()? as usize;
                    let mut binders = Vec::with_capacity(cap(nb));
                    for _ in 0..nb {
                        binders.push(self.sym()?);
                    }
                    let body = self.expr()?;
                    arms.push(MatchArm {
                        ctor,
                        binders,
                        body,
                    });
                }
                Expr::Match(Rc::new(scrut), arms)
            }
            b => return err(format!("bad expr tag {b}")),
        })
    }

    /// Reads a resolution derivation.
    pub fn resolution(&mut self) -> Result<Resolution, WireError> {
        let query = self.rule()?;
        let rule = match self.u8()? {
            0 => RuleRef::Env {
                frame: self.len()?,
                index: self.len()?,
            },
            1 => RuleRef::Extension {
                level: self.len()?,
                index: self.len()?,
            },
            b => return err(format!("bad rule-ref tag {b}")),
        };
        let rule_type = self.rule()?;
        let kt = self.u32()? as usize;
        let mut type_args = Vec::with_capacity(cap(kt));
        for _ in 0..kt {
            type_args.push(self.ty()?);
        }
        let kp = self.u32()? as usize;
        let mut premises = Vec::with_capacity(cap(kp));
        for _ in 0..kp {
            premises.push(match self.u8()? {
                0 => Premise::Assumed {
                    index: self.len()?,
                    rho: self.rule()?,
                },
                1 => Premise::Derived(Box::new(self.resolution()?)),
                b => return err(format!("bad premise tag {b}")),
            });
        }
        Ok(Resolution {
            query,
            rule,
            rule_type,
            type_args,
            premises,
        })
    }

    /// Reads an overlap policy.
    pub fn overlap(&mut self) -> Result<OverlapPolicy, WireError> {
        Ok(match self.u8()? {
            0 => OverlapPolicy::Forbid,
            1 => OverlapPolicy::MostSpecific,
            b => return err(format!("bad overlap tag {b}")),
        })
    }

    /// Reads a binary operator.
    pub fn binop(&mut self) -> Result<BinOp, WireError> {
        binop_from(self.u8()?)
    }

    /// Reads a unary operator.
    pub fn unop(&mut self) -> Result<UnOp, WireError> {
        unop_from(self.u8()?)
    }

    /// Reads a resolution policy.
    pub fn policy(&mut self) -> Result<ResolutionPolicy, WireError> {
        let overlap = match self.u8()? {
            0 => OverlapPolicy::Forbid,
            1 => OverlapPolicy::MostSpecific,
            b => return err(format!("bad overlap tag {b}")),
        };
        let env_extension = self.bool()?;
        let max_depth = self.len()?;
        let cache = self.bool()?;
        Ok(ResolutionPolicy {
            overlap,
            env_extension,
            max_depth,
            cache,
        })
    }
}

fn binop_from(b: u8) -> Result<BinOp, WireError> {
    Ok(match b {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Lt,
        7 => BinOp::Le,
        8 => BinOp::And,
        9 => BinOp::Or,
        10 => BinOp::Concat,
        b => return err(format!("bad binop tag {b}")),
    })
}

fn unop_from(b: u8) -> Result<UnOp, WireError> {
    Ok(match b {
        0 => UnOp::Not,
        1 => UnOp::Neg,
        2 => UnOp::IntToStr,
        b => return err(format!("bad unop tag {b}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_strings() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(1234);
        e.u32(99_999);
        e.u64(1 << 40);
        e.i64(-42);
        e.bool(true);
        e.str("héllo");
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).unwrap();
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 1234);
        assert_eq!(d.u32().unwrap(), 99_999);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert!(d.at_end());
    }

    #[test]
    fn checksum_detects_bit_flip() {
        let mut e = Enc::new();
        e.str("payload");
        let mut bytes = e.finish();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(Dec::new(&bytes).is_err());
    }

    #[test]
    fn checksum_detects_truncation() {
        let mut e = Enc::new();
        e.u64(123);
        let bytes = e.finish();
        assert!(Dec::new(&bytes[..bytes.len() - 3]).is_err());
        assert!(Dec::new(&bytes[..4]).is_err());
    }

    #[test]
    fn roundtrip_types_share_structure() {
        let t = Type::prod(
            Type::arrow(Type::Int, Type::Bool),
            Type::arrow(Type::Int, Type::Bool),
        );
        let mut e = Enc::new();
        e.ty(&t);
        e.ty(&t);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).unwrap();
        assert_eq!(d.ty().unwrap(), t);
        assert_eq!(d.ty().unwrap(), t);
        assert!(d.at_end());
    }

    #[test]
    fn roundtrip_rule_and_expr() {
        let rho = RuleType::mono(vec![Type::Int.promote()], Type::Bool);
        let e0 = Expr::implicit(
            vec![(Expr::Int(3), Type::Int.promote())],
            Expr::query_simple(Type::Int),
            Type::Int,
        );
        let mut e = Enc::new();
        e.rule(&rho);
        e.expr(&e0);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).unwrap();
        assert_eq!(d.rule().unwrap(), rho);
        assert_eq!(d.expr().unwrap(), e0);
    }

    #[test]
    fn roundtrip_policy() {
        let p = ResolutionPolicy::default().with_most_specific();
        let mut e = Enc::new();
        e.policy(&p);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).unwrap();
        assert_eq!(d.policy().unwrap(), p);
    }
}
