//! Capture-avoiding type substitutions (Appendix "Substitutions").
//!
//! A [`TySubst`] maps type variables to types and applies to types,
//! rule types, contexts and expressions (expressions carry type
//! annotations). Application is capture-avoiding: when a substitution
//! would capture a quantified variable of a rule type, the binder is
//! renamed apart with a fresh name, exactly as the paper's footnote
//! prescribes ("quantified type variables should be renamed apart to
//! avoid variable capture").

use std::collections::BTreeMap;
use std::rc::Rc;

use crate::symbol::{fresh, Symbol};
use crate::syntax::{Expr, RuleType, TyVar, Type};

/// A finite map from type variables to types.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct TySubst {
    map: BTreeMap<TyVar, Type>,
}

impl TySubst {
    /// The empty substitution.
    pub fn new() -> TySubst {
        TySubst::default()
    }

    /// The singleton substitution `[a ↦ ty]`.
    pub fn single(a: TyVar, ty: Type) -> TySubst {
        let mut s = TySubst::new();
        s.bind(a, ty);
        s
    }

    /// The simultaneous substitution `[ᾱ ↦ τ̄]`.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn bind_all(vars: &[TyVar], types: &[Type]) -> TySubst {
        assert_eq!(vars.len(), types.len(), "substitution arity mismatch");
        let mut s = TySubst::new();
        for (v, t) in vars.iter().zip(types) {
            s.bind(*v, t.clone());
        }
        s
    }

    /// Adds the binding `a ↦ ty`. Identity bindings are dropped.
    pub fn bind(&mut self, a: TyVar, ty: Type) {
        if ty == Type::Var(a) {
            self.map.remove(&a);
        } else {
            self.map.insert(a, ty);
        }
    }

    /// Looks up the image of `a`, if bound.
    pub fn get(&self, a: TyVar) -> Option<&Type> {
        self.map.get(&a)
    }

    /// `true` if the substitution is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The domain of the substitution.
    pub fn domain(&self) -> impl Iterator<Item = TyVar> + '_ {
        self.map.keys().copied()
    }

    /// Composition: `(self ∘ other)(t) = self(other(t))`.
    pub fn compose(&self, other: &TySubst) -> TySubst {
        let mut out = TySubst::new();
        for (v, t) in &other.map {
            out.bind(*v, self.apply_type(t));
        }
        for (v, t) in &self.map {
            if !out.map.contains_key(v) {
                out.bind(*v, t.clone());
            }
        }
        out
    }

    /// Applies the substitution to a type. Variable-free (`ground`)
    /// `Rc`-shared subtrees are shared with the input rather than
    /// rebuilt — the interning arena decides groundness in O(1)
    /// amortized per pointer (see [`crate::intern`]).
    pub fn apply_type(&self, ty: &Type) -> Type {
        if self.is_empty() {
            return ty.clone();
        }
        match ty {
            Type::Var(a) => self.map.get(a).cloned().unwrap_or_else(|| ty.clone()),
            Type::Int | Type::Bool | Type::Str | Type::Unit => ty.clone(),
            Type::Arrow(a, b) => Type::Arrow(self.apply_shared(a), self.apply_shared(b)),
            Type::Prod(a, b) => Type::Prod(self.apply_shared(a), self.apply_shared(b)),
            Type::List(a) => Type::List(self.apply_shared(a)),
            Type::Con(name, args) => {
                Type::Con(*name, args.iter().map(|t| self.apply_type(t)).collect())
            }
            Type::VarApp(f, args) => {
                let args2: Vec<Type> = args.iter().map(|t| self.apply_type(t)).collect();
                match self.map.get(f) {
                    None => Type::VarApp(*f, args2),
                    Some(Type::Var(g)) => Type::VarApp(*g, args2),
                    Some(Type::Ctor(c)) => c.apply(args2),
                    // Nullary constructor applications are identified
                    // with constructor references.
                    Some(Type::Con(n, a)) if a.is_empty() => Type::Con(*n, args2),
                    Some(other) => panic!(
                        "ill-kinded substitution: applied variable `{f}` mapped to non-constructor `{other}`"
                    ),
                }
            }
            Type::Ctor(_) => ty.clone(),
            Type::Rule(r) => {
                if crate::intern::rule_is_ground_rc(r) {
                    Type::Rule(Rc::clone(r))
                } else {
                    Type::rule(self.apply_rule(r))
                }
            }
        }
    }

    /// [`apply_type`](Self::apply_type) for an `Rc`-held subtree:
    /// ground subtrees are shared, others rebuilt.
    fn apply_shared(&self, ty: &Rc<Type>) -> Rc<Type> {
        if crate::intern::is_ground_rc(ty) {
            Rc::clone(ty)
        } else {
            Rc::new(self.apply_type(ty))
        }
    }

    /// Applies the substitution to a rule type, capture-avoidingly.
    ///
    /// Bindings for the rule's own quantified variables are dropped;
    /// quantified variables that would capture a variable free in the
    /// substitution's range are renamed fresh first.
    pub fn apply_rule(&self, rho: &RuleType) -> RuleType {
        if self.is_empty() || crate::intern::rule_is_ground(rho) {
            return rho.clone();
        }
        // Restrict to the bindings relevant under this binder.
        let mut inner = TySubst::new();
        for (v, t) in &self.map {
            if !rho.vars().contains(v) {
                inner.map.insert(*v, t.clone());
            }
        }
        // Which binders would capture range variables?
        let mut range_ftv = std::collections::BTreeSet::new();
        let free = rho.ftv();
        for (v, t) in &inner.map {
            if free.contains(v) {
                t.ftv_into(&mut range_ftv);
            }
        }
        let mut new_vars = Vec::with_capacity(rho.vars().len());
        for &v in rho.vars() {
            if range_ftv.contains(&v) {
                let v2 = fresh(crate::symbol::base_name(v));
                inner.map.insert(v, Type::Var(v2));
                new_vars.push(v2);
            } else {
                new_vars.push(v);
            }
        }
        if inner.is_empty() {
            return rho.clone();
        }
        RuleType::new(
            new_vars,
            rho.context().iter().map(|r| inner.apply_rule(r)).collect(),
            inner.apply_type(rho.head()),
        )
    }

    /// Applies the substitution to every rule type of a context.
    pub fn apply_context(&self, ctx: &[RuleType]) -> Vec<RuleType> {
        ctx.iter().map(|r| self.apply_rule(r)).collect()
    }

    /// Applies the substitution to the type annotations of an
    /// expression (Appendix "Substitutions").
    pub fn apply_expr(&self, e: &Expr) -> Expr {
        if self.is_empty() {
            return e.clone();
        }
        match e {
            Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Unit | Expr::Var(_) => e.clone(),
            Expr::Lam(x, t, b) => Expr::Lam(*x, self.apply_type(t), Rc::new(self.apply_expr(b))),
            Expr::App(f, a) => Expr::App(Rc::new(self.apply_expr(f)), Rc::new(self.apply_expr(a))),
            Expr::Query(r) => Expr::Query(self.apply_rule(r)),
            Expr::RuleAbs(r, b) => {
                // Like the appendix: bindings for the rule's own
                // variables do not reach the body.
                let r2 = self.apply_rule(r);
                let mut inner = self.clone();
                for v in r.vars() {
                    inner.map.remove(v);
                }
                // Binder renames performed by apply_rule must reach
                // the body annotations too.
                for (old, new) in r.vars().iter().zip(r2.vars()) {
                    if old != new {
                        inner.map.insert(*old, Type::Var(*new));
                    }
                }
                Expr::RuleAbs(Rc::new(r2), Rc::new(inner.apply_expr(b)))
            }
            Expr::TyApp(f, ts) => Expr::TyApp(
                Rc::new(self.apply_expr(f)),
                ts.iter().map(|t| self.apply_type(t)).collect(),
            ),
            Expr::RuleApp(f, args) => Expr::RuleApp(
                Rc::new(self.apply_expr(f)),
                args.iter()
                    .map(|(e, r)| (self.apply_expr(e), self.apply_rule(r)))
                    .collect(),
            ),
            Expr::If(c, t, f) => Expr::If(
                Rc::new(self.apply_expr(c)),
                Rc::new(self.apply_expr(t)),
                Rc::new(self.apply_expr(f)),
            ),
            Expr::BinOp(op, a, b) => Expr::BinOp(
                *op,
                Rc::new(self.apply_expr(a)),
                Rc::new(self.apply_expr(b)),
            ),
            Expr::UnOp(op, a) => Expr::UnOp(*op, Rc::new(self.apply_expr(a))),
            Expr::Pair(a, b) => {
                Expr::Pair(Rc::new(self.apply_expr(a)), Rc::new(self.apply_expr(b)))
            }
            Expr::Fst(a) => Expr::Fst(Rc::new(self.apply_expr(a))),
            Expr::Snd(a) => Expr::Snd(Rc::new(self.apply_expr(a))),
            Expr::Nil(t) => Expr::Nil(self.apply_type(t)),
            Expr::Cons(h, t) => {
                Expr::Cons(Rc::new(self.apply_expr(h)), Rc::new(self.apply_expr(t)))
            }
            Expr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => Expr::ListCase {
                scrut: Rc::new(self.apply_expr(scrut)),
                nil: Rc::new(self.apply_expr(nil)),
                head: *head,
                tail: *tail,
                cons: Rc::new(self.apply_expr(cons)),
            },
            Expr::Fix(x, t, b) => Expr::Fix(*x, self.apply_type(t), Rc::new(self.apply_expr(b))),
            Expr::Make(name, args, fields) => Expr::Make(
                *name,
                args.iter().map(|t| self.apply_type(t)).collect(),
                fields
                    .iter()
                    .map(|(u, e)| (*u, self.apply_expr(e)))
                    .collect(),
            ),
            Expr::Proj(e, u) => Expr::Proj(Rc::new(self.apply_expr(e)), *u),
            Expr::Inject(c, ts, args) => Expr::Inject(
                *c,
                ts.iter().map(|t| self.apply_type(t)).collect(),
                args.iter().map(|a| self.apply_expr(a)).collect(),
            ),
            Expr::Match(scrut, arms) => Expr::Match(
                Rc::new(self.apply_expr(scrut)),
                arms.iter()
                    .map(|arm| crate::syntax::MatchArm {
                        ctor: arm.ctor,
                        binders: arm.binders.clone(),
                        body: self.apply_expr(&arm.body),
                    })
                    .collect(),
            ),
        }
    }
}

/// Renames the quantified variables of `rho` to fresh names, returning
/// the renamed rule type and the renaming used.
///
/// Lookup in the implicit environment renames rules apart before
/// matching so that rule variables never clash with query variables.
pub fn freshen_rule(rho: &RuleType) -> (RuleType, TySubst) {
    if rho.vars().is_empty() {
        return (rho.clone(), TySubst::new());
    }
    let new_vars: Vec<Symbol> = rho
        .vars()
        .iter()
        .map(|v| fresh(crate::symbol::base_name(*v)))
        .collect();
    let renaming = TySubst::bind_all(
        rho.vars(),
        &new_vars.iter().map(|v| Type::Var(*v)).collect::<Vec<_>>(),
    );
    let renamed = RuleType::new(
        new_vars,
        renaming.apply_context(rho.context()),
        renaming.apply_type(rho.head()),
    );
    (renamed, renaming)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::alpha_eq;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    #[test]
    fn substitutes_free_variables() {
        let s = TySubst::single(v("a"), Type::Int);
        assert_eq!(s.apply_type(&tv("a")), Type::Int);
        assert_eq!(s.apply_type(&tv("b")), tv("b"));
        assert_eq!(
            s.apply_type(&Type::arrow(tv("a"), tv("a"))),
            Type::arrow(Type::Int, Type::Int)
        );
    }

    #[test]
    fn bound_variables_are_untouched() {
        // [a ↦ Int] (∀a. a → a) = ∀a. a → a
        let rho = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let s = TySubst::single(v("a"), Type::Int);
        assert!(alpha_eq(&s.apply_rule(&rho), &rho));
    }

    #[test]
    fn capture_is_avoided() {
        // [b ↦ a] (∀a. b → a): the binder a must be renamed so the
        // substituted b (now a) stays free.
        let rho = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("b"), tv("a")));
        let s = TySubst::single(v("b"), tv("a"));
        let out = s.apply_rule(&rho);
        assert_eq!(out.vars().len(), 1);
        let binder = out.vars()[0];
        assert_ne!(binder, v("a"));
        assert_eq!(out.head(), &Type::arrow(tv("a"), Type::Var(binder)));
        // And the free a must really be free:
        assert!(out.ftv().contains(&v("a")));
    }

    #[test]
    fn identity_bindings_are_dropped() {
        let s = TySubst::single(v("a"), tv("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn composition_applies_right_then_left() {
        // self = [b ↦ Int], other = [a ↦ b]
        let left = TySubst::single(v("b"), Type::Int);
        let right = TySubst::single(v("a"), tv("b"));
        let comp = left.compose(&right);
        assert_eq!(comp.apply_type(&tv("a")), Type::Int);
        assert_eq!(comp.apply_type(&tv("b")), Type::Int);
    }

    #[test]
    fn substitution_recanonicalizes_contexts() {
        // {a, Int} ⇒ Unit under [a ↦ Int] collapses to {Int} ⇒ Unit.
        let rho = RuleType::new(
            vec![],
            vec![tv("a").promote(), Type::Int.promote()],
            Type::Unit,
        );
        let s = TySubst::single(v("a"), Type::Int);
        let out = s.apply_rule(&rho);
        assert_eq!(out.context().len(), 1);
        assert_eq!(out.context()[0], Type::Int.promote());
    }

    #[test]
    fn expression_annotations_are_substituted() {
        let e = Expr::lam("x", tv("a"), Expr::query_simple(tv("a")));
        let s = TySubst::single(v("a"), Type::Bool);
        let out = s.apply_expr(&e);
        match out {
            Expr::Lam(_, t, body) => {
                assert_eq!(t, Type::Bool);
                assert_eq!(*body, Expr::query_simple(Type::Bool));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rule_abs_body_sees_binder_renames() {
        // [b ↦ a] rule(∀a. {} ⇒ b → a)(λx:a. ?b…)
        // After capture-avoidance the body's `a` annotations must be
        // the *renamed* binder.
        let rho = RuleType::new(
            vec![v("a")],
            vec![tv("b").promote()],
            Type::arrow(tv("b"), tv("a")),
        );
        let body = Expr::lam("x", tv("a"), Expr::var("x"));
        let e = Expr::rule_abs(rho, body);
        let s = TySubst::single(v("b"), tv("a"));
        let out = s.apply_expr(&e);
        match out {
            Expr::RuleAbs(r, b) => {
                let binder = r.vars()[0];
                assert_ne!(binder, v("a"));
                match &*b {
                    Expr::Lam(_, t, _) => assert_eq!(*t, Type::Var(binder)),
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn freshen_rule_preserves_alpha_class() {
        let rho = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let (fresh_rho, _) = freshen_rule(&rho);
        assert!(alpha_eq(&rho, &fresh_rho));
        assert_ne!(rho.vars(), fresh_rho.vars());
    }
}
