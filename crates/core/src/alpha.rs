//! α-equivalence and canonical keys for types and rule types.
//!
//! Contexts in λ⇒ are *sets* of rule types, and the partial-resolution
//! step of rule `TyRes` computes the set difference `π′ − π`. Set
//! membership must therefore be decided modulo renaming of quantified
//! variables. This module renders types into a *canonical key*: a
//! string in which every bound variable is replaced by its binder
//! coordinates (binder depth and position). Two rule types are
//! α-equivalent iff their canonical keys are equal, and sorting by key
//! gives the deterministic context order the elaboration semantics
//! requires.

use std::fmt::Write as _;

use crate::symbol::Symbol;
use crate::syntax::{RuleType, Type};

/// Environment mapping bound variables to canonical coordinates.
struct Scope<'a> {
    parent: Option<&'a Scope<'a>>,
    depth: usize,
    vars: &'a [Symbol],
}

impl<'a> Scope<'a> {
    fn lookup(&self, v: Symbol) -> Option<(usize, usize)> {
        if let Some(ix) = self.vars.iter().position(|&w| w == v) {
            return Some((self.depth, ix));
        }
        self.parent.and_then(|p| p.lookup(v))
    }
}

fn write_type(out: &mut String, ty: &Type, scope: Option<&Scope<'_>>) {
    match ty {
        Type::Var(v) => match scope.and_then(|s| s.lookup(*v)) {
            Some((d, i)) => {
                let _ = write!(out, "#{d}.{i}");
            }
            None => {
                let _ = write!(out, "'{v}");
            }
        },
        Type::Int => out.push_str("Int"),
        Type::Bool => out.push_str("Bool"),
        Type::Str => out.push_str("Str"),
        Type::Unit => out.push_str("Unit"),
        Type::Arrow(a, b) => {
            out.push_str("(->");
            write_type(out, a, scope);
            out.push(' ');
            write_type(out, b, scope);
            out.push(')');
        }
        Type::Prod(a, b) => {
            out.push_str("(*");
            write_type(out, a, scope);
            out.push(' ');
            write_type(out, b, scope);
            out.push(')');
        }
        Type::List(a) => {
            out.push_str("(L ");
            write_type(out, a, scope);
            out.push(')');
        }
        Type::Con(name, args) if args.is_empty() => {
            // A nullary constructor application is identified with
            // the constructor reference itself (`Perfect Twice Int`
            // parses `Twice` as `Con(Twice, [])`).
            let _ = write!(out, "(K {name})");
        }
        Type::Con(name, args) => {
            let _ = write!(out, "(C {name}");
            for a in args {
                out.push(' ');
                write_type(out, a, scope);
            }
            out.push(')');
        }
        Type::VarApp(f, args) => {
            out.push_str("(V ");
            match scope.and_then(|s| s.lookup(*f)) {
                Some((d, i)) => {
                    let _ = write!(out, "#{d}.{i}");
                }
                None => {
                    let _ = write!(out, "'{f}");
                }
            }
            for a in args {
                out.push(' ');
                write_type(out, a, scope);
            }
            out.push(')');
        }
        Type::Ctor(c) => {
            let _ = write!(out, "(K {c})");
        }
        Type::Rule(r) => write_rule(out, r, scope),
    }
}

fn write_rule(out: &mut String, rho: &RuleType, scope: Option<&Scope<'_>>) {
    let depth = scope.map_or(0, |s| s.depth + 1);
    let inner = Scope {
        parent: scope,
        depth,
        vars: rho.vars(),
    };
    let _ = write!(out, "(R{} [", rho.vars().len());
    // The stored context is already canonically ordered, so keys of
    // equal rule types list premises in the same order.
    for (i, r) in rho.context().iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        write_rule(out, r, Some(&inner));
    }
    out.push_str("] ");
    write_type(out, rho.head(), Some(&inner));
    out.push(')');
}

/// Canonical key of a rule type. Equal keys ⇔ α-equivalent rule types.
///
/// # Examples
///
/// ```
/// use implicit_core::alpha::canonical_key;
/// use implicit_core::symbol::Symbol;
/// use implicit_core::syntax::{RuleType, Type};
///
/// let a = Symbol::intern("a");
/// let b = Symbol::intern("b");
/// let ra = RuleType::new(vec![a], vec![], Type::arrow(Type::Var(a), Type::Var(a)));
/// let rb = RuleType::new(vec![b], vec![], Type::arrow(Type::Var(b), Type::Var(b)));
/// assert_eq!(canonical_key(&ra), canonical_key(&rb));
/// ```
pub fn canonical_key(rho: &RuleType) -> String {
    let mut out = String::new();
    write_rule(&mut out, rho, None);
    out
}

/// Canonical key of a type (free variables keep their names).
pub fn type_key(ty: &Type) -> String {
    let mut out = String::new();
    write_type(&mut out, ty, None);
    out
}

/// α-equivalence of rule types.
pub fn alpha_eq(a: &RuleType, b: &RuleType) -> bool {
    canonical_key(a) == canonical_key(b)
}

/// α-equivalence of types.
pub fn alpha_eq_type(a: &Type, b: &Type) -> bool {
    type_key(a) == type_key(b)
}

/// Set difference `π′ − π` modulo α-equivalence, preserving the order
/// of `left`. Used by partial resolution (rule `TyRes`).
pub fn context_difference(left: &[RuleType], right: &[RuleType]) -> Vec<RuleType> {
    let right_keys: Vec<String> = right.iter().map(canonical_key).collect();
    left.iter()
        .filter(|r| !right_keys.contains(&canonical_key(r)))
        .cloned()
        .collect()
}

/// Set membership modulo α-equivalence; returns the index in
/// `context` of the entry α-equivalent to `rho`.
pub fn context_position(context: &[RuleType], rho: &RuleType) -> Option<usize> {
    let key = canonical_key(rho);
    context.iter().position(|r| canonical_key(r) == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    #[test]
    fn bound_variable_names_do_not_matter() {
        let ra = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let rb = RuleType::new(
            vec![v("b")],
            vec![tv("b").promote()],
            Type::prod(tv("b"), tv("b")),
        );
        assert!(alpha_eq(&ra, &rb));
    }

    #[test]
    fn free_variable_names_do_matter() {
        let ra = RuleType::simple(tv("a"));
        let rb = RuleType::simple(tv("b"));
        assert!(!alpha_eq(&ra, &rb));
    }

    #[test]
    fn quantifier_order_matters() {
        // ∀a b. a → b  vs  ∀a b. b → a  are not α-equivalent.
        let r1 = RuleType::new(vec![v("a"), v("b")], vec![], Type::arrow(tv("a"), tv("b")));
        let r2 = RuleType::new(vec![v("a"), v("b")], vec![], Type::arrow(tv("b"), tv("a")));
        assert!(!alpha_eq(&r1, &r2));
    }

    #[test]
    fn nested_shadowing_is_handled() {
        // ∀a. {∀a. a} ⇒ a   ≡   ∀b. {∀c. c} ⇒ b
        let inner1 = RuleType::new(vec![v("a")], vec![], tv("a"));
        let r1 = RuleType::new(vec![v("a")], vec![inner1], tv("a"));
        let inner2 = RuleType::new(vec![v("c")], vec![], tv("c"));
        let r2 = RuleType::new(vec![v("b")], vec![inner2], tv("b"));
        assert!(alpha_eq(&r1, &r2));
    }

    #[test]
    fn difference_removes_alpha_equivalent_entries() {
        let ra = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let rb = RuleType::new(vec![v("b")], vec![], Type::arrow(tv("b"), tv("b")));
        let int = Type::Int.promote();
        let diff = context_difference(&[ra, int.clone()], &[rb]);
        assert_eq!(diff, vec![int]);
    }

    #[test]
    fn position_finds_alpha_equivalent_entry() {
        let ra = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let rb = RuleType::new(vec![v("b")], vec![], Type::arrow(tv("b"), tv("b")));
        let ctx = [Type::Int.promote(), ra];
        assert_eq!(context_position(&ctx, &rb), Some(1));
        assert_eq!(context_position(&ctx, &Type::Bool.promote()), None);
    }

    #[test]
    fn distinct_heads_have_distinct_keys() {
        assert_ne!(type_key(&Type::Int), type_key(&Type::Bool));
        assert_ne!(
            type_key(&Type::arrow(Type::Int, Type::Bool)),
            type_key(&Type::arrow(Type::Bool, Type::Int))
        );
    }
}
