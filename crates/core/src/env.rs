//! Implicit environments Δ and type-directed lookup `Δ⟨τ⟩`.
//!
//! An implicit environment is a *stack of contexts* (rule sets). Each
//! rule abstraction traversed pushes one frame, so the stack mirrors
//! the lexical nesting of `implicit` scopes. Lookup respects that
//! nesting: the innermost frame is searched first and, per the paper's
//! lookup judgment, only if a frame has *no* matching rule does lookup
//! descend to the next frame. Within a frame, the `no_overlap`
//! condition requires at most one matching rule — unless the
//! *most-specific* overlap policy from the companion note on
//! overlapping rules is selected, in which case a unique most specific
//! match is chosen.
//!
//! # Fast paths
//!
//! Lookup is the inner loop of resolution, so frames carry a
//! *head-constructor index* ([`crate::intern::HeadKey`]): rules are
//! bucketed by the outermost constructor of their head when the frame
//! is pushed, and a lookup consults only the bucket matching the
//! target's head plus the bucket of variable-headed (wildcard) rules.
//! Matching itself short-circuits for quantifier-free rules with
//! ground heads via the hash-consing arena ([`crate::intern`]).
//!
//! The environment additionally owns a **memoized derivation cache**
//! for full resolutions (consulted by [`crate::resolve`] when
//! [`crate::resolve::ResolutionPolicy::cache`] is on). Entries are
//! invalidated *scope-aware*: pushing a frame drops exactly the
//! entries whose derivations looked up a head the new frame could
//! shadow, and popping drops exactly the entries whose derivations
//! used a rule from a popped frame.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::intern::{self, GroundCheck, HeadKey, RuleId};
use crate::resolve::Resolution;
use crate::subst::{freshen_rule, TySubst};
use crate::syntax::{RuleType, Type};
use crate::unify;

/// How lookup treats several matching rules within one frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OverlapPolicy {
    /// The paper's `no_overlap` condition: more than one match within
    /// a frame is an error (default).
    #[default]
    Forbid,
    /// The companion note's discipline: pick the unique most specific
    /// match; error only when no most specific match exists.
    MostSpecific,
}

/// A successful lookup `Δ⟨τ⟩ = θπ′ ⇒ τ`.
#[derive(Clone, Debug)]
pub struct LookupHit {
    /// Frame index, counted from the innermost (0 = nearest scope).
    pub frame: usize,
    /// Position of the rule within its frame.
    pub index: usize,
    /// The stored rule `∀β̄. π′ ⇒ τ′` as it appears in the frame.
    pub rule: RuleType,
    /// The matching substitution θ applied to the *freshened* copy of
    /// the rule, expressed as the instantiation of the rule's
    /// quantifiers in binder order (the `|τ̄|` of evidence `x |τ̄|`).
    pub type_args: Vec<Type>,
    /// The instantiated context `θπ′`, in the rule's stored premise
    /// order (this order matches the λ-binder order of the rule's
    /// elaboration, so evidence lines up positionally).
    pub context: Vec<RuleType>,
}

/// Lookup failure.
#[derive(Clone, Debug, PartialEq)]
pub enum LookupError {
    /// No frame contains a matching rule.
    NoMatch(Type),
    /// A frame contains several matching rules (violating
    /// `no_overlap`), or — under [`OverlapPolicy::MostSpecific`] — no
    /// unique most specific one.
    Overlap {
        /// The queried type.
        target: Type,
        /// The competing rules.
        candidates: Vec<RuleType>,
    },
    /// Matching left a quantified variable of the winning rule
    /// undetermined (an *ambiguous instantiation*, e.g. looking up
    /// `Int` against `∀α.{α → α} ⇒ Int`).
    AmbiguousInstantiation {
        /// The offending rule.
        rule: RuleType,
    },
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::NoMatch(t) => write!(f, "no rule matches type `{t}`"),
            LookupError::Overlap { target, candidates } => write!(
                f,
                "overlapping rules for `{target}`: {}",
                candidates
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LookupError::AmbiguousInstantiation { rule } => {
                write!(f, "ambiguous instantiation of rule `{rule}`")
            }
        }
    }
}

impl std::error::Error for LookupError {}

/// One environment frame: the stored rules plus a head-constructor
/// index built when the frame is pushed.
///
/// `buckets[k]` holds the (ascending) indices of rules whose head has
/// the non-wildcard key `k`; `wildcard` holds the indices of
/// variable-headed rules, which can match any target.
#[derive(Clone, Debug)]
struct Frame {
    rules: Vec<RuleType>,
    buckets: HashMap<HeadKey, Vec<usize>>,
    wildcard: Vec<usize>,
}

impl Frame {
    fn new(rules: Vec<RuleType>) -> Frame {
        let mut buckets: HashMap<HeadKey, Vec<usize>> = HashMap::new();
        let mut wildcard = Vec::new();
        for (ix, rule) in rules.iter().enumerate() {
            match intern::head_key(rule.head()) {
                HeadKey::Wildcard => wildcard.push(ix),
                key => buckets.entry(key).or_default().push(ix),
            }
        }
        Frame {
            rules,
            buckets,
            wildcard,
        }
    }

    fn specific(&self, target_key: HeadKey) -> &[usize] {
        if target_key == HeadKey::Wildcard {
            // A variable-headed target is matched only by
            // variable-headed rules.
            &[]
        } else {
            self.buckets
                .get(&target_key)
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }
    }

    /// Indices of the rules whose head could match a target with the
    /// given key, in frame order.
    fn candidate_indices(&self, target_key: HeadKey) -> Vec<usize> {
        merge_sorted(self.specific(target_key), &self.wildcard)
    }

    /// How many rules the index admits for the given target key (the
    /// per-frame work a lookup performs).
    fn candidate_count(&self, target_key: HeadKey) -> usize {
        self.specific(target_key).len() + self.wildcard.len()
    }
}

/// Merges two ascending index lists into one ascending list.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Default bound on the number of memoized derivations (FIFO
/// eviction past it).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Cumulative derivation-cache counters for one environment.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CacheCounters {
    /// Successful cache consultations.
    pub hits: u64,
    /// Consultations that found no entry.
    pub misses: u64,
    /// Entries dropped to make room (not invalidations).
    pub evictions: u64,
}

/// One memoized derivation plus the facts its invalidation needs.
#[derive(Clone, Debug)]
struct CacheEntry {
    resolution: Resolution,
    /// Environment depth at insertion time; hits at a different depth
    /// shift the derivation's innermost-first frame indices by the
    /// difference.
    cached_depth: usize,
    /// Head keys of every type the derivation looked up (dedup'd): a
    /// pushed frame invalidates the entry iff it contains a rule that
    /// could match one of these.
    target_keys: Vec<HeadKey>,
    /// Largest *absolute* frame position (0 = outermost) of any rule
    /// the derivation used: popping to a depth ≤ this position
    /// removes a used rule, invalidating the entry.
    max_abs_frame: usize,
}

#[derive(Clone, Debug)]
struct DerivationCache {
    entries: HashMap<(RuleId, OverlapPolicy), CacheEntry>,
    /// Insertion order for FIFO eviction; may contain keys whose
    /// entry was invalidated (skipped, not counted, when evicting).
    order: VecDeque<(RuleId, OverlapPolicy)>,
    capacity: usize,
    generation: u64,
    counters: CacheCounters,
}

impl Default for DerivationCache {
    fn default() -> DerivationCache {
        DerivationCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            generation: 0,
            counters: CacheCounters::default(),
        }
    }
}

impl DerivationCache {
    /// Evicts FIFO-oldest entries until at most `room_for` slots are
    /// occupied, skipping order keys whose entry is already gone.
    fn evict_to(&mut self, room_for: usize) {
        while self.entries.len() > room_for {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if self.entries.remove(&old).is_some() {
                self.counters.evictions += 1;
            }
        }
    }
}

/// The implicit environment Δ: a stack of contexts.
///
/// # Examples
///
/// ```
/// use implicit_core::env::ImplicitEnv;
/// use implicit_core::syntax::Type;
///
/// let mut env = ImplicitEnv::new();
/// env.push(vec![Type::Int.promote()]);
/// let hit = env.lookup(&Type::Int, Default::default()).unwrap();
/// assert_eq!(hit.frame, 0);
/// ```
#[derive(Clone, Default, Debug)]
pub struct ImplicitEnv {
    /// Outermost first; `frames.last()` is the nearest scope.
    frames: Vec<Frame>,
    /// Memoized derivations (interior mutability: resolution works on
    /// `&ImplicitEnv`).
    cache: RefCell<DerivationCache>,
}

impl ImplicitEnv {
    /// An empty environment.
    pub fn new() -> ImplicitEnv {
        ImplicitEnv::default()
    }

    /// An environment with a single frame.
    pub fn with_frame(frame: Vec<RuleType>) -> ImplicitEnv {
        let mut e = ImplicitEnv::new();
        e.push(frame);
        e
    }

    /// Pushes a context as the new nearest frame.
    ///
    /// Cached derivations that looked up a head the new frame could
    /// shadow are invalidated; the rest stay valid (the new frame
    /// cannot change what they resolved).
    pub fn push(&mut self, frame: Vec<RuleType>) {
        let frame = Frame::new(frame);
        {
            let mut cache = self.cache.borrow_mut();
            cache.generation += 1;
            if !cache.entries.is_empty() {
                if frame.wildcard.is_empty() {
                    let keys: Vec<HeadKey> = frame.buckets.keys().copied().collect();
                    cache.entries.retain(|_, e| {
                        !e.target_keys
                            .iter()
                            .any(|t| keys.iter().any(|c| c.admits(*t)))
                    });
                } else {
                    // A variable-headed rule can match any target.
                    cache.entries.clear();
                }
            }
        }
        self.frames.push(frame);
    }

    /// Pops the nearest frame.
    ///
    /// Cached derivations that used a rule from the popped frame (or
    /// from frames already gone) are invalidated; derivations that
    /// only used surviving frames stay valid.
    pub fn pop(&mut self) -> Option<Vec<RuleType>> {
        let frame = self.frames.pop()?;
        let new_depth = self.frames.len();
        let mut cache = self.cache.borrow_mut();
        cache.generation += 1;
        cache.entries.retain(|_, e| e.max_abs_frame < new_depth);
        drop(cache);
        Some(frame.rules)
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Iterates frames from the *innermost* outwards, paired with
    /// their innermost-first index.
    pub fn frames_innermost_first(&self) -> impl Iterator<Item = (usize, &Vec<RuleType>)> {
        self.frames
            .iter()
            .rev()
            .enumerate()
            .map(|(i, f)| (i, &f.rules))
    }

    /// Free type variables of every rule in the environment.
    pub fn ftv(&self) -> std::collections::BTreeSet<crate::syntax::TyVar> {
        let mut acc = std::collections::BTreeSet::new();
        for f in &self.frames {
            for r in &f.rules {
                r.ftv_into(&mut acc);
            }
        }
        acc
    }

    /// The lookup judgment `Δ⟨τ⟩`.
    ///
    /// Searches frames innermost-first; the first frame with at least
    /// one match decides. Within that frame the match must be unique
    /// (or uniquely most specific under
    /// [`OverlapPolicy::MostSpecific`]). Each frame consults only the
    /// rules its head index admits for the target.
    ///
    /// # Errors
    ///
    /// * [`LookupError::NoMatch`] if no frame matches.
    /// * [`LookupError::Overlap`] on ambiguous matches.
    /// * [`LookupError::AmbiguousInstantiation`] if matching leaves a
    ///   rule quantifier undetermined.
    pub fn lookup(&self, target: &Type, policy: OverlapPolicy) -> Result<LookupHit, LookupError> {
        let target_key = intern::head_key(target);
        for (frame_ix, frame) in self.frames.iter().rev().enumerate() {
            let candidates = frame.candidate_indices(target_key);
            match lookup_among(&frame.rules, &candidates, target, policy)? {
                Some((index, hit_rule, type_args, context)) => {
                    return Ok(LookupHit {
                        frame: frame_ix,
                        index,
                        rule: hit_rule,
                        type_args,
                        context,
                    });
                }
                None => continue,
            }
        }
        Err(LookupError::NoMatch(target.clone()))
    }

    /// How many rules the head index admits for `target` in the frame
    /// at innermost-first position `frame` (0 when out of range).
    /// This is the number of match attempts a lookup reaching that
    /// frame performs there.
    pub fn frame_candidate_count(&self, frame: usize, target: &Type) -> usize {
        let key = intern::head_key(target);
        self.frames
            .iter()
            .rev()
            .nth(frame)
            .map(|f| f.candidate_count(key))
            .unwrap_or(0)
    }

    /// The rule positions the head index admits for `target` in the
    /// frame at innermost-first position `frame`, in frame order —
    /// exactly the candidates a lookup reaching that frame
    /// match-tests. Empty when out of range. Used to reconstruct
    /// deterministic candidate trace events (see [`crate::trace`]).
    pub fn frame_candidate_indices(&self, frame: usize, target: &Type) -> Vec<usize> {
        let key = intern::head_key(target);
        self.frames
            .iter()
            .rev()
            .nth(frame)
            .map(|f| f.candidate_indices(key))
            .unwrap_or_default()
    }

    /// The stored rule at innermost-first frame position `frame`,
    /// index `index` (`None` when out of range).
    pub fn frame_rule(&self, frame: usize, index: usize) -> Option<&RuleType> {
        self.frames
            .iter()
            .rev()
            .nth(frame)
            .and_then(|f| f.rules.get(index))
    }

    /// Consults the derivation cache for `query` under `policy`.
    ///
    /// On a hit the memoized derivation is replayed with its
    /// innermost-first frame indices shifted by the difference
    /// between the current depth and the depth at insertion, so rule
    /// coordinates keep naming the same absolute frames.
    pub(crate) fn cache_lookup(
        &self,
        query: &RuleType,
        policy: OverlapPolicy,
    ) -> Option<Resolution> {
        let key = (intern::rule_id(query), policy);
        let depth = self.frames.len();
        let mut cache = self.cache.borrow_mut();
        match cache.entries.get(&key) {
            Some(entry) => {
                let delta = depth as isize - entry.cached_depth as isize;
                let mut res = entry.resolution.clone();
                if delta != 0 {
                    crate::resolve::shift_env_frames(&mut res, delta);
                }
                cache.counters.hits += 1;
                Some(res)
            }
            None => {
                cache.counters.misses += 1;
                None
            }
        }
    }

    /// Memoizes a successful derivation of `query` at the current
    /// depth. Skipped (silently) for derivations that reference
    /// assumption-extension frames, whose coordinates are not
    /// environment-stable.
    pub(crate) fn cache_insert(&self, query: &RuleType, policy: OverlapPolicy, res: &Resolution) {
        let depth = self.frames.len();
        let Some((target_keys, max_abs_frame)) = crate::resolve::derivation_cache_facts(res, depth)
        else {
            return;
        };
        let key = (intern::rule_id(query), policy);
        let mut cache = self.cache.borrow_mut();
        if cache.capacity == 0 {
            return;
        }
        // Drop queue keys whose entry was invalidated meanwhile.
        while let Some(front) = cache.order.front() {
            if cache.entries.contains_key(front) {
                break;
            }
            cache.order.pop_front();
        }
        if !cache.entries.contains_key(&key) {
            let room = cache.capacity - 1;
            cache.evict_to(room);
            cache.order.push_back(key);
        }
        cache.entries.insert(
            key,
            CacheEntry {
                resolution: res.clone(),
                cached_depth: depth,
                target_keys,
                max_abs_frame,
            },
        );
    }

    /// Cumulative hit/miss/eviction counters of the derivation cache.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.borrow().counters
    }

    /// Number of currently memoized derivations.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().entries.len()
    }

    /// Generation stamp: bumped by every push and pop, so two
    /// observations with the same stamp saw the same frame stack.
    pub fn cache_generation(&self) -> u64 {
        self.cache.borrow().generation
    }

    /// Rebounds the derivation cache (default
    /// [`DEFAULT_CACHE_CAPACITY`]), evicting FIFO-oldest entries if
    /// the new capacity is smaller than the current population.
    /// Capacity 0 disables memoization for this environment.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        let mut cache = self.cache.borrow_mut();
        cache.capacity = capacity;
        cache.evict_to(capacity);
        if capacity == 0 {
            cache.entries.clear();
            cache.order.clear();
        }
    }

    /// Keeps only the memoized derivations whose query id satisfies
    /// `keep`. Not an invalidation — counters and generation are
    /// untouched.
    ///
    /// This is the hook a session uses before rolling the interning
    /// arena back to an [`crate::intern::InternSnapshot`]: entries
    /// keyed by an id the truncation would orphan must go first (pass
    /// `|id| snap.covers_rule(id)`).
    pub fn retain_cache(&self, keep: impl Fn(RuleId) -> bool) {
        let mut cache = self.cache.borrow_mut();
        cache.entries.retain(|(id, _), _| keep(*id));
        cache.order.retain(|(id, _)| keep(*id));
    }

    /// Exports the derivation cache for the artifact store, oldest
    /// entry first (so an import replays the FIFO order).
    ///
    /// Only entries that are stable under the given intern watermark
    /// *and* whose derivation uses no frame at or beyond the current
    /// depth are exported: those are exactly the entries that remain
    /// valid for a rehydrated session sitting at this depth.
    pub fn export_cache(&self, snap: &crate::intern::InternSnapshot) -> Vec<CacheExport> {
        let cache = self.cache.borrow();
        let depth = self.frames.len();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for key in &cache.order {
            if !seen.insert(*key) {
                continue;
            }
            let Some(e) = cache.entries.get(key) else {
                continue;
            };
            if !snap.covers_rule(key.0) || e.max_abs_frame >= depth {
                continue;
            }
            let Some(query) = intern::rule_of(key.0) else {
                continue;
            };
            out.push(CacheExport {
                query,
                overlap: key.1,
                resolution: e.resolution.clone(),
                cached_depth: e.cached_depth,
                max_abs_frame: e.max_abs_frame,
            });
        }
        out
    }

    /// Imports derivation-cache entries exported by
    /// [`ImplicitEnv::export_cache`], preserving their insertion
    /// order and original depths (hits replay through the usual
    /// depth-shift). Entries whose invalidation facts cannot be
    /// recomputed, or that reference a frame at or beyond the current
    /// depth, are skipped — the cache only ever under-approximates.
    /// Counters and the generation stamp are untouched.
    pub fn import_cache(&self, entries: Vec<CacheExport>) {
        let depth = self.frames.len();
        let mut cache = self.cache.borrow_mut();
        if cache.capacity == 0 {
            return;
        }
        for ce in entries {
            let Some((target_keys, max_abs_frame)) =
                crate::resolve::derivation_cache_facts(&ce.resolution, ce.cached_depth)
            else {
                continue;
            };
            if max_abs_frame >= depth {
                continue;
            }
            let key = (intern::rule_id(&ce.query), ce.overlap);
            if !cache.entries.contains_key(&key) {
                let room = cache.capacity - 1;
                cache.evict_to(room);
                cache.order.push_back(key);
            }
            cache.entries.insert(
                key,
                CacheEntry {
                    resolution: ce.resolution,
                    cached_depth: ce.cached_depth,
                    target_keys,
                    max_abs_frame,
                },
            );
        }
    }

    /// Takes a watermark of the frame stack (see
    /// [`ImplicitEnv::restore`]).
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            depth: self.frames.len(),
        }
    }

    /// Pops frames until the stack is back at `snap`'s depth, running
    /// the usual scope-aware cache invalidation per pop. A snapshot
    /// deeper than the current stack is a no-op (the frames it
    /// described are already gone).
    ///
    /// Balanced callers (every push matched by a pop, as in
    /// elaboration) never need this; it is the safety net a long-lived
    /// session runs between programs so one misbehaving program
    /// cannot skew every later one.
    pub fn restore(&mut self, snap: &EnvSnapshot) {
        while self.frames.len() > snap.depth {
            self.pop();
        }
    }
}

/// One derivation-cache entry in artifact form: the interned key
/// rebuilt as a structural [`RuleType`] (intern ids are process
/// local), the derivation itself, and the depth it was memoized at.
/// Produced by [`ImplicitEnv::export_cache`], consumed by
/// [`ImplicitEnv::import_cache`].
#[derive(Clone, Debug)]
pub struct CacheExport {
    /// The memoized query (the cache key, rebuilt structurally).
    pub query: RuleType,
    /// Overlap policy the derivation was built under (part of the
    /// cache key: the same query can resolve differently per policy).
    pub overlap: OverlapPolicy,
    /// The memoized derivation.
    pub resolution: Resolution,
    /// Environment depth at insertion time.
    pub cached_depth: usize,
    /// Largest absolute frame position the derivation used — the
    /// invalidation-cone summary: an edit that changes the rule type
    /// of any implicit binding at or below this position invalidates
    /// the entry, edits strictly above it cannot.
    pub max_abs_frame: usize,
}

/// A frame-stack watermark, taken with [`ImplicitEnv::snapshot`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EnvSnapshot {
    depth: usize,
}

type FrameHit = (usize, RuleType, Vec<Type>, Vec<RuleType>);

/// Lookup within a single context (the `π⟨τ⟩` judgment).
///
/// Returns `Ok(None)` when the frame has no match (so the caller
/// descends), `Ok(Some(hit))` on a unique (or uniquely most specific)
/// match. Used for contexts that have no prebuilt index (assumption
/// frames of the env-extension variant); candidates are pre-filtered
/// by head key here instead.
pub(crate) fn lookup_in_frame(
    frame: &[RuleType],
    target: &Type,
    policy: OverlapPolicy,
) -> Result<Option<FrameHit>, LookupError> {
    let target_key = intern::head_key(target);
    let candidates: Vec<usize> = frame
        .iter()
        .enumerate()
        .filter(|(_, rule)| intern::head_key(rule.head()).admits(target_key))
        .map(|(ix, _)| ix)
        .collect();
    lookup_among(frame, &candidates, target, policy)
}

/// The shared match-and-choose core of lookup: tries only the given
/// candidate rules, freshening lazily (quantifier-free rules need no
/// freshening and an empty θ; ground heads are decided by the
/// interning arena without walking) and cloning rules only for the
/// winner or an error report.
fn lookup_among(
    rules: &[RuleType],
    candidates: &[usize],
    target: &Type,
    policy: OverlapPolicy,
) -> Result<Option<FrameHit>, LookupError> {
    // (index, freshened copy + θ); `None` for quantifier-free rules.
    let mut matches: Vec<(usize, Option<(RuleType, TySubst)>)> = Vec::new();
    for &ix in candidates {
        let rule = &rules[ix];
        if rule.vars().is_empty() {
            // No quantifiers: freshening is the identity and θ = ∅.
            let hit = match intern::ground_head_check(rule.head(), target) {
                GroundCheck::Match => true,
                GroundCheck::NoMatch if intern::is_ground(rule.head()) => false,
                _ => unify::head_matches(rule, target).is_some(),
            };
            if hit {
                matches.push((ix, None));
            }
        } else {
            // Rename quantifiers apart so they cannot clash with
            // variables of the target (the paper's footnote).
            let (fresh, _) = freshen_rule(rule);
            if let Some(theta) = unify::head_matches(&fresh, target) {
                matches.push((ix, Some((fresh, theta))));
            }
        }
    }
    let (index, instance) = match matches.len() {
        0 => return Ok(None),
        1 => matches.pop().expect("len checked"),
        _ => match policy {
            OverlapPolicy::Forbid => return Err(overlap_error(rules, &matches, target)),
            OverlapPolicy::MostSpecific => match pick_most_specific(rules, &matches) {
                Some(winner_pos) => matches.swap_remove(winner_pos),
                None => return Err(overlap_error(rules, &matches, target)),
            },
        },
    };
    match instance {
        None => {
            let rule = &rules[index];
            Ok(Some((
                index,
                rule.clone(),
                Vec::new(),
                rule.context().to_vec(),
            )))
        }
        Some((fresh, theta)) => {
            // Every quantifier must be determined by the match,
            // otherwise the instantiation is ambiguous.
            let mut type_args = Vec::with_capacity(fresh.vars().len());
            for v in fresh.vars() {
                match theta.get(*v) {
                    Some(t) => type_args.push(t.clone()),
                    None => {
                        return Err(LookupError::AmbiguousInstantiation {
                            rule: rules[index].clone(),
                        })
                    }
                }
            }
            let context = theta.apply_context(fresh.context());
            Ok(Some((index, rules[index].clone(), type_args, context)))
        }
    }
}

/// Builds the overlap error, cloning the competing rules only now
/// that the error is certain.
fn overlap_error(
    rules: &[RuleType],
    matches: &[(usize, Option<(RuleType, TySubst)>)],
    target: &Type,
) -> LookupError {
    LookupError::Overlap {
        target: target.clone(),
        candidates: matches.iter().map(|(ix, _)| rules[*ix].clone()).collect(),
    }
}

/// `ρ₁` is at least as specific as `ρ₂` when `ρ₂`'s head matches
/// `ρ₁`'s head (i.e. `ρ₁`'s head is an instance of `ρ₂`'s).
fn at_least_as_specific(r1: &RuleType, r2: &RuleType) -> bool {
    let (f1, _) = freshen_rule(r1);
    let (f2, _) = freshen_rule(r2);
    unify::match_type(f2.head(), f1.head(), f2.vars()).is_some()
}

/// Position (within `matches`) of the unique most specific rule, if
/// any. Specificity is judged on the stored rules (it is invariant
/// under freshening).
fn pick_most_specific(
    rules: &[RuleType],
    matches: &[(usize, Option<(RuleType, TySubst)>)],
) -> Option<usize> {
    'outer: for (i, (ixi, _)) in matches.iter().enumerate() {
        let ri = &rules[*ixi];
        for (j, (ixj, _)) in matches.iter().enumerate() {
            if i != j && !at_least_as_specific(ri, &rules[*ixj]) {
                continue 'outer;
            }
        }
        // ri is as specific as everything; require strictness over at
        // least the distinct ones to be *the* most specific: it must
        // not be tied with a non-α-equivalent rival that is also as
        // specific as everything.
        for (j, (ixj, _)) in matches.iter().enumerate() {
            let rj = &rules[*ixj];
            if i != j && at_least_as_specific(rj, ri) && !crate::alpha::alpha_eq(ri, rj) {
                return None; // tie between genuinely different rules
            }
        }
        return Some(i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    fn int_pair() -> Type {
        Type::prod(Type::Int, Type::Int)
    }

    #[test]
    fn innermost_frame_wins() {
        // §2 "locally and lexically scoped rules": the nearer rule
        // providing Int shadows the outer Int value.
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![
            Type::Bool.promote(),
            RuleType::mono(vec![Type::Bool.promote()], Type::Int),
        ]);
        let hit = env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.frame, 0, "nearest frame must win");
        assert_eq!(hit.context, vec![Type::Bool.promote()]);
    }

    #[test]
    fn lookup_descends_when_frame_has_no_match() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![Type::Bool.promote()]);
        let hit = env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.frame, 1);
    }

    #[test]
    fn polymorphic_rules_match_with_instantiation() {
        // ∀a.{a} ⇒ a × a looked up at Int × Int.
        let rule = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let env = ImplicitEnv::with_frame(vec![Type::Int.promote(), rule]);
        let hit = env.lookup(&int_pair(), OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.type_args, vec![Type::Int]);
        assert_eq!(hit.context, vec![Type::Int.promote()]);
    }

    #[test]
    fn overlap_within_frame_is_an_error() {
        // Two rules that can produce Int → Int (ext. report §errors).
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        let env = ImplicitEnv::with_frame(vec![r1, r2]);
        let err = env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::Forbid)
            .unwrap_err();
        assert!(matches!(err, LookupError::Overlap { .. }));
    }

    #[test]
    fn overlap_across_frames_is_fine() {
        // Companion note: stack priority disambiguates across frames.
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        let mut env = ImplicitEnv::new();
        env.push(vec![r1]);
        env.push(vec![r2.clone()]);
        let hit = env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::Forbid)
            .unwrap();
        assert_eq!(hit.frame, 0);
        assert!(crate::alpha::alpha_eq(&hit.rule, &r2));
    }

    #[test]
    fn most_specific_policy_picks_the_instance() {
        // Companion note: within one set, the most specific matching
        // rule (the one whose head is an instance of the others) wins.
        let generic = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let specific = Type::arrow(Type::Int, Type::Int).promote();
        let env = ImplicitEnv::with_frame(vec![generic.clone(), specific.clone()]);
        let hit = env
            .lookup(
                &Type::arrow(Type::Int, Type::Int),
                OverlapPolicy::MostSpecific,
            )
            .unwrap();
        assert!(crate::alpha::alpha_eq(&hit.rule, &specific));
        // A query only the generic rule matches still resolves to it.
        let hit2 = env
            .lookup(
                &Type::arrow(Type::Bool, Type::Bool),
                OverlapPolicy::MostSpecific,
            )
            .unwrap();
        assert!(crate::alpha::alpha_eq(&hit2.rule, &generic));
        // Under the paper policy the overlapping query is an error.
        assert!(env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::Forbid)
            .is_err());
    }

    #[test]
    fn most_specific_policy_still_fails_on_incomparable_rules() {
        // {∀a. a → Int, ∀a. Int → a}: neither is most specific.
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        let env = ImplicitEnv::with_frame(vec![r1, r2]);
        let err = env
            .lookup(
                &Type::arrow(Type::Int, Type::Int),
                OverlapPolicy::MostSpecific,
            )
            .unwrap_err();
        assert!(matches!(err, LookupError::Overlap { .. }));
    }

    #[test]
    fn ambiguous_instantiation_is_detected() {
        // ext. report: ∀a. {a → a} ⇒ Int queried at Int leaves a
        // undetermined.
        let rule = RuleType::new(
            vec![v("a")],
            vec![Type::arrow(tv("a"), tv("a")).promote()],
            Type::Int,
        );
        let env = ImplicitEnv::with_frame(vec![rule]);
        let err = env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap_err();
        assert!(matches!(err, LookupError::AmbiguousInstantiation { .. }));
    }

    #[test]
    fn no_match_reports_the_type() {
        let env = ImplicitEnv::with_frame(vec![Type::Bool.promote()]);
        assert_eq!(
            env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap_err(),
            LookupError::NoMatch(Type::Int)
        );
    }

    #[test]
    fn duplicate_monomorphic_rules_overlap() {
        // ext. report: {Int:1, Int:2} ⊢ ?Int is ambiguous. At the
        // type level both entries collapse to one in a *canonical*
        // context, so model them in separate sets of one frame is not
        // possible — instead two α-equal entries in one frame come
        // from distinct `with` arguments; keep them as given.
        let frame = vec![Type::Int.promote(), Type::Int.promote()];
        let err = lookup_in_frame(&frame, &Type::Int, OverlapPolicy::Forbid).unwrap_err();
        assert!(matches!(err, LookupError::Overlap { .. }));
    }

    #[test]
    fn rule_typed_heads_can_be_looked_up() {
        // A rule *producing* a rule: {Bool} ⇒ ({Int} ⇒ Int × Int).
        // Looking up the rule-typed head must match under binders.
        let produced = Type::rule(RuleType::mono(
            vec![Type::Int.promote()],
            Type::prod(Type::Int, Type::Int),
        ));
        let producer = RuleType::mono(vec![Type::Bool.promote()], produced.clone());
        let env = ImplicitEnv::with_frame(vec![producer]);
        let hit = env.lookup(&produced, OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.context, vec![Type::Bool.promote()]);
    }

    #[test]
    fn head_index_admits_only_matching_candidates() {
        // A frame of list-headed rules plus one wildcard rule: a Prod
        // target must try only the wildcard; a List target tries all
        // list rules plus the wildcard.
        let wild = RuleType::new(vec![v("a")], vec![], tv("a"));
        let frame = vec![
            Type::list(Type::Int).promote(),
            Type::list(Type::Bool).promote(),
            wild,
        ];
        let env = ImplicitEnv::with_frame(frame);
        assert_eq!(env.frame_candidate_count(0, &int_pair()), 1);
        assert_eq!(env.frame_candidate_count(0, &Type::list(Type::Int)), 3);
        assert_eq!(env.frame_candidate_count(0, &tv("zq")), 1);
        // Out-of-range frames admit nothing.
        assert_eq!(env.frame_candidate_count(7, &Type::Int), 0);
    }

    #[test]
    fn retain_cache_purges_by_query_id() {
        use crate::resolve::{resolve, ResolutionPolicy};

        let mut env = ImplicitEnv::new();
        env.push(vec![
            Type::Int.promote(),
            RuleType::mono(vec![Type::Int.promote()], int_pair()),
        ]);
        let policy = ResolutionPolicy::paper();
        resolve(&env, &Type::Int.promote(), &policy).unwrap();
        resolve(&env, &int_pair().promote(), &policy).unwrap();
        assert_eq!(env.cache_len(), 2);

        let keep = intern::rule_id(&Type::Int.promote());
        env.retain_cache(|id| id == keep);
        assert_eq!(env.cache_len(), 1);
        let before = env.cache_counters();
        resolve(&env, &Type::Int.promote(), &policy).unwrap();
        assert_eq!(env.cache_counters().hits, before.hits + 1);

        env.retain_cache(|_| false);
        assert_eq!(env.cache_len(), 0);
    }

    #[test]
    fn restore_pops_back_to_the_snapshot_depth() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        let snap = env.snapshot();
        env.push(vec![Type::Bool.promote()]);
        env.push(vec![Type::Str.promote()]);
        env.restore(&snap);
        assert_eq!(env.depth(), 1);
        assert_eq!(
            env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap().frame,
            0
        );
        assert!(env.lookup(&Type::Bool, OverlapPolicy::Forbid).is_err());
        // Restoring to a deeper-than-current snapshot is a no-op.
        let deep = snap;
        env.pop();
        env.restore(&deep);
        assert_eq!(env.depth(), 0);
    }

    #[test]
    fn indexed_lookup_agrees_with_slice_lookup() {
        let rules = vec![
            Type::list(Type::Int).promote(),
            RuleType::new(vec![v("a")], vec![], Type::prod(tv("a"), tv("a"))),
            Type::Bool.promote(),
        ];
        let env = ImplicitEnv::with_frame(rules.clone());
        for target in [
            Type::list(Type::Int),
            Type::prod(Type::Str, Type::Str),
            Type::Bool,
            Type::Int,
        ] {
            let via_env = env.lookup(&target, OverlapPolicy::Forbid);
            let via_slice = lookup_in_frame(&rules, &target, OverlapPolicy::Forbid);
            match (via_env, via_slice) {
                (Ok(hit), Ok(Some((index, rule, type_args, context)))) => {
                    assert_eq!(hit.index, index);
                    assert_eq!(hit.rule, rule);
                    assert_eq!(hit.type_args, type_args);
                    assert_eq!(hit.context, context);
                }
                (Err(LookupError::NoMatch(_)), Ok(None)) => {}
                (e, s) => panic!("disagreement on {target}: {e:?} vs {s:?}"),
            }
        }
    }
}
