//! Implicit environments Δ and type-directed lookup `Δ⟨τ⟩`.
//!
//! An implicit environment is a *stack of contexts* (rule sets). Each
//! rule abstraction traversed pushes one frame, so the stack mirrors
//! the lexical nesting of `implicit` scopes. Lookup respects that
//! nesting: the innermost frame is searched first and, per the paper's
//! lookup judgment, only if a frame has *no* matching rule does lookup
//! descend to the next frame. Within a frame, the `no_overlap`
//! condition requires at most one matching rule — unless the
//! *most-specific* overlap policy from the companion note on
//! overlapping rules is selected, in which case a unique most specific
//! match is chosen.

use std::fmt;

use crate::subst::{freshen_rule, TySubst};
use crate::syntax::{RuleType, Type};
use crate::unify;

/// How lookup treats several matching rules within one frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlapPolicy {
    /// The paper's `no_overlap` condition: more than one match within
    /// a frame is an error (default).
    #[default]
    Forbid,
    /// The companion note's discipline: pick the unique most specific
    /// match; error only when no most specific match exists.
    MostSpecific,
}

/// A successful lookup `Δ⟨τ⟩ = θπ′ ⇒ τ`.
#[derive(Clone, Debug)]
pub struct LookupHit {
    /// Frame index, counted from the innermost (0 = nearest scope).
    pub frame: usize,
    /// Position of the rule within its frame.
    pub index: usize,
    /// The stored rule `∀β̄. π′ ⇒ τ′` as it appears in the frame.
    pub rule: RuleType,
    /// The matching substitution θ applied to the *freshened* copy of
    /// the rule, expressed as the instantiation of the rule's
    /// quantifiers in binder order (the `|τ̄|` of evidence `x |τ̄|`).
    pub type_args: Vec<Type>,
    /// The instantiated context `θπ′`, in the rule's stored premise
    /// order (this order matches the λ-binder order of the rule's
    /// elaboration, so evidence lines up positionally).
    pub context: Vec<RuleType>,
}

/// Lookup failure.
#[derive(Clone, Debug, PartialEq)]
pub enum LookupError {
    /// No frame contains a matching rule.
    NoMatch(Type),
    /// A frame contains several matching rules (violating
    /// `no_overlap`), or — under [`OverlapPolicy::MostSpecific`] — no
    /// unique most specific one.
    Overlap {
        /// The queried type.
        target: Type,
        /// The competing rules.
        candidates: Vec<RuleType>,
    },
    /// Matching left a quantified variable of the winning rule
    /// undetermined (an *ambiguous instantiation*, e.g. looking up
    /// `Int` against `∀α.{α → α} ⇒ Int`).
    AmbiguousInstantiation {
        /// The offending rule.
        rule: RuleType,
    },
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::NoMatch(t) => write!(f, "no rule matches type `{t}`"),
            LookupError::Overlap { target, candidates } => write!(
                f,
                "overlapping rules for `{target}`: {}",
                candidates
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LookupError::AmbiguousInstantiation { rule } => {
                write!(f, "ambiguous instantiation of rule `{rule}`")
            }
        }
    }
}

impl std::error::Error for LookupError {}

/// The implicit environment Δ: a stack of contexts.
///
/// # Examples
///
/// ```
/// use implicit_core::env::ImplicitEnv;
/// use implicit_core::syntax::Type;
///
/// let mut env = ImplicitEnv::new();
/// env.push(vec![Type::Int.promote()]);
/// let hit = env.lookup(&Type::Int, Default::default()).unwrap();
/// assert_eq!(hit.frame, 0);
/// ```
#[derive(Clone, Default, Debug)]
pub struct ImplicitEnv {
    /// Outermost first; `frames.last()` is the nearest scope.
    frames: Vec<Vec<RuleType>>,
}

impl ImplicitEnv {
    /// An empty environment.
    pub fn new() -> ImplicitEnv {
        ImplicitEnv::default()
    }

    /// An environment with a single frame.
    pub fn with_frame(frame: Vec<RuleType>) -> ImplicitEnv {
        let mut e = ImplicitEnv::new();
        e.push(frame);
        e
    }

    /// Pushes a context as the new nearest frame.
    pub fn push(&mut self, frame: Vec<RuleType>) {
        self.frames.push(frame);
    }

    /// Pops the nearest frame.
    pub fn pop(&mut self) -> Option<Vec<RuleType>> {
        self.frames.pop()
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Iterates frames from the *innermost* outwards, paired with
    /// their innermost-first index.
    pub fn frames_innermost_first(&self) -> impl Iterator<Item = (usize, &Vec<RuleType>)> {
        self.frames.iter().rev().enumerate()
    }

    /// Free type variables of every rule in the environment.
    pub fn ftv(&self) -> std::collections::BTreeSet<crate::syntax::TyVar> {
        let mut acc = std::collections::BTreeSet::new();
        for f in &self.frames {
            for r in f {
                r.ftv_into(&mut acc);
            }
        }
        acc
    }

    /// The lookup judgment `Δ⟨τ⟩`.
    ///
    /// Searches frames innermost-first; the first frame with at least
    /// one match decides. Within that frame the match must be unique
    /// (or uniquely most specific under
    /// [`OverlapPolicy::MostSpecific`]).
    ///
    /// # Errors
    ///
    /// * [`LookupError::NoMatch`] if no frame matches.
    /// * [`LookupError::Overlap`] on ambiguous matches.
    /// * [`LookupError::AmbiguousInstantiation`] if matching leaves a
    ///   rule quantifier undetermined.
    pub fn lookup(&self, target: &Type, policy: OverlapPolicy) -> Result<LookupHit, LookupError> {
        for (frame_ix, frame) in self.frames_innermost_first() {
            match lookup_in_frame(frame, target, policy)? {
                Some((index, hit_rule, type_args, context)) => {
                    return Ok(LookupHit {
                        frame: frame_ix,
                        index,
                        rule: hit_rule,
                        type_args,
                        context,
                    });
                }
                None => continue,
            }
        }
        Err(LookupError::NoMatch(target.clone()))
    }
}

type FrameHit = (usize, RuleType, Vec<Type>, Vec<RuleType>);

/// Lookup within a single context (the `π⟨τ⟩` judgment).
///
/// Returns `Ok(None)` when the frame has no match (so the caller
/// descends), `Ok(Some(hit))` on a unique (or uniquely most specific)
/// match.
pub(crate) fn lookup_in_frame(
    frame: &[RuleType],
    target: &Type,
    policy: OverlapPolicy,
) -> Result<Option<FrameHit>, LookupError> {
    // Collect all matches: (index, freshened rule, θ).
    let mut matches: Vec<(usize, RuleType, TySubst)> = Vec::new();
    for (ix, rule) in frame.iter().enumerate() {
        // Rename quantifiers apart so they cannot clash with
        // variables of the target (the paper's footnote).
        let (fresh, _) = freshen_rule(rule);
        if let Some(theta) = unify::head_matches(&fresh, target) {
            matches.push((ix, fresh, theta));
        }
    }
    let chosen = match matches.len() {
        0 => return Ok(None),
        1 => matches.pop().expect("len checked"),
        _ => match policy {
            OverlapPolicy::Forbid => {
                return Err(LookupError::Overlap {
                    target: target.clone(),
                    candidates: matches.into_iter().map(|(ix, ..)| frame[ix].clone()).collect(),
                })
            }
            OverlapPolicy::MostSpecific => {
                match pick_most_specific(&matches) {
                    Some(winner_pos) => matches.swap_remove(winner_pos),
                    None => {
                        return Err(LookupError::Overlap {
                            target: target.clone(),
                            candidates: matches
                                .into_iter()
                                .map(|(ix, ..)| frame[ix].clone())
                                .collect(),
                        })
                    }
                }
            }
        },
    };
    let (index, fresh, theta) = chosen;
    // Every quantifier must be determined by the match, otherwise the
    // instantiation is ambiguous.
    let mut type_args = Vec::with_capacity(fresh.vars().len());
    for v in fresh.vars() {
        match theta.get(*v) {
            Some(t) => type_args.push(t.clone()),
            None => {
                return Err(LookupError::AmbiguousInstantiation {
                    rule: frame[index].clone(),
                })
            }
        }
    }
    let context = theta.apply_context(fresh.context());
    Ok(Some((index, frame[index].clone(), type_args, context)))
}

/// `ρ₁` is at least as specific as `ρ₂` when `ρ₂`'s head matches
/// `ρ₁`'s head (i.e. `ρ₁`'s head is an instance of `ρ₂`'s).
fn at_least_as_specific(r1: &RuleType, r2: &RuleType) -> bool {
    let (f1, _) = freshen_rule(r1);
    let (f2, _) = freshen_rule(r2);
    unify::match_type(f2.head(), f1.head(), f2.vars()).is_some()
}

/// Index (within `matches`) of the unique most specific rule, if any.
fn pick_most_specific(matches: &[(usize, RuleType, TySubst)]) -> Option<usize> {
    'outer: for (i, (_, ri, _)) in matches.iter().enumerate() {
        for (j, (_, rj, _)) in matches.iter().enumerate() {
            if i != j && !at_least_as_specific(ri, rj) {
                continue 'outer;
            }
        }
        // ri is as specific as everything; require strictness over at
        // least the distinct ones to be *the* most specific: it must
        // not be tied with a non-α-equivalent rival that is also as
        // specific as everything.
        for (j, (_, rj, _)) in matches.iter().enumerate() {
            if i != j
                && at_least_as_specific(rj, ri)
                && !crate::alpha::alpha_eq(ri, rj)
            {
                return None; // tie between genuinely different rules
            }
        }
        return Some(i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    fn int_pair() -> Type {
        Type::prod(Type::Int, Type::Int)
    }

    #[test]
    fn innermost_frame_wins() {
        // §2 "locally and lexically scoped rules": the nearer rule
        // providing Int shadows the outer Int value.
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![
            Type::Bool.promote(),
            RuleType::mono(vec![Type::Bool.promote()], Type::Int),
        ]);
        let hit = env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.frame, 0, "nearest frame must win");
        assert_eq!(hit.context, vec![Type::Bool.promote()]);
    }

    #[test]
    fn lookup_descends_when_frame_has_no_match() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![Type::Bool.promote()]);
        let hit = env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.frame, 1);
    }

    #[test]
    fn polymorphic_rules_match_with_instantiation() {
        // ∀a.{a} ⇒ a × a looked up at Int × Int.
        let rule = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let env = ImplicitEnv::with_frame(vec![Type::Int.promote(), rule]);
        let hit = env.lookup(&int_pair(), OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.type_args, vec![Type::Int]);
        assert_eq!(hit.context, vec![Type::Int.promote()]);
    }

    #[test]
    fn overlap_within_frame_is_an_error() {
        // Two rules that can produce Int → Int (ext. report §errors).
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        let env = ImplicitEnv::with_frame(vec![r1, r2]);
        let err = env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::Forbid)
            .unwrap_err();
        assert!(matches!(err, LookupError::Overlap { .. }));
    }

    #[test]
    fn overlap_across_frames_is_fine() {
        // Companion note: stack priority disambiguates across frames.
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        let mut env = ImplicitEnv::new();
        env.push(vec![r1]);
        env.push(vec![r2.clone()]);
        let hit = env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::Forbid)
            .unwrap();
        assert_eq!(hit.frame, 0);
        assert!(crate::alpha::alpha_eq(&hit.rule, &r2));
    }

    #[test]
    fn most_specific_policy_picks_the_instance() {
        // Companion note: within one set, the most specific matching
        // rule (the one whose head is an instance of the others) wins.
        let generic = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let specific = Type::arrow(Type::Int, Type::Int).promote();
        let env = ImplicitEnv::with_frame(vec![generic.clone(), specific.clone()]);
        let hit = env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::MostSpecific)
            .unwrap();
        assert!(crate::alpha::alpha_eq(&hit.rule, &specific));
        // A query only the generic rule matches still resolves to it.
        let hit2 = env
            .lookup(&Type::arrow(Type::Bool, Type::Bool), OverlapPolicy::MostSpecific)
            .unwrap();
        assert!(crate::alpha::alpha_eq(&hit2.rule, &generic));
        // Under the paper policy the overlapping query is an error.
        assert!(env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::Forbid)
            .is_err());
    }

    #[test]
    fn most_specific_policy_still_fails_on_incomparable_rules() {
        // {∀a. a → Int, ∀a. Int → a}: neither is most specific.
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        let env = ImplicitEnv::with_frame(vec![r1, r2]);
        let err = env
            .lookup(&Type::arrow(Type::Int, Type::Int), OverlapPolicy::MostSpecific)
            .unwrap_err();
        assert!(matches!(err, LookupError::Overlap { .. }));
    }

    #[test]
    fn ambiguous_instantiation_is_detected() {
        // ext. report: ∀a. {a → a} ⇒ Int queried at Int leaves a
        // undetermined.
        let rule = RuleType::new(
            vec![v("a")],
            vec![Type::arrow(tv("a"), tv("a")).promote()],
            Type::Int,
        );
        let env = ImplicitEnv::with_frame(vec![rule]);
        let err = env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap_err();
        assert!(matches!(err, LookupError::AmbiguousInstantiation { .. }));
    }

    #[test]
    fn no_match_reports_the_type() {
        let env = ImplicitEnv::with_frame(vec![Type::Bool.promote()]);
        assert_eq!(
            env.lookup(&Type::Int, OverlapPolicy::Forbid).unwrap_err(),
            LookupError::NoMatch(Type::Int)
        );
    }

    #[test]
    fn duplicate_monomorphic_rules_overlap() {
        // ext. report: {Int:1, Int:2} ⊢ ?Int is ambiguous. At the
        // type level both entries collapse to one in a *canonical*
        // context, so model them in separate sets of one frame is not
        // possible — instead two α-equal entries in one frame come
        // from distinct `with` arguments; keep them as given.
        let frame = vec![Type::Int.promote(), Type::Int.promote()];
        let err = lookup_in_frame(&frame, &Type::Int, OverlapPolicy::Forbid).unwrap_err();
        assert!(matches!(err, LookupError::Overlap { .. }));
    }

    #[test]
    fn rule_typed_heads_can_be_looked_up() {
        // A rule *producing* a rule: {Bool} ⇒ ({Int} ⇒ Int × Int).
        // Looking up the rule-typed head must match under binders.
        let produced = Type::rule(RuleType::mono(
            vec![Type::Int.promote()],
            Type::prod(Type::Int, Type::Int),
        ));
        let producer = RuleType::mono(vec![Type::Bool.promote()], produced.clone());
        let env = ImplicitEnv::with_frame(vec![producer]);
        let hit = env.lookup(&produced, OverlapPolicy::Forbid).unwrap();
        assert_eq!(hit.context, vec![Type::Bool.promote()]);
    }
}
