//! Resolution: the judgment `Δ ⊢r ρ` (rule `TyRes`, §3.2).
//!
//! Resolution is the novel mechanism of λ⇒. Given a queried rule type
//! `ρ = ∀ᾱ. π ⇒ τ`, rule `TyRes`:
//!
//! 1. looks up `Δ⟨τ⟩ = π′ ⇒ τ` — a rule whose head matches the
//!    queried head, respecting nested scopes;
//! 2. recursively resolves `π′ − π`: premises of the found rule that
//!    the query does not itself assume. Premises in `π ∩ π′` stay
//!    abstract — this is **partial resolution**.
//!
//! Simple types are handled by promotion (`τ` as `∀∅.{} ⇒ τ`), which
//! makes `TyRes` behave like recursive type-class resolution; proper
//! rule types match whole rules, possibly partially resolved. The
//! unified rule subsumes both `SimpleRes` and `RuleRes` of §3.2.
//!
//! The resolver returns a full [`Resolution`] *derivation* rather than
//! a boolean: elaboration (crate `implicit-elab`) turns the derivation
//! into System F evidence, the operational semantics replays it at
//! runtime, and tests inspect it.
//!
//! Two deliberately rejected alternatives from §3.2 are available as
//! [`ResolutionPolicy`] switches so that their trade-offs can be
//! reproduced: backtracking is *never* performed (the paper rejects
//! it outright), but the *environment-extension* variant — which
//! resolves `Char ⇒ Int` from `{Char ⇒ Int}` by assuming the queried
//! context during recursive resolution — can be enabled with
//! [`ResolutionPolicy::with_env_extension`].

use std::fmt;

use crate::alpha;
use crate::env::{ImplicitEnv, LookupError, OverlapPolicy};
use crate::syntax::{RuleType, Type};
use crate::trace::{NullSink, TraceEvent, TraceSink};

/// Resolution configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResolutionPolicy {
    /// Overlap handling within one frame.
    pub overlap: OverlapPolicy,
    /// Enables the §3.2 environment-extension variant ("we have
    /// considered another definition of resolution"): recursive
    /// premises may use the queried context as additional nearest
    /// assumptions. Off by default, as in the paper.
    pub env_extension: bool,
    /// Recursion fuel. The termination conditions of Appendix A
    /// guarantee termination for checked environments; the fuel turns
    /// non-termination of unchecked environments (e.g. the
    /// `{Char}⇒Int, {Int}⇒Char` loop) into an error.
    pub max_depth: usize,
    /// Consults the environment's memoized derivation cache
    /// (on by default). Resolution is deterministic, so a cache hit
    /// returns a derivation identical to the one a fresh search would
    /// build — modulo one observable: a hit does not re-consume
    /// recursion fuel, so a derivation cached under ample fuel can be
    /// replayed under a tighter [`max_depth`](Self::max_depth).
    /// Ignored (off) under the environment-extension variant, whose
    /// assumption frames are not environment-stable.
    pub cache: bool,
}

impl Default for ResolutionPolicy {
    fn default() -> ResolutionPolicy {
        ResolutionPolicy {
            overlap: OverlapPolicy::Forbid,
            env_extension: false,
            max_depth: 512,
            cache: true,
        }
    }
}

impl ResolutionPolicy {
    /// The paper's resolution: no overlap, no environment extension.
    pub fn paper() -> ResolutionPolicy {
        ResolutionPolicy::default()
    }

    /// Enables most-specific overlap resolution (companion note).
    pub fn with_most_specific(mut self) -> ResolutionPolicy {
        self.overlap = OverlapPolicy::MostSpecific;
        self
    }

    /// Enables the environment-extension variant of §3.2.
    pub fn with_env_extension(mut self) -> ResolutionPolicy {
        self.env_extension = true;
        self
    }

    /// Overrides the recursion fuel.
    pub fn with_max_depth(mut self, depth: usize) -> ResolutionPolicy {
        self.max_depth = depth;
        self
    }

    /// Disables the memoized derivation cache (e.g. to measure raw
    /// resolution cost, or to rule the cache out while debugging).
    pub fn without_cache(mut self) -> ResolutionPolicy {
        self.cache = false;
        self
    }
}

/// Which rule a resolution step used.
#[derive(Clone, PartialEq, Debug)]
pub enum RuleRef {
    /// A rule from the implicit environment: `frame` counts from the
    /// innermost scope, `index` is the rule's position in its frame.
    Env {
        /// Frame index (0 = innermost).
        frame: usize,
        /// Rule position within the frame.
        index: usize,
    },
    /// A rule from an *assumption frame* pushed by the
    /// environment-extension policy; `level` is the recursion level
    /// that pushed the frame (0 = the original query). Only produced
    /// when [`ResolutionPolicy::env_extension`] is on; elaboration
    /// rejects derivations containing these.
    Extension {
        /// Recursion level whose queried context was assumed.
        level: usize,
        /// Premise position within that context.
        index: usize,
    },
}

/// Evidence for one premise of the rule used by a resolution step.
#[derive(Clone, PartialEq, Debug)]
pub enum Premise {
    /// The premise is α-equivalent to a premise of the *query's* own
    /// context and stays abstract (partial resolution): `index` is
    /// its position in the queried context.
    Assumed {
        /// Position in the queried context π.
        index: usize,
        /// The premise type.
        rho: RuleType,
    },
    /// The premise was recursively resolved.
    Derived(Box<Resolution>),
}

impl Premise {
    /// The premise's rule type.
    pub fn rho(&self) -> &RuleType {
        match self {
            Premise::Assumed { rho, .. } => rho,
            Premise::Derived(r) => &r.query,
        }
    }
}

/// A resolution derivation: one `TyRes` application and the evidence
/// for its recursive premises.
#[derive(Clone, PartialEq, Debug)]
pub struct Resolution {
    /// The resolved query `∀ᾱ. π ⇒ τ`.
    pub query: RuleType,
    /// The environment rule used.
    pub rule: RuleRef,
    /// The stored rule as found (pre-instantiation).
    pub rule_type: RuleType,
    /// Instantiation of the rule's quantifiers, in binder order.
    pub type_args: Vec<Type>,
    /// Evidence for the instantiated context `θπ′`, in the rule's
    /// stored premise order (aligned with the rule's elaborated
    /// λ-binders).
    pub premises: Vec<Premise>,
}

impl Resolution {
    /// Number of `TyRes` steps in the derivation (1 + recursive
    /// steps). Useful for tests and benchmarks.
    pub fn steps(&self) -> usize {
        1 + self
            .premises
            .iter()
            .map(|p| match p {
                Premise::Assumed { .. } => 0,
                Premise::Derived(r) => r.steps(),
            })
            .sum::<usize>()
    }

    /// `true` if any step was *partial* (kept an assumed premise while
    /// recursively resolving others).
    pub fn is_partial(&self) -> bool {
        let here = self
            .premises
            .iter()
            .any(|p| matches!(p, Premise::Assumed { .. }))
            && self
                .premises
                .iter()
                .any(|p| matches!(p, Premise::Derived(_)));
        here || self.premises.iter().any(|p| match p {
            Premise::Derived(r) => r.is_partial(),
            Premise::Assumed { .. } => false,
        })
    }

    /// Renders the derivation as an indented, human-readable
    /// explanation — useful for diagnostics and teaching.
    ///
    /// ```text
    /// (Int * Int) * (Int * Int)  ⇐ rule #0 of scope 0 [Int * Int]
    ///   Int * Int  ⇐ rule #0 of scope 0 [Int]
    ///     Int  ⇐ rule #0 of scope 1
    /// ```
    pub fn explain(&self) -> String {
        fn go(res: &Resolution, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&res.query.to_string());
            match res.rule {
                RuleRef::Env { frame, index } => {
                    out.push_str(&format!("  ⇐ rule #{index} of scope {frame}"));
                }
                RuleRef::Extension { level, index } => {
                    out.push_str(&format!("  ⇐ assumption #{index} at level {level}"));
                }
            }
            if !res.type_args.is_empty() {
                out.push_str(" [");
                for (i, t) in res.type_args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&t.to_string());
                }
                out.push(']');
            }
            out.push('\n');
            for p in &res.premises {
                match p {
                    Premise::Assumed { rho, .. } => {
                        out.push_str(&"  ".repeat(depth + 1));
                        out.push_str(&format!("{rho}  (assumed — partial resolution)\n"));
                    }
                    Premise::Derived(inner) => go(inner, depth + 1, out),
                }
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }

    /// Aggregate work counters for this derivation against `env`
    /// (post-hoc; resolution itself is not instrumented). Lookup
    /// consults, in every frame up to and including the hit frame,
    /// only the rules the frame's head-constructor index admits for
    /// the queried head (the hit frame is consulted completely among
    /// those, for the `no_overlap` check), so `rules_tried` reflects
    /// the matching work the derivation caused. The `cache_*` fields
    /// mirror `env`'s cumulative derivation-cache counters at the
    /// time of the call.
    pub fn stats(&self, env: &crate::env::ImplicitEnv) -> ResolutionStats {
        let mut stats = ResolutionStats::default();
        fn go(res: &Resolution, env: &crate::env::ImplicitEnv, stats: &mut ResolutionStats) {
            stats.steps += 1;
            if let RuleRef::Env { frame, .. } = res.rule {
                stats.frames_scanned += frame + 1;
                let target = res.query.head();
                stats.rules_tried += (0..=frame)
                    .map(|f| env.frame_candidate_count(f, target))
                    .sum::<usize>();
                stats.max_frame_reached = stats.max_frame_reached.max(frame);
            }
            for p in &res.premises {
                match p {
                    Premise::Assumed { .. } => stats.assumed += 1,
                    Premise::Derived(inner) => go(inner, env, stats),
                }
            }
        }
        go(self, env, &mut stats);
        let counters = env.cache_counters();
        stats.cache_hits = counters.hits;
        stats.cache_misses = counters.misses;
        stats.cache_evictions = counters.evictions;
        stats
    }

    /// `true` if the derivation uses an extension-frame rule and thus
    /// cannot be elaborated.
    pub fn uses_extension(&self) -> bool {
        matches!(self.rule, RuleRef::Extension { .. })
            || self.premises.iter().any(|p| match p {
                Premise::Derived(r) => r.uses_extension(),
                Premise::Assumed { .. } => false,
            })
    }
}

/// Aggregate work counters for a resolution derivation (see
/// [`Resolution::stats`]).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ResolutionStats {
    /// `TyRes` applications.
    pub steps: usize,
    /// Frames visited across all lookups.
    pub frames_scanned: usize,
    /// Candidate rules match-tested across all lookups.
    pub rules_tried: usize,
    /// Premises discharged by partial resolution.
    pub assumed: usize,
    /// Deepest frame index any lookup descended to.
    pub max_frame_reached: usize,
    /// Derivation-cache hits of the environment (cumulative).
    pub cache_hits: u64,
    /// Derivation-cache misses of the environment (cumulative).
    pub cache_misses: u64,
    /// Derivation-cache evictions of the environment (cumulative).
    pub cache_evictions: u64,
}

/// Resolution failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ResolveError {
    /// Lookup failed at some (sub-)query.
    Lookup {
        /// The sub-query whose lookup failed.
        query: RuleType,
        /// The underlying lookup error.
        error: LookupError,
    },
    /// The recursion fuel ran out — the environment admits a
    /// non-terminating resolution (see Appendix A).
    DepthExceeded {
        /// The original query.
        query: RuleType,
        /// The configured fuel.
        max_depth: usize,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Lookup { query, error } => {
                write!(f, "cannot resolve `{query}`: {error}")
            }
            ResolveError::DepthExceeded { query, max_depth } => write!(
                f,
                "resolution of `{query}` exceeded depth {max_depth} (non-terminating rules?)"
            ),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Resolves `query` against `env` (judgment `Δ ⊢r ρ`).
///
/// # Errors
///
/// Returns [`ResolveError::Lookup`] when some (sub-)query has no,
/// or no unambiguous, matching rule, and
/// [`ResolveError::DepthExceeded`] when recursion exceeds the policy's
/// fuel.
///
/// # Examples
///
/// ```
/// use implicit_core::env::ImplicitEnv;
/// use implicit_core::resolve::{resolve, ResolutionPolicy};
/// use implicit_core::symbol::Symbol;
/// use implicit_core::syntax::{RuleType, Type};
///
/// // §3.2 Example: Int; ∀α.{α} ⇒ α×α ⊢r Int × Int
/// let a = Symbol::intern("alpha");
/// let mut env = ImplicitEnv::new();
/// env.push(vec![Type::Int.promote()]);
/// env.push(vec![RuleType::new(
///     vec![a],
///     vec![Type::Var(a).promote()],
///     Type::prod(Type::Var(a), Type::Var(a)),
/// )]);
/// let query = Type::prod(Type::Int, Type::Int).promote();
/// let res = resolve(&env, &query, &ResolutionPolicy::paper()).unwrap();
/// assert_eq!(res.steps(), 2); // pair rule, then the Int value
/// ```
pub fn resolve(
    env: &ImplicitEnv,
    query: &RuleType,
    policy: &ResolutionPolicy,
) -> Result<Resolution, ResolveError> {
    resolve_with(env, query, policy, &mut NullSink)
}

/// [`resolve`], reporting the search as structured
/// [`TraceEvent`]s through `sink`.
///
/// The recursion is generic over the sink so that the default
/// [`NullSink`] path ([`resolve`]) monomorphizes every
/// `if sink.enabled()` guard away; enabled tracing typically passes
/// `&mut dyn TraceSink`. A derivation-cache hit emits
/// [`TraceEvent::CacheHit`] and then *replays* the cached derivation
/// through the same emission helpers a fresh search uses, so traces
/// differ between cache-off and cache-warm runs only in the
/// `CacheHit`/`CacheMiss` markers.
///
/// # Errors
///
/// As for [`resolve`].
pub fn resolve_with<S: TraceSink + ?Sized>(
    env: &ImplicitEnv,
    query: &RuleType,
    policy: &ResolutionPolicy,
    sink: &mut S,
) -> Result<Resolution, ResolveError> {
    let mut assumptions: Vec<Vec<RuleType>> = Vec::new();
    resolve_rec(env, query, policy, policy.max_depth, &mut assumptions, sink)
}

fn resolve_rec<S: TraceSink + ?Sized>(
    env: &ImplicitEnv,
    query: &RuleType,
    policy: &ResolutionPolicy,
    fuel: usize,
    assumptions: &mut Vec<Vec<RuleType>>,
    sink: &mut S,
) -> Result<Resolution, ResolveError> {
    let depth = policy.max_depth - fuel;
    if sink.enabled() {
        sink.event(TraceEvent::QueryEnter {
            query: query.to_string(),
            depth,
            measure: query.head().size(),
        });
    }
    if fuel == 0 {
        let err = ResolveError::DepthExceeded {
            query: query.clone(),
            max_depth: policy.max_depth,
        };
        if sink.enabled() {
            sink.event(TraceEvent::QueryFailed {
                query: query.to_string(),
                error: err.to_string(),
            });
        }
        return Err(err);
    }

    // Memoization: resolution is deterministic and — without the
    // extension variant — never changes the environment mid-search,
    // so every (query, overlap policy) pair resolves the same way
    // until a push/pop invalidates it. Sub-queries hit this path too,
    // so a cached derivation short-circuits whole subtrees.
    let use_cache = policy.cache && !policy.env_extension;
    if use_cache {
        if let Some(res) = env.cache_lookup(query, policy.overlap) {
            if sink.enabled() {
                sink.event(TraceEvent::CacheHit {
                    query: query.to_string(),
                });
                replay_events(env, &res, depth, sink, false);
            }
            return Ok(res);
        }
        if sink.enabled() {
            sink.event(TraceEvent::CacheMiss {
                query: query.to_string(),
            });
        }
    }

    let target = query.head();

    // Under the environment-extension policy, assumption frames are
    // nearer than the environment (the variant rule reads Δ,π̄).
    let hit = match lookup_with_assumptions(env, target, policy, assumptions) {
        Ok(hit) => hit,
        Err(error) => {
            let err = ResolveError::Lookup {
                query: query.clone(),
                error,
            };
            if sink.enabled() {
                sink.event(TraceEvent::QueryFailed {
                    query: query.to_string(),
                    error: err.to_string(),
                });
            }
            return Err(err);
        }
    };

    let (rule_ref, rule_type, type_args, inst_context) = hit;
    if sink.enabled() {
        emit_lookup_events(env, query, &rule_ref, &rule_type, sink);
    }

    // Partial resolution: premises α-present in the queried context
    // stay abstract; the rest are resolved recursively.
    let mut premises = Vec::with_capacity(inst_context.len());
    for rho in &inst_context {
        match alpha::context_position(query.context(), rho) {
            Some(index) => {
                if sink.enabled() {
                    sink.event(TraceEvent::PremiseAssumed {
                        index,
                        rho: rho.to_string(),
                    });
                }
                premises.push(Premise::Assumed {
                    index,
                    rho: rho.clone(),
                });
            }
            None => {
                let r = if policy.env_extension {
                    assumptions.push(query.context().to_vec());
                    let r = resolve_rec(env, rho, policy, fuel - 1, assumptions, sink);
                    assumptions.pop();
                    r
                } else {
                    resolve_rec(env, rho, policy, fuel - 1, assumptions, sink)
                };
                match r {
                    Ok(inner) => premises.push(Premise::Derived(Box::new(inner))),
                    Err(err) => {
                        // Close this query's span too: every
                        // QueryEnter is matched by QueryResolved or
                        // QueryFailed, even through propagation.
                        if sink.enabled() {
                            sink.event(TraceEvent::QueryFailed {
                                query: query.to_string(),
                                error: err.to_string(),
                            });
                        }
                        return Err(err);
                    }
                }
            }
        }
    }

    let res = Resolution {
        query: query.clone(),
        rule: rule_ref,
        rule_type,
        type_args,
        premises,
    };
    if use_cache {
        env.cache_insert(query, policy.overlap, &res);
    }
    if sink.enabled() {
        sink.event(TraceEvent::QueryResolved {
            query: query.to_string(),
            steps: res.steps(),
        });
    }
    Ok(res)
}

/// Emits the candidate-scan events a successful lookup performed:
/// in every frame up to and including the hit frame, each rule the
/// head index admits for the query head — the committed one as
/// [`TraceEvent::CandidateAdmitted`], the rest as
/// [`TraceEvent::CandidateRejected`] (no match, or lost the
/// most-specific comparison). Reconstructed from the environment
/// post-hoc (the same enumeration [`Resolution::stats`] counts), so
/// the fresh-search path and the cache-replay path emit identical
/// streams by construction.
fn emit_lookup_events<S: TraceSink + ?Sized>(
    env: &ImplicitEnv,
    query: &RuleType,
    rule: &RuleRef,
    rule_type: &RuleType,
    sink: &mut S,
) {
    let target = query.head();
    match *rule {
        RuleRef::Env { frame, index } => {
            for f in 0..=frame {
                for ix in env.frame_candidate_indices(f, target) {
                    if f == frame && ix == index {
                        sink.event(TraceEvent::CandidateAdmitted {
                            frame: f,
                            index: ix,
                            rule: rule_type.to_string(),
                        });
                    } else {
                        let r = env
                            .frame_rule(f, ix)
                            .map(|r| r.to_string())
                            .unwrap_or_default();
                        sink.event(TraceEvent::CandidateRejected {
                            frame: f,
                            index: ix,
                            rule: r,
                        });
                    }
                }
            }
        }
        RuleRef::Extension { level, index } => {
            sink.event(TraceEvent::AssumptionUsed {
                level,
                index,
                rule: rule_type.to_string(),
            });
        }
    }
}

/// Replays a (cached) derivation as the event stream a fresh search
/// would have produced, minus the cache markers: candidate scans,
/// assumed premises, recursive sub-queries, and the final
/// `QueryResolved`. `enter` controls whether the node's own
/// `QueryEnter` is emitted (the cache-hit site has already emitted
/// it before consulting the cache).
fn replay_events<S: TraceSink + ?Sized>(
    env: &ImplicitEnv,
    res: &Resolution,
    depth: usize,
    sink: &mut S,
    enter: bool,
) {
    if enter {
        sink.event(TraceEvent::QueryEnter {
            query: res.query.to_string(),
            depth,
            measure: res.query.head().size(),
        });
    }
    emit_lookup_events(env, &res.query, &res.rule, &res.rule_type, sink);
    for p in &res.premises {
        match p {
            Premise::Assumed { index, rho } => sink.event(TraceEvent::PremiseAssumed {
                index: *index,
                rho: rho.to_string(),
            }),
            Premise::Derived(inner) => replay_events(env, inner, depth + 1, sink, true),
        }
    }
    sink.event(TraceEvent::QueryResolved {
        query: res.query.to_string(),
        steps: res.steps(),
    });
}

/// Shifts every innermost-first frame index of the derivation's
/// [`RuleRef::Env`] references by `delta`: a derivation cached at
/// depth `d` and replayed at depth `d + delta` keeps naming the same
/// absolute frames. Extension references are depth-independent (and
/// never cached anyway).
pub(crate) fn shift_env_frames(res: &mut Resolution, delta: isize) {
    if let RuleRef::Env { frame, .. } = &mut res.rule {
        *frame = (*frame as isize + delta) as usize;
    }
    for p in &mut res.premises {
        if let Premise::Derived(inner) = p {
            shift_env_frames(inner, delta);
        }
    }
}

/// The facts the derivation cache needs to invalidate an entry:
/// the head key of every type the derivation looked up (a pushed
/// frame kills the entry iff it holds a rule admitting one of them)
/// and the largest *absolute* frame position — 0 = outermost — of
/// any rule used (a pop below it kills the entry). Returns `None`
/// for derivations that are not environment-stable: those using an
/// assumption-frame rule of the extension variant, or referencing a
/// frame deeper than the current environment.
pub(crate) fn derivation_cache_facts(
    res: &Resolution,
    depth: usize,
) -> Option<(Vec<crate::intern::HeadKey>, usize)> {
    fn go(
        res: &Resolution,
        depth: usize,
        keys: &mut Vec<crate::intern::HeadKey>,
        max_abs: &mut usize,
    ) -> bool {
        match res.rule {
            RuleRef::Env { frame, .. } => {
                if frame >= depth {
                    return false;
                }
                let key = crate::intern::head_key(res.query.head());
                if !keys.contains(&key) {
                    keys.push(key);
                }
                *max_abs = (*max_abs).max(depth - 1 - frame);
            }
            RuleRef::Extension { .. } => return false,
        }
        res.premises.iter().all(|p| match p {
            Premise::Assumed { .. } => true,
            Premise::Derived(inner) => go(inner, depth, keys, max_abs),
        })
    }
    let mut keys = Vec::new();
    let mut max_abs = 0;
    if go(res, depth, &mut keys, &mut max_abs) {
        Some((keys, max_abs))
    } else {
        None
    }
}

/// `true` iff every rule `res` committed to lives in the outermost
/// `prelude_depth` frames of an environment currently `depth` frames
/// deep (and no policy extension or dangling frame reference is
/// involved). This is the stability condition a session's dictionary
/// inline cache checks before answering an implicit-query site with
/// promoted evidence: a program that shadows a prelude rule produces
/// a derivation referencing its own (deeper) frame, which fails this
/// predicate and forces a miss.
pub fn derivation_within(res: &Resolution, depth: usize, prelude_depth: usize) -> bool {
    derivation_cache_facts(res, depth).is_some_and(|(_, max_abs)| max_abs < prelude_depth)
}

type RawHit = (RuleRef, RuleType, Vec<Type>, Vec<RuleType>);

fn lookup_with_assumptions(
    env: &ImplicitEnv,
    target: &Type,
    policy: &ResolutionPolicy,
    assumptions: &[Vec<RuleType>],
) -> Result<RawHit, LookupError> {
    if policy.env_extension {
        // Assumption frames, innermost (most recently pushed) first.
        for (level_rev, frame) in assumptions.iter().rev().enumerate() {
            let level = assumptions.len() - 1 - level_rev;
            if let Some((index, rule, args, ctx)) =
                crate::env::lookup_in_frame(frame, target, policy.overlap)?
            {
                return Ok((RuleRef::Extension { level, index }, rule, args, ctx));
            }
        }
    }
    let hit = env.lookup(target, policy.overlap)?;
    Ok((
        RuleRef::Env {
            frame: hit.frame,
            index: hit.index,
        },
        hit.rule,
        hit.type_args,
        hit.context,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    fn pair_rule() -> RuleType {
        // ∀a. {a} ⇒ a × a
        RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        )
    }

    fn p() -> ResolutionPolicy {
        ResolutionPolicy::paper()
    }

    #[test]
    fn simple_recursive_resolution() {
        // §3.2 Example 1.
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![pair_rule()]);
        let res = resolve(&env, &Type::prod(Type::Int, Type::Int).promote(), &p()).unwrap();
        assert_eq!(res.steps(), 2);
        assert!(!res.is_partial());
        // First step used the pair rule from the innermost frame.
        assert_eq!(res.rule, RuleRef::Env { frame: 0, index: 0 });
        assert_eq!(res.type_args, vec![Type::Int]);
    }

    #[test]
    fn rule_type_resolution_without_recursion() {
        // §3.2 Example 2: querying {Int} ⇒ Int × Int matches the rule
        // wholesale; the Int premise stays abstract.
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![pair_rule()]);
        let query = RuleType::mono(vec![Type::Int.promote()], Type::prod(Type::Int, Type::Int));
        let res = resolve(&env, &query, &p()).unwrap();
        assert_eq!(res.steps(), 1, "no recursive resolution may happen");
        assert_eq!(res.premises.len(), 1);
        assert!(matches!(res.premises[0], Premise::Assumed { index: 0, .. }));
    }

    #[test]
    fn partial_resolution() {
        // §3.2 Example 3: Bool; ∀α.{Bool,α} ⇒ α×α ⊢r {Int} ⇒ Int×Int.
        let rule = RuleType::new(
            vec![v("a")],
            vec![Type::Bool.promote(), tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Bool.promote()]);
        env.push(vec![rule]);
        let query = RuleType::mono(vec![Type::Int.promote()], Type::prod(Type::Int, Type::Int));
        let res = resolve(&env, &query, &p()).unwrap();
        assert!(res.is_partial());
        assert_eq!(res.steps(), 2); // Bool resolved, Int assumed
        let kinds: Vec<bool> = res
            .premises
            .iter()
            .map(|pr| matches!(pr, Premise::Assumed { .. }))
            .collect();
        assert_eq!(kinds.iter().filter(|b| **b).count(), 1);
        assert_eq!(kinds.iter().filter(|b| !**b).count(), 1);
    }

    #[test]
    fn polymorphic_query_resolves_against_polymorphic_rule() {
        // §2: ?(∀α. {α} ⇒ α×α) with the same rule in scope.
        let env = ImplicitEnv::with_frame(vec![pair_rule()]);
        let res = resolve(&env, &pair_rule(), &p()).unwrap();
        assert_eq!(res.steps(), 1);
        assert!(matches!(res.premises[0], Premise::Assumed { .. }));
    }

    #[test]
    fn no_backtracking_gets_stuck() {
        // §3.2 "semantic resolution": Char; Char⇒Int; Bool⇒Int ⊬ Int.
        // (Char modeled as Str.)
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Str.promote()]);
        env.push(vec![RuleType::mono(vec![Type::Str.promote()], Type::Int)]);
        env.push(vec![RuleType::mono(vec![Type::Bool.promote()], Type::Int)]);
        let err = resolve(&env, &Type::Int.promote(), &p()).unwrap_err();
        match err {
            ResolveError::Lookup { query, .. } => assert_eq!(query, Type::Bool.promote()),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn exact_context_match_needs_no_extension() {
        // §3.2: Char; Char⇒Int; Bool⇒Int ⊢r Char⇒Int. With Bool⇒Int
        // as the *nearest* rule, lookup commits to it and its Bool
        // premise cannot be discharged: both the paper rule and the
        // extension variant fail (no backtracking, ever).
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Str.promote()]);
        env.push(vec![RuleType::mono(vec![Type::Str.promote()], Type::Int)]);
        env.push(vec![RuleType::mono(vec![Type::Bool.promote()], Type::Int)]);
        let query = RuleType::mono(vec![Type::Str.promote()], Type::Int);
        assert!(resolve(&env, &query, &p()).is_err());
        assert!(resolve(&env, &query, &p().with_env_extension()).is_err());
        // With Char⇒Int nearest, already the *paper* rule succeeds —
        // the premise is α-equal to the queried context and stays
        // assumed (partial resolution subsumes this case).
        let mut env2 = ImplicitEnv::new();
        env2.push(vec![RuleType::mono(vec![Type::Bool.promote()], Type::Int)]);
        env2.push(vec![RuleType::mono(vec![Type::Str.promote()], Type::Int)]);
        let res = resolve(&env2, &query, &p()).unwrap();
        assert_eq!(res.steps(), 1);
        assert!(matches!(res.premises[0], Premise::Assumed { .. }));
    }

    #[test]
    fn env_extension_uses_assumptions_recursively() {
        // Where the §3.2 extension variant genuinely adds power:
        // recursive sub-goals may consume the queried context. With
        // only the pair rule in scope, {Int} ⇒ (Int×Int)×(Int×Int)
        // needs the assumed Int *two levels down* — the paper rule
        // cannot reach it (assumptions are only consulted by the
        // α-equality test at the top), the extension rule can.
        let env = ImplicitEnv::with_frame(vec![pair_rule()]);
        let query = RuleType::mono(
            vec![Type::Int.promote()],
            Type::prod(
                Type::prod(Type::Int, Type::Int),
                Type::prod(Type::Int, Type::Int),
            ),
        );
        assert!(resolve(&env, &query, &p()).is_err());
        let res = resolve(&env, &query, &p().with_env_extension()).unwrap();
        assert!(res.uses_extension());
        fn find_extension(r: &Resolution) -> bool {
            matches!(r.rule, RuleRef::Extension { .. })
                || r.premises.iter().any(|pr| match pr {
                    Premise::Derived(d) => find_extension(d),
                    Premise::Assumed { .. } => false,
                })
        }
        assert!(find_extension(&res));
    }

    #[test]
    fn nontermination_is_cut_by_fuel() {
        // Appendix A: {Char}⇒Int and {Int}⇒Char loop forever.
        let mut env = ImplicitEnv::new();
        env.push(vec![
            RuleType::mono(vec![Type::Str.promote()], Type::Int),
            RuleType::mono(vec![Type::Int.promote()], Type::Str),
        ]);
        let err = resolve(&env, &Type::Int.promote(), &p().with_max_depth(64)).unwrap_err();
        assert!(matches!(err, ResolveError::DepthExceeded { .. }));
    }

    #[test]
    fn higher_order_plus_polymorphic_composes() {
        // §2: Int and ∀α.{α}⇒α×α resolve ((Int×Int)×(Int×Int)).
        let env = ImplicitEnv::with_frame(vec![Type::Int.promote(), pair_rule()]);
        let t = Type::prod(
            Type::prod(Type::Int, Type::Int),
            Type::prod(Type::Int, Type::Int),
        );
        let res = resolve(&env, &t.promote(), &p()).unwrap();
        // pair rule at (Int×Int), then pair rule at Int, then Int.
        assert_eq!(res.steps(), 3);
    }

    #[test]
    fn derivation_records_scope_of_each_step() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]); // frame 1 (outer)
        env.push(vec![pair_rule()]); // frame 0 (inner)
        let res = resolve(&env, &Type::prod(Type::Int, Type::Int).promote(), &p()).unwrap();
        assert_eq!(res.rule, RuleRef::Env { frame: 0, index: 0 });
        match &res.premises[0] {
            Premise::Derived(inner) => {
                assert_eq!(inner.rule, RuleRef::Env { frame: 1, index: 0 });
            }
            other => panic!("unexpected premise {other:?}"),
        }
    }

    #[test]
    fn explain_renders_the_derivation_tree() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![pair_rule()]);
        let res = resolve(&env, &Type::prod(Type::Int, Type::Int).promote(), &p()).unwrap();
        let text = res.explain();
        assert!(text.contains("Int * Int"), "got {text}");
        assert!(text.contains("scope 0"), "got {text}");
        assert!(text.contains("scope 1"), "got {text}");
        assert!(text.contains("[Int]"), "got {text}");
    }

    #[test]
    fn stats_count_steps_and_scanning_work() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]); // frame 1 (outer)
        env.push(vec![pair_rule()]); // frame 0 (inner)
        let res = resolve(&env, &Type::prod(Type::Int, Type::Int).promote(), &p()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, 2);
        assert_eq!(stats.assumed, 0);
        assert_eq!(stats.max_frame_reached, 1);
        // Pair rule: scans frame 0 (1 admitted rule). Int: scans
        // frames 0 and 1, but frame 0's head index admits nothing for
        // Int (its one rule is Prod-headed), so only 1 rule is tried.
        assert_eq!(stats.frames_scanned, 1 + 2);
        assert_eq!(stats.rules_tried, 2);
    }

    #[test]
    fn stats_count_assumed_premises() {
        let rule = RuleType::new(
            vec![v("a")],
            vec![Type::Bool.promote(), tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Bool.promote()]);
        env.push(vec![rule]);
        let query = RuleType::mono(vec![Type::Int.promote()], Type::prod(Type::Int, Type::Int));
        let res = resolve(&env, &query, &p()).unwrap();
        assert_eq!(res.stats(&env).assumed, 1);
    }

    #[test]
    fn resolve_error_displays_helpfully() {
        let env = ImplicitEnv::new();
        let err = resolve(&env, &Type::Int.promote(), &p()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cannot resolve"), "got: {msg}");
        assert!(msg.contains("Int"), "got: {msg}");
    }
}
