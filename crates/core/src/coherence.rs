//! Coherence and overlap analysis (companion note "Resolution with
//! Overlapping Rules").
//!
//! A program is *coherent* when every query has a single, lexically
//! nearest match that is the same statically and at runtime. Overlap
//! within one rule set threatens coherence; the companion note
//! develops three conditions on rule sets:
//!
//! * **uniqueness of instances** — no two distinct rules can be made
//!   to produce the same type by any substitution
//!   (`∀ρ₁≠ρ₂, θ. θ|ρ₁| ≠ θ|ρ₂|`);
//! * **existence of a most specific rule** — whenever two rules both
//!   match a query, some rule in the set matches exactly their
//!   common instance;
//! * **type safety / stability** — a resolution that succeeds for a
//!   general type must still succeed after substitution
//!   (`Δ ⊢r ρ ⟹ θΔ ⊢r θρ`).
//!
//! The first two are decidable syntactic checks implemented here; the
//! third is exposed as a checkable property ([`stable_under`]) that
//! the test suite exercises with concrete and random substitutions —
//! including the note's counterexample `{∀β.β→β, Int→Int} ⊢r β→β`,
//! which is *not* stable and must be flagged.

use std::fmt;

use crate::env::ImplicitEnv;
use crate::resolve::{resolve, ResolutionPolicy};
use crate::subst::{freshen_rule, TySubst};
use crate::syntax::{RuleType, Type};
use crate::unify;

/// A coherence violation within one rule set.
#[derive(Clone, Debug, PartialEq)]
pub enum CoherenceError {
    /// Two distinct rules have unifiable heads: some substitution
    /// makes both produce the same type.
    OverlappingInstances {
        /// First rule.
        left: RuleType,
        /// Second rule.
        right: RuleType,
        /// A witness type both heads can produce.
        witness: Type,
    },
    /// Two rules overlap but the set contains no rule matching
    /// exactly their most general common instance.
    NoMostSpecific {
        /// First rule.
        left: RuleType,
        /// Second rule.
        right: RuleType,
        /// Their most general common instance.
        meet: Type,
    },
    /// A query with free type variables could resolve differently
    /// once those variables are instantiated (extended report:
    /// "its single nearest match is not the one used at runtime").
    UnstableQuery {
        /// The query.
        query: RuleType,
        /// The statically chosen rule.
        winner: RuleType,
        /// A rule in a nearer-or-equal scope that could match some
        /// instance of the query.
        rival: RuleType,
    },
}

impl fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceError::OverlappingInstances {
                left,
                right,
                witness,
            } => write!(
                f,
                "rules `{left}` and `{right}` overlap: both can produce `{witness}`"
            ),
            CoherenceError::NoMostSpecific { left, right, meet } => write!(
                f,
                "rules `{left}` and `{right}` overlap at `{meet}` but no rule in the set is \
                 most specific there"
            ),
            CoherenceError::UnstableQuery {
                query,
                winner,
                rival,
            } => write!(
                f,
                "query `{query}` is incoherent: it statically resolves to `{winner}` but \
                 `{rival}` could match an instantiation of the query at runtime"
            ),
        }
    }
}

impl std::error::Error for CoherenceError {}

/// `nonoverlap(ρ₁, ρ₂)`: no substitution can make the two rules
/// produce a value of the same type. Decided by unifying the
/// (freshened) heads.
pub fn nonoverlap(r1: &RuleType, r2: &RuleType) -> bool {
    common_instance(r1, r2).is_none()
}

/// The most general common instance of two rule heads, if the heads
/// overlap. Quantified variables on both sides are flexible; free
/// variables are flexible too (the note quantifies over *all*
/// substitutions, including ones instantiating free variables).
pub fn common_instance(r1: &RuleType, r2: &RuleType) -> Option<Type> {
    let (f1, _) = freshen_rule(r1);
    let (f2, _) = freshen_rule(r2);
    let theta = unify::mgu(f1.head(), f2.head())?;
    Some(theta.apply_type(f1.head()))
}

/// `distinct(π₁, π₂)`: every rule of `π₁` is nonoverlapping with
/// every rule of `π₂`.
pub fn distinct(c1: &[RuleType], c2: &[RuleType]) -> bool {
    c1.iter().all(|r1| c2.iter().all(|r2| nonoverlap(r1, r2)))
}

/// Uniqueness of instances: checks that no two distinct rules of the
/// set can produce the same type under any substitution.
///
/// # Errors
///
/// Returns [`CoherenceError::OverlappingInstances`] with a witness.
pub fn unique_instances(context: &[RuleType]) -> Result<(), CoherenceError> {
    for (i, r1) in context.iter().enumerate() {
        for r2 in &context[i + 1..] {
            if let Some(witness) = common_instance(r1, r2) {
                return Err(CoherenceError::OverlappingInstances {
                    left: r1.clone(),
                    right: r2.clone(),
                    witness,
                });
            }
        }
    }
    Ok(())
}

/// Existence of a most specific rule: for every overlapping pair, the
/// set must contain a rule whose head is (an α-variant of) the pair's
/// most general common instance.
///
/// This is the condition that licenses the
/// [`OverlapPolicy::MostSpecific`](crate::env::OverlapPolicy) lookup:
/// under it, every query that matches several rules has a unique
/// best match.
///
/// # Errors
///
/// Returns [`CoherenceError::NoMostSpecific`] for the first
/// uncovered overlap.
pub fn exists_most_specific(context: &[RuleType]) -> Result<(), CoherenceError> {
    for (i, r1) in context.iter().enumerate() {
        for r2 in &context[i + 1..] {
            let Some(meet) = common_instance(r1, r2) else {
                continue;
            };
            let covered = context.iter().any(|r| head_is_variant_of(r, &meet));
            if !covered {
                return Err(CoherenceError::NoMostSpecific {
                    left: r1.clone(),
                    right: r2.clone(),
                    meet,
                });
            }
        }
    }
    Ok(())
}

/// Is the rule's head an α-variant of `ty` (matches it in both
/// directions)?
fn head_is_variant_of(rho: &RuleType, ty: &Type) -> bool {
    let (f, _) = freshen_rule(rho);
    // f.head matches ty…
    let Some(theta) = unify::match_type(f.head(), ty, f.vars()) else {
        return false;
    };
    // …by a renaming only (every quantifier maps to a distinct
    // variable).
    let mut seen = std::collections::BTreeSet::new();
    f.vars().iter().all(|v| match theta.get(*v) {
        None => true,
        Some(Type::Var(w)) => seen.insert(*w),
        Some(_) => false,
    })
}

/// The *deferred* existence check from the note's "Static Condition
/// Checking": unlike [`exists_most_specific`], free type variables of
/// the context are treated as substitutable — the overlap between
/// `Eq a` and `Eq b` collapses under `[b ↦ a]` onto `Eq a` itself, so
/// contexts like `{Eq a, Eq b}` (the ubiquitous pair-instance shape)
/// are accepted, while `{∀a.a→Int, ∀a.Int→a}` is still rejected
/// (after any substitution the meet `Int→Int` is covered by neither
/// *pattern*).
///
/// # Errors
///
/// Returns [`CoherenceError::NoMostSpecific`] for the first overlap
/// whose most general common instance no context entry can equal.
pub fn exists_deferred(context: &[RuleType]) -> Result<(), CoherenceError> {
    for (i, r1) in context.iter().enumerate() {
        for r2 in &context[i + 1..] {
            let (f1, _) = freshen_rule(r1);
            let (f2, _) = freshen_rule(r2);
            let flex1: std::collections::BTreeSet<_> = f1.vars().iter().copied().collect();
            let flex2: std::collections::BTreeSet<_> = f2.vars().iter().copied().collect();
            let Some(sigma) = unify::mgu(f1.head(), f2.head()) else {
                continue;
            };
            let meet = sigma.apply_type(f1.head());
            // Residual pair-quantifier variables in the meet are
            // flexible on the meet's side.
            let meet_flex: std::collections::BTreeSet<_> = meet
                .ftv()
                .into_iter()
                .filter(|v| flex1.contains(v) || flex2.contains(v))
                .collect();
            let covered = context.iter().any(|r| {
                let (fr, _) = freshen_rule(r);
                // σ may substitute the entry's *free* variables (they
                // are shared program variables); its quantifiers are
                // fresh and untouched.
                let head = sigma.apply_type(fr.head());
                let head_flex: std::collections::BTreeSet<_> = fr.vars().iter().copied().collect();
                pattern_variants(&head, &head_flex, &meet, &meet_flex)
            });
            if !covered {
                return Err(CoherenceError::NoMostSpecific {
                    left: r1.clone(),
                    right: r2.clone(),
                    meet,
                });
            }
        }
    }
    Ok(())
}

/// Are two type *patterns* equal up to renaming of their respective
/// flexible variables? Rigid (shared free) variables must coincide
/// exactly.
fn pattern_variants(
    left: &Type,
    left_flex: &std::collections::BTreeSet<crate::syntax::TyVar>,
    right: &Type,
    right_flex: &std::collections::BTreeSet<crate::syntax::TyVar>,
) -> bool {
    fn canon(
        t: &Type,
        flex: &std::collections::BTreeSet<crate::syntax::TyVar>,
        seen: &mut Vec<crate::syntax::TyVar>,
        out: &mut String,
    ) {
        match t {
            Type::Var(v) if flex.contains(v) => {
                let ix = match seen.iter().position(|w| w == v) {
                    Some(ix) => ix,
                    None => {
                        seen.push(*v);
                        seen.len() - 1
                    }
                };
                out.push_str(&format!("#{ix}"));
            }
            Type::Var(v) => out.push_str(&format!("'{v}")),
            Type::Int => out.push('I'),
            Type::Bool => out.push('B'),
            Type::Str => out.push('S'),
            Type::Unit => out.push('U'),
            Type::Arrow(a, b) => {
                out.push_str("(>");
                canon(a, flex, seen, out);
                out.push(' ');
                canon(b, flex, seen, out);
                out.push(')');
            }
            Type::Prod(a, b) => {
                out.push_str("(*");
                canon(a, flex, seen, out);
                out.push(' ');
                canon(b, flex, seen, out);
                out.push(')');
            }
            Type::List(a) => {
                out.push_str("(L");
                canon(a, flex, seen, out);
                out.push(')');
            }
            Type::Con(n, args) => {
                out.push_str(&format!("(C{n}"));
                for a in args {
                    out.push(' ');
                    canon(a, flex, seen, out);
                }
                out.push(')');
            }
            Type::VarApp(f, args) => {
                out.push_str("(V");
                if flex.contains(f) {
                    let ix = match seen.iter().position(|w| w == f) {
                        Some(ix) => ix,
                        None => {
                            seen.push(*f);
                            seen.len() - 1
                        }
                    };
                    out.push_str(&format!("#{ix}"));
                } else {
                    out.push_str(&format!("'{f}"));
                }
                for a in args {
                    out.push(' ');
                    canon(a, flex, seen, out);
                }
                out.push(')');
            }
            Type::Ctor(c) => out.push_str(&format!("(K{c})")),
            Type::Rule(_) => out.push_str(&crate::alpha::type_key(t)),
        }
    }
    let mut l = String::new();
    let mut r = String::new();
    canon(left, left_flex, &mut Vec::new(), &mut l);
    canon(right, right_flex, &mut Vec::new(), &mut r);
    l == r
}

/// Stability of a query with free type variables (extended report,
/// §"Runtime Errors and Coherence Failures"): the statically chosen
/// rule must stay the chosen rule under every instantiation of the
/// query's free variables. Violations occur when a rule in a *nearer
/// or equal* scope could match some instance of the query — then the
/// runtime (instantiated) lookup would pick a different rule than the
/// static one.
///
/// # Errors
///
/// Returns [`CoherenceError::UnstableQuery`] naming the rival rule.
pub fn query_stability(
    env: &ImplicitEnv,
    query: &RuleType,
    policy: &ResolutionPolicy,
) -> Result<(), CoherenceError> {
    let Ok(hit) = env.lookup(query.head(), policy.overlap) else {
        // Unresolvable queries are reported by resolution itself.
        return Ok(());
    };
    if query.head().ftv().is_empty() {
        return Ok(()); // ground queries cannot be destabilized
    }
    // Only *strictly nearer* scopes can steal the match at runtime;
    // overlap within the winner's own frame is governed by the
    // deferred uniqueness condition at `with` sites (the note accepts
    // `∀a b.{a,b} ⇒ a × b` whose internal queries ?a and ?b are
    // mutually unifiable but frame-local).
    for (frame_ix, frame) in env.frames_innermost_first() {
        if frame_ix >= hit.frame {
            break;
        }
        for rule in frame.iter() {
            let (fresh, _) = freshen_rule(rule);
            if unify::mgu(fresh.head(), query.head()).is_some() {
                return Err(CoherenceError::UnstableQuery {
                    query: query.clone(),
                    winner: hit.rule.clone(),
                    rival: rule.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Applies a substitution to every rule of every frame.
pub fn subst_env(theta: &TySubst, env: &ImplicitEnv) -> ImplicitEnv {
    let mut frames: Vec<Vec<RuleType>> = Vec::new();
    for (_, frame) in env.frames_innermost_first() {
        frames.push(theta.apply_context(frame));
    }
    frames.reverse();
    let mut out = ImplicitEnv::new();
    for f in frames {
        out.push(f);
    }
    out
}

/// The type-safety/stability condition: if `Δ ⊢r ρ` then
/// `θΔ ⊢r θρ`. Returns `true` when the implication holds for this
/// particular `θ` (vacuously when the original query fails).
pub fn stable_under(
    env: &ImplicitEnv,
    query: &RuleType,
    theta: &TySubst,
    policy: &ResolutionPolicy,
) -> bool {
    if resolve(env, query, policy).is_err() {
        return true;
    }
    let env2 = subst_env(theta, env);
    let query2 = theta.apply_rule(query);
    resolve(&env2, &query2, policy).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    #[test]
    fn x3_uniqueness_counterexample() {
        // {α, Int}: substituting α ↦ Int makes both produce Int.
        let ctx = [tv("alpha0").promote(), Type::Int.promote()];
        let err = unique_instances(&ctx).unwrap_err();
        match err {
            CoherenceError::OverlappingInstances { witness, .. } => {
                assert_eq!(witness, Type::Int)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disjoint_heads_are_unique() {
        let ctx = [Type::Int.promote(), Type::Bool.promote()];
        assert!(unique_instances(&ctx).is_ok());
        let pair = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        assert!(unique_instances(&[Type::Int.promote(), pair]).is_ok());
    }

    #[test]
    fn polymorphic_overlap_is_detected() {
        // ∀a. a → Int and ∀b. Int → b overlap at Int → Int.
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("b")], vec![], Type::arrow(Type::Int, tv("b")));
        assert!(!nonoverlap(&r1, &r2));
        let meet = common_instance(&r1, &r2).unwrap();
        assert_eq!(meet, Type::arrow(Type::Int, Type::Int));
    }

    #[test]
    fn most_specific_exists_when_meet_is_covered() {
        // {∀a.a→a, ∀a.a→Int, ∀a b. a→b?} — note's example: the set
        // {∀a.a→Int, ∀a.Int→a} lacks a most specific rule at Int→Int;
        // adding Int→Int fixes it.
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        assert!(exists_most_specific(&[r1.clone(), r2.clone()]).is_err());
        let fix = Type::arrow(Type::Int, Type::Int).promote();
        assert!(exists_most_specific(&[r1, r2, fix]).is_ok());
    }

    #[test]
    fn generic_plus_specific_is_covered() {
        // {∀a. a→a, ∀a. a→Int}: common instance is ∀?. a→Int itself
        // — wait, mgu(a→a, b→Int) = a→Int with a≔Int? It is Int→Int…
        // covered only by neither head exactly; the meet Int→Int is
        // not the head of either rule, so the existence condition
        // requires a dedicated rule.
        let generic = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let specific = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let err = exists_most_specific(&[generic.clone(), specific.clone()]);
        assert!(err.is_err());
        let covered = exists_most_specific(&[
            generic,
            specific,
            Type::arrow(Type::Int, Type::Int).promote(),
        ]);
        assert!(covered.is_ok());
    }

    #[test]
    fn stability_holds_for_ground_environments() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        let theta = TySubst::single(v("z"), Type::Bool);
        assert!(stable_under(
            &env,
            &Type::Int.promote(),
            &theta,
            &ResolutionPolicy::paper()
        ));
    }

    #[test]
    fn note_counterexample_is_unstable() {
        // Δ = {∀β.β→β}; {Int→Int} (inner frame nearest), query β→β
        // with β free. Statically the query resolves against the
        // nearest frame? No: Int→Int does not match β→β (β is rigid),
        // so the outer ∀-rule is used. After θ = [β↦Int] the nearest
        // frame matches too — and resolution picks the *other* rule.
        // The implication "resolves before ⟹ resolves after" holds,
        // but the chosen rule differs: detect this with derivations.
        let beta = v("beta");
        let mut env = ImplicitEnv::new();
        env.push(vec![RuleType::new(
            vec![v("a")],
            vec![],
            Type::arrow(tv("a"), tv("a")),
        )]);
        env.push(vec![Type::arrow(Type::Int, Type::Int).promote()]);
        let query = Type::arrow(Type::Var(beta), Type::Var(beta)).promote();
        let policy = ResolutionPolicy::paper();
        let before = resolve(&env, &query, &policy).unwrap();
        let theta = TySubst::single(beta, Type::Int);
        let after = resolve(&subst_env(&theta, &env), &theta.apply_rule(&query), &policy).unwrap();
        // Still resolvable (stable in the weak sense)…
        assert!(stable_under(&env, &query, &theta, &policy));
        // …but incoherent: the chosen rule changed frames.
        assert_ne!(before.rule, after.rule);
    }

    #[test]
    fn distinct_contexts() {
        let c1 = [Type::Int.promote()];
        let c2 = [Type::Bool.promote()];
        assert!(distinct(&c1, &c2));
        let c3 = [tv("q").promote()];
        assert!(!distinct(&c1, &c3));
    }

    #[test]
    fn deferred_existence_accepts_free_variable_collapses() {
        // {Eq a, Eq b}: under [b ↦ a] the meet Eq a is one of the
        // entries — the note's eqPair-style context must pass.
        let eq = |t: Type| Type::Con(v("EqD"), vec![t]).promote();
        let ctx = [eq(tv("a")), eq(tv("b"))];
        assert!(exists_deferred(&ctx).is_ok());
        // But quantified incomparable heads still fail:
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        assert!(exists_deferred(&[r1.clone(), r2.clone()]).is_err());
        // …unless the meet is covered explicitly.
        let cover = Type::arrow(Type::Int, Type::Int).promote();
        assert!(exists_deferred(&[r1, r2, cover]).is_ok());
    }

    #[test]
    fn deferred_existence_accepts_generic_plus_quantified_sibling() {
        // {∀c. c → c} alone, and together with a distinct shape.
        let idr = RuleType::new(vec![v("c")], vec![], Type::arrow(tv("c"), tv("c")));
        assert!(exists_deferred(std::slice::from_ref(&idr)).is_ok());
        let list_rule = RuleType::new(vec![v("c")], vec![], Type::list(tv("c")));
        assert!(exists_deferred(&[idr, list_rule]).is_ok());
    }

    #[test]
    fn query_stability_flags_nearer_rivals_only() {
        let beta = v("beta_qs");
        let query = Type::arrow(Type::Var(beta), Type::Var(beta)).promote();
        let policy = ResolutionPolicy::paper();
        // Rival in a nearer frame: unstable.
        let mut env = ImplicitEnv::new();
        env.push(vec![RuleType::new(
            vec![v("a")],
            vec![],
            Type::arrow(tv("a"), tv("a")),
        )]);
        env.push(vec![Type::arrow(Type::Int, Type::Int).promote()]);
        assert!(matches!(
            query_stability(&env, &query, &policy),
            Err(CoherenceError::UnstableQuery { .. })
        ));
        // Same-frame siblings are deferred to `with`-site checks.
        let env2 = ImplicitEnv::with_frame(vec![tv("x").promote(), tv("y").promote()]);
        let q2 = tv("x").promote();
        assert!(query_stability(&env2, &q2, &policy).is_ok());
        // Ground queries are always stable.
        let env3 = ImplicitEnv::with_frame(vec![Type::Int.promote()]);
        assert!(query_stability(&env3, &Type::Int.promote(), &policy).is_ok());
    }

    #[test]
    fn errors_display_helpfully() {
        let ctx = [tv("alpha1").promote(), Type::Int.promote()];
        let msg = unique_instances(&ctx).unwrap_err().to_string();
        assert!(msg.contains("overlap"), "got {msg}");
    }
}
