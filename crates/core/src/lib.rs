//! # `implicit-core` — the implicit calculus λ⇒
//!
//! A faithful implementation of the core calculus from *"The Implicit
//! Calculus: A New Foundation for Generic Programming"* (Oliveira,
//! Schrijvers, Choi, Lee, Yi — PLDI 2012): a minimal calculus in which
//! *implicit values* are fetched **by type** from a lexically scoped
//! implicit environment, via a logic-programming-style resolution
//! mechanism that supports recursive, polymorphic, **higher-order**
//! and **partial** resolution.
//!
//! ## Modules and their paper counterparts
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`syntax`] | §3.1 grammar (types, rule types, expressions) |
//! | [`alpha`] | α-equivalence for rule-type sets |
//! | [`subst`] | Appendix "Substitutions" |
//! | [`unify`] | Appendix "Unification" (one-way matching) |
//! | [`env`](mod@env) | implicit environments Δ and lookup `Δ⟨τ⟩` |
//! | [`intern`](mod@intern) | hash-consed types (performance layer, no paper counterpart) |
//! | [`resolve`](mod@resolve) | the resolution judgment `Δ ⊢r ρ` (rule `TyRes`) |
//! | [`typeck`] | Figure "Type System" |
//! | [`termination`] | Appendix A termination conditions |
//! | [`coherence`] | companion note on overlapping rules |
//! | [`logic`] | §3.2 logical interpretation, Theorem 1 |
//! | [`parse`] / [`pretty`] | concrete syntax |
//! | [`trace`](mod@trace) | structured tracing/metrics (observability layer, no paper counterpart) |
//!
//! ## Quick example
//!
//! The paper's first worked example — fetch an `Int` and a `Bool`
//! implicitly, build a pair — type-checks like this:
//!
//! ```
//! use implicit_core::parse::parse_expr;
//! use implicit_core::syntax::{Declarations, Type};
//! use implicit_core::typeck::Typechecker;
//!
//! let e = parse_expr(
//!     "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
//! ).unwrap();
//! let decls = Declarations::new();
//! let ty = Typechecker::new(&decls).check_closed(&e).unwrap();
//! assert_eq!(ty, Type::prod(Type::Int, Type::Bool));
//! ```
//!
//! Evaluation is provided by the sibling crates: `implicit-elab`
//! elaborates into System F (the paper's dynamic semantics), and
//! `implicit-opsem` interprets λ⇒ directly with runtime resolution.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Error enums carry full types/rule types for precise diagnostics;
// they are constructed on cold paths only, so the large-Err lint's
// boxing advice would cost clarity for no measurable gain.
#![allow(clippy::result_large_err)]

pub mod alpha;
pub mod coherence;
pub mod env;
pub mod intern;
pub mod logic;
pub mod parse;
pub mod pretty;
pub mod resolve;
pub mod subst;
pub mod subtyping;
pub mod symbol;
pub mod syntax;
pub mod termination;
pub mod trace;
pub mod typeck;
pub mod unify;
pub mod wire;

pub use env::{ImplicitEnv, OverlapPolicy};
pub use resolve::{resolve, resolve_with, Resolution, ResolutionPolicy};
pub use symbol::Symbol;
pub use syntax::{Declarations, Expr, RuleType, Type};
pub use trace::{
    chrome_trace_json, ChromeSink, CollectSink, FanSink, MetricsRegistry, MetricsSink, NullSink,
    Phase, SharedSink, TeeSink, TraceEvent, TraceSink,
};
pub use typeck::{TypeError, Typechecker};
