//! Resolution as **intersection subtyping via modus ponens** — an
//! independent decision procedure for the resolution judgment.
//!
//! Marntirosian, Schrijvers, Oliveira and Karachalias ("Resolution as
//! Intersection Subtyping via Modus Ponens", see `PAPERS.md`) show
//! that the λ⇒ resolution judgment `Δ ⊢r ρ` can be recast as a
//! *subtyping* problem: read each rule type `∀ᾱ. π ⇒ τ` as an
//! (implication) type, read the implicit environment as an ordered
//! **intersection** of the translated rules, and decide the query by
//! an algorithmic subtyping relation extended with a *modus ponens*
//! rule — from `σ ≤ π → τ` and `σ ≤ π` conclude `σ ≤ τ`. Focused
//! proof search for that relation makes exactly the same committed
//! choices as the paper's Fig. 5 resolver, so the two procedures
//! agree on success, evidence shape, and failure.
//!
//! This module implements that second decision procedure end to end:
//!
//! * [`IType`] — intersection-calculus types: atoms, implications
//!   `π̄ → τ`, and quantified types `∀ᾱ. σ`;
//! * [`translate_rule`] / [`itype_to_rule`] — the (invertible)
//!   translation between rule types and implication types;
//! * [`Intersection`] / [`translate_env`] — contexts and environments
//!   as *ordered* intersections (order carries scope proximity, which
//!   the subtyping algorithm must respect to stay coherent);
//! * [`subtype_resolve`] — the modus-ponens subtyping algorithm,
//!   producing an [`MpStep`] proof term that converts losslessly into
//!   the logic resolver's [`Resolution`] via [`MpStep::to_resolution`];
//! * [`check_member`] / [`unique_members`] / [`most_specific_members`]
//!   / [`stable_query`] — the Appendix A termination measures and the
//!   companion-note coherence conditions, recomputed on the
//!   *translated* forms but reporting payloads identical to
//!   [`crate::termination`] / [`crate::coherence`].
//!
//! The point of the exercise is differential testing: the conformance
//! harness (`crates/conformance`) runs this resolver as a fifth
//! oracle leg against elaboration, the operational semantics, the
//! derivation cache, and the bytecode VM. Because this procedure
//! shares *no control flow* with [`crate::resolve`] — no derivation
//! cache, a different recursion structure — a bug in either engine
//! surfaces as a [`SubProof`]/[`Resolution`] mismatch on some
//! generated seed. The one structure the engines now share is the
//! head-constructor pre-filter over intersection members (built from
//! the same [`crate::intern::head_key`]); to keep the differential
//! honest, [`subtype_resolve_translated_scan`] preserves the
//! unindexed every-member scan as a baseline the indexed path is
//! tested against.
//!
//! ## Design notes on exact agreement
//!
//! The subtyping search is committed-choice, like the resolver: it
//! never backtracks across members or scopes. Scope order is
//! assumption frames innermost-first (under the environment-extension
//! policy), then environment frames innermost-first; within a scope
//! it consults a head-constructor index to visit only the members
//! whose conclusion head could match (a sound pre-filter: every
//! skipped member would fail unification on its rigid head), in frame
//! order, and applies the same 0/1/many commitment: descend, commit,
//! or fail via the [`OverlapPolicy`]. Nested rule types in conclusion
//! position stay atomic ([`IType::Atom`] can hold a
//! [`Type::Rule`](crate::syntax::Type::Rule)) because the resolver's
//! matching treats rule-typed heads opaquely.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::alpha;
use crate::coherence::CoherenceError;
use crate::env::{ImplicitEnv, LookupError, OverlapPolicy};
use crate::intern::{head_key, HeadKey};
use crate::resolve::{Premise, Resolution, ResolutionPolicy, ResolveError, RuleRef};
use crate::subst::{freshen_rule, TySubst};
use crate::syntax::{Expr, RuleType, TyVar, Type};
use crate::termination::TerminationViolation;
use crate::unify;

// ---------------------------------------------------------------------------
// Intersection-calculus types and the translation
// ---------------------------------------------------------------------------

/// A type of the target intersection calculus.
///
/// The translation image of a rule type `∀ᾱ. {ρ̄} ⇒ τ` is
/// `∀ᾱ. (⟦ρ̄⟧ → τ)`; context-free, unquantified rules collapse to the
/// bare atom `τ`. Conclusions are always atoms — possibly a
/// higher-order [`Type::Rule`](crate::syntax::Type::Rule) atom, which
/// stays opaque exactly as the resolver treats rule-typed heads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IType {
    /// An atomic type (a λ⇒ type, matched structurally).
    Atom(Type),
    /// An implication `π̄ → τ`: the premises (in stored order) imply
    /// the conclusion.
    Impl(Vec<IType>, Box<IType>),
    /// A quantified type `∀ᾱ. σ` (binders in stored order).
    All(Vec<TyVar>, Box<IType>),
}

impl IType {
    /// The conclusion atom, premise translations, and quantifiers of
    /// a translation-image type (the canonical `∀ᾱ.(π̄ → τ)` shape).
    ///
    /// # Panics
    ///
    /// Panics when the type is not in translation-image form (e.g. a
    /// hand-built `All` whose body is another `All`). Everything this
    /// module constructs is in image form.
    fn parts(&self) -> (&[TyVar], &[IType], &Type) {
        let (vars, body) = match self {
            IType::All(vs, b) => (vs.as_slice(), b.as_ref()),
            other => (&[][..], other),
        };
        let (premises, concl) = match body {
            IType::Impl(ps, c) => (ps.as_slice(), c.as_ref()),
            other => (&[][..], other),
        };
        match concl {
            IType::Atom(t) => (vars, premises, t),
            _ => panic!("IType not in translation-image form"),
        }
    }

    /// Free type variables, respecting `All` binders (same order as
    /// [`RuleType::ftv`] — `BTreeSet` iteration).
    pub fn ftv(&self) -> BTreeSet<TyVar> {
        fn go(it: &IType, acc: &mut BTreeSet<TyVar>) {
            match it {
                IType::Atom(t) => acc.extend(t.ftv()),
                IType::Impl(ps, c) => {
                    ps.iter().for_each(|p| go(p, acc));
                    go(c, acc);
                }
                IType::All(vs, b) => {
                    let mut inner = BTreeSet::new();
                    go(b, &mut inner);
                    for v in vs {
                        inner.remove(v);
                    }
                    acc.extend(inner);
                }
            }
        }
        let mut acc = BTreeSet::new();
        go(self, &mut acc);
        acc
    }
}

impl fmt::Display for IType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IType::Atom(t) => write!(f, "{t}"),
            IType::Impl(ps, c) => {
                for p in ps {
                    match p {
                        IType::Atom(_) => write!(f, "{p} -> ")?,
                        _ => write!(f, "({p}) -> ")?,
                    }
                }
                write!(f, "{c}")
            }
            IType::All(vs, b) => {
                write!(f, "forall")?;
                for v in vs {
                    write!(f, " {v}")?;
                }
                write!(f, ". {b}")
            }
        }
    }
}

/// Translates a rule type into its implication type.
///
/// `∀ᾱ. {ρ̄} ⇒ τ` becomes `∀ᾱ. (⟦ρ̄⟧ → τ)`; empty quantifier lists
/// and empty contexts produce no `All`/`Impl` wrapper, so simple
/// types translate to bare atoms. The translation commutes with
/// substitution and is inverted exactly by [`itype_to_rule`].
pub fn translate_rule(rho: &RuleType) -> IType {
    let concl = IType::Atom(rho.head().clone());
    let body = if rho.context().is_empty() {
        concl
    } else {
        IType::Impl(
            rho.context().iter().map(translate_rule).collect(),
            Box::new(concl),
        )
    };
    if rho.vars().is_empty() {
        body
    } else {
        IType::All(rho.vars().to_vec(), Box::new(body))
    }
}

/// Inverts [`translate_rule`].
///
/// Because translation preserves the (already canonicalized) premise
/// order of the source rule, the round trip is the identity:
/// `itype_to_rule(&translate_rule(ρ)) == ρ`.
pub fn itype_to_rule(it: &IType) -> RuleType {
    let (vars, premises, concl) = it.parts();
    RuleType::new(
        vars.to_vec(),
        premises.iter().map(itype_to_rule).collect(),
        concl.clone(),
    )
}

/// One member of an intersection: the translated type together with
/// its source rule (kept so evidence and diagnostics can speak the
/// resolver's language losslessly).
#[derive(Clone, Debug)]
pub struct Member {
    /// The translated implication type.
    pub itype: IType,
    /// The rule it was translated from.
    pub source: RuleType,
}

/// An *ordered* intersection of translated rules — the image of one
/// context/frame. Order is significant: it carries the within-frame
/// rule positions that evidence refers to.
///
/// Alongside the members, the intersection carries a head-constructor
/// index built once at translation time: `buckets[k]` holds the
/// ascending member indices whose conclusion head has the
/// non-wildcard key `k`, and `wildcard` the indices of
/// variable-headed members (which can match any target). Selection
/// visits only admitted members, in frame order, so the scan is
/// O(admitted) instead of O(members).
#[derive(Clone, Debug, Default)]
pub struct Intersection {
    /// Members in frame order.
    pub members: Vec<Member>,
    buckets: HashMap<HeadKey, Vec<usize>>,
    wildcard: Vec<usize>,
}

impl Intersection {
    /// Translates a context (one environment frame) memberwise and
    /// builds the head-constructor index.
    pub fn from_context(rules: &[RuleType]) -> Intersection {
        let mut buckets: HashMap<HeadKey, Vec<usize>> = HashMap::new();
        let mut wildcard = Vec::new();
        for (ix, rule) in rules.iter().enumerate() {
            match head_key(rule.head()) {
                HeadKey::Wildcard => wildcard.push(ix),
                key => buckets.entry(key).or_default().push(ix),
            }
        }
        Intersection {
            members: rules
                .iter()
                .map(|r| Member {
                    itype: translate_rule(r),
                    source: r.clone(),
                })
                .collect(),
            buckets,
            wildcard,
        }
    }

    /// Ascending indices of the concrete-headed members admitted for
    /// a target with the given key. A variable-headed target is
    /// matched only by variable-headed members: a rigid conclusion
    /// head can never unify with it.
    fn specific(&self, target_key: HeadKey) -> &[usize] {
        if target_key == HeadKey::Wildcard {
            &[]
        } else {
            self.buckets
                .get(&target_key)
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }
    }
}

impl fmt::Display for Intersection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.members.is_empty() {
            return write!(f, "T"); // the empty intersection (top)
        }
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            match &m.itype {
                IType::Atom(_) => write!(f, "{}", m.itype)?,
                _ => write!(f, "({})", m.itype)?,
            }
        }
        Ok(())
    }
}

/// Translates a whole environment into a stack of intersections,
/// **innermost frame first** — index `i` here is the resolver's
/// `RuleRef::Env { frame: i, .. }`.
pub fn translate_env(env: &ImplicitEnv) -> Vec<Intersection> {
    env.frames_innermost_first()
        .map(|(_, rules)| Intersection::from_context(rules))
        .collect()
}

// ---------------------------------------------------------------------------
// Proof terms
// ---------------------------------------------------------------------------

/// Which intersection a modus-ponens step selected its member from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Environment frame `i` (0 = innermost), as in
    /// [`RuleRef::Env`].
    Env(usize),
    /// Assumption intersection pushed at recursion level `l` by the
    /// environment-extension policy, as in [`RuleRef::Extension`].
    Assumption(usize),
}

/// A premise proof inside an [`MpStep`].
#[derive(Clone, PartialEq, Debug)]
pub enum SubProof {
    /// The premise is α-present in the goal's own context and stays
    /// abstract — the subtyping axiom `π ≤ π` (partial resolution).
    Axiom {
        /// Position in the goal's context.
        index: usize,
        /// The premise type.
        rho: RuleType,
    },
    /// The premise was proved by a nested modus-ponens step.
    ModusPonens(Box<MpStep>),
}

/// One modus-ponens step: a member of the environment intersection
/// whose (instantiated) conclusion matches the goal head, plus proofs
/// of its instantiated premises.
#[derive(Clone, PartialEq, Debug)]
pub struct MpStep {
    /// The goal this step proves.
    pub goal: RuleType,
    /// The scope the member was selected from.
    pub scope: Scope,
    /// The member's position within its intersection.
    pub member: usize,
    /// The member's source rule (pre-instantiation).
    pub source: RuleType,
    /// Quantifier instantiation, in binder order.
    pub type_args: Vec<Type>,
    /// Premise proofs, in the member's stored premise order.
    pub premises: Vec<SubProof>,
}

impl MpStep {
    /// Number of modus-ponens steps in the proof (1 + recursive
    /// steps) — the analog of [`Resolution::steps`].
    pub fn steps(&self) -> usize {
        1 + self
            .premises
            .iter()
            .map(|p| match p {
                SubProof::Axiom { .. } => 0,
                SubProof::ModusPonens(s) => s.steps(),
            })
            .sum::<usize>()
    }

    /// `true` if any step selected from an assumption intersection
    /// (only possible under the environment-extension policy).
    pub fn uses_assumption(&self) -> bool {
        matches!(self.scope, Scope::Assumption(_))
            || self.premises.iter().any(|p| match p {
                SubProof::Axiom { .. } => false,
                SubProof::ModusPonens(s) => s.uses_assumption(),
            })
    }

    /// Converts the subtyping proof into the logic resolver's
    /// derivation language. The conversion is structural and
    /// lossless: agreement tests compare
    /// `subtype_resolve(..).map(|s| s.to_resolution())` against
    /// [`crate::resolve::resolve`] with `==`.
    pub fn to_resolution(&self) -> Resolution {
        Resolution {
            query: self.goal.clone(),
            rule: match self.scope {
                Scope::Env(frame) => RuleRef::Env {
                    frame,
                    index: self.member,
                },
                Scope::Assumption(level) => RuleRef::Extension {
                    level,
                    index: self.member,
                },
            },
            rule_type: self.source.clone(),
            type_args: self.type_args.clone(),
            premises: self
                .premises
                .iter()
                .map(|p| match p {
                    SubProof::Axiom { index, rho } => Premise::Assumed {
                        index: *index,
                        rho: rho.clone(),
                    },
                    SubProof::ModusPonens(s) => Premise::Derived(Box::new(s.to_resolution())),
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// The modus-ponens subtyping algorithm
// ---------------------------------------------------------------------------

/// Decides `Δ ≤ ρ` — whether the environment, read as an ordered
/// intersection, subsumes the queried rule type — and returns the
/// modus-ponens proof.
///
/// This is the fifth-leg entry point: structurally independent of
/// [`crate::resolve::resolve`] (no head-index buckets, no derivation
/// cache) yet in exact agreement with it on success, evidence (via
/// [`MpStep::to_resolution`]), and failure, for every
/// [`ResolutionPolicy`] including the environment-extension variant.
///
/// # Errors
///
/// Fails with the resolver's own [`ResolveError`] payloads: `Lookup`
/// when no member's conclusion matches (or matching is ambiguous
/// under the overlap policy), `DepthExceeded` when the proof would
/// exceed `policy.max_depth` modus-ponens nestings.
pub fn subtype_resolve(
    env: &ImplicitEnv,
    query: &RuleType,
    policy: &ResolutionPolicy,
) -> Result<MpStep, ResolveError> {
    let sigma = translate_env(env);
    subtype_resolve_translated(&sigma, query, policy)
}

/// [`subtype_resolve`] over a pre-translated environment (innermost
/// intersection first, as produced by [`translate_env`]). Lets
/// callers amortize translation across many queries.
///
/// # Errors
///
/// See [`subtype_resolve`].
pub fn subtype_resolve_translated(
    sigma: &[Intersection],
    query: &RuleType,
    policy: &ResolutionPolicy,
) -> Result<MpStep, ResolveError> {
    let mut assumptions: Vec<Intersection> = Vec::new();
    prove(
        sigma,
        &mut assumptions,
        query,
        policy,
        policy.max_depth,
        true,
    )
}

/// [`subtype_resolve_translated`] with the head-constructor pre-filter
/// disabled: every member of every intersection is scanned, exactly
/// as the resolver did before the index existed. Kept as the baseline
/// the indexed path is differentially tested against (same
/// derivations, same errors) and as the linear-scan leg of the B15
/// benchmark.
///
/// # Errors
///
/// See [`subtype_resolve`].
pub fn subtype_resolve_translated_scan(
    sigma: &[Intersection],
    query: &RuleType,
    policy: &ResolutionPolicy,
) -> Result<MpStep, ResolveError> {
    let mut assumptions: Vec<Intersection> = Vec::new();
    prove(
        sigma,
        &mut assumptions,
        query,
        policy,
        policy.max_depth,
        false,
    )
}

/// A selected member, instantiated: its position, source rule, type
/// arguments, and instantiated premises.
type Selected = (usize, RuleType, Vec<Type>, Vec<RuleType>);

/// A [`Selected`] member plus the scope it was committed to in.
type ScopedSelected = (Scope, usize, RuleType, Vec<Type>, Vec<RuleType>);

fn prove(
    sigma: &[Intersection],
    assumptions: &mut Vec<Intersection>,
    goal: &RuleType,
    policy: &ResolutionPolicy,
    fuel: usize,
    indexed: bool,
) -> Result<MpStep, ResolveError> {
    if fuel == 0 {
        return Err(ResolveError::DepthExceeded {
            query: goal.clone(),
            max_depth: policy.max_depth,
        });
    }

    let target = goal.head();
    let (scope, member, source, type_args, inst_premises) =
        select(sigma, assumptions, target, policy, indexed).map_err(|error| {
            ResolveError::Lookup {
                query: goal.clone(),
                error,
            }
        })?;

    // Premise proofs: α-present-in-goal premises close by the axiom
    // (partial resolution); the rest recurse, under the extension
    // policy with the goal's context pushed as the nearest
    // assumption intersection.
    let mut premises = Vec::with_capacity(inst_premises.len());
    for rho in &inst_premises {
        match alpha::context_position(goal.context(), rho) {
            Some(index) => premises.push(SubProof::Axiom {
                index,
                rho: rho.clone(),
            }),
            None => {
                let sub = if policy.env_extension {
                    assumptions.push(Intersection::from_context(goal.context()));
                    let sub = prove(sigma, assumptions, rho, policy, fuel - 1, indexed);
                    assumptions.pop();
                    sub
                } else {
                    prove(sigma, assumptions, rho, policy, fuel - 1, indexed)
                };
                premises.push(SubProof::ModusPonens(Box::new(sub?)));
            }
        }
    }

    Ok(MpStep {
        goal: goal.clone(),
        scope,
        member,
        source,
        type_args,
        premises,
    })
}

/// Selects the member whose conclusion proves `target`, scanning
/// assumption intersections innermost-first (extension policy only),
/// then environment intersections innermost-first. Commits to the
/// first intersection with any match; errors within an intersection
/// propagate (no fallthrough past an ambiguous scope — the resolver's
/// committed choice).
fn select(
    sigma: &[Intersection],
    assumptions: &[Intersection],
    target: &Type,
    policy: &ResolutionPolicy,
    indexed: bool,
) -> Result<ScopedSelected, LookupError> {
    if policy.env_extension {
        for (level_rev, inter) in assumptions.iter().rev().enumerate() {
            let level = assumptions.len() - 1 - level_rev;
            if let Some((ix, source, args, prems)) =
                select_in(inter, target, policy.overlap, indexed)?
            {
                return Ok((Scope::Assumption(level), ix, source, args, prems));
            }
        }
    }
    for (frame_ix, inter) in sigma.iter().enumerate() {
        if let Some((ix, source, args, prems)) = select_in(inter, target, policy.overlap, indexed)?
        {
            return Ok((Scope::Env(frame_ix), ix, source, args, prems));
        }
    }
    Err(LookupError::NoMatch(target.clone()))
}

/// One intersection's match-and-commit step. With `indexed` the
/// head-constructor index narrows the scan to members whose
/// conclusion head could unify with `target` (plus the
/// variable-headed members); without it every member is visited. Both
/// paths visit admitted members in ascending frame order, so matches —
/// and therefore selections, overlap candidate lists, and every other
/// observable — are identical.
fn select_in(
    inter: &Intersection,
    target: &Type,
    policy: OverlapPolicy,
    indexed: bool,
) -> Result<Option<Selected>, LookupError> {
    if indexed {
        let specific = inter.specific(head_key(target));
        if inter.wildcard.is_empty() {
            select_among(inter, specific.iter().copied(), target, policy)
        } else if specific.is_empty() {
            select_among(inter, inter.wildcard.iter().copied(), target, policy)
        } else {
            let merged = merge_sorted(specific, &inter.wildcard);
            select_among(inter, merged.into_iter(), target, policy)
        }
    } else {
        select_among(inter, 0..inter.members.len(), target, policy)
    }
}

/// Merges two ascending index slices into one ascending vector.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Matches `target` against the conclusions of the given members (in
/// ascending index order) and applies the 0/1/many commitment.
fn select_among(
    inter: &Intersection,
    indices: impl Iterator<Item = usize>,
    target: &Type,
    policy: OverlapPolicy,
) -> Result<Option<Selected>, LookupError> {
    // (member index, freshened source + θ); `None` for
    // quantifier-free members, whose freshening is the identity.
    let mut matches: Vec<(usize, Option<(RuleType, TySubst)>)> = Vec::new();
    for ix in indices {
        let m = &inter.members[ix];
        let (vars, _premises, concl) = m.itype.parts();
        if vars.is_empty() {
            if unify::match_type(concl, target, &[]).is_some() {
                matches.push((ix, None));
            }
        } else {
            // Freshen the quantifiers apart from the target. The
            // translation commutes with substitution, so freshening
            // the source and re-translating *is* freshening the
            // member's implication type.
            let (fresh, _) = freshen_rule(&m.source);
            let fit = translate_rule(&fresh);
            let (fvars, _, fconcl) = fit.parts();
            if let Some(theta) = unify::match_type(fconcl, target, fvars) {
                matches.push((ix, Some((fresh, theta))));
            }
        }
    }
    let (index, instance) = match matches.len() {
        0 => return Ok(None),
        1 => matches.pop().expect("len checked"),
        _ => match policy {
            OverlapPolicy::Forbid => return Err(overlap_error(inter, &matches, target)),
            OverlapPolicy::MostSpecific => match pick_most_specific(inter, &matches) {
                Some(winner_pos) => matches.swap_remove(winner_pos),
                None => return Err(overlap_error(inter, &matches, target)),
            },
        },
    };
    match instance {
        None => {
            let source = &inter.members[index].source;
            Ok(Some((
                index,
                source.clone(),
                Vec::new(),
                source.context().to_vec(),
            )))
        }
        Some((fresh, theta)) => {
            // Every quantifier must be determined by the match.
            let mut type_args = Vec::with_capacity(fresh.vars().len());
            for v in fresh.vars() {
                match theta.get(*v) {
                    Some(t) => type_args.push(t.clone()),
                    None => {
                        return Err(LookupError::AmbiguousInstantiation {
                            rule: inter.members[index].source.clone(),
                        })
                    }
                }
            }
            let inst_premises = theta.apply_context(fresh.context());
            Ok(Some((
                index,
                inter.members[index].source.clone(),
                type_args,
                inst_premises,
            )))
        }
    }
}

fn overlap_error(
    inter: &Intersection,
    matches: &[(usize, Option<(RuleType, TySubst)>)],
    target: &Type,
) -> LookupError {
    LookupError::Overlap {
        target: target.clone(),
        candidates: matches
            .iter()
            .map(|(ix, _)| inter.members[*ix].source.clone())
            .collect(),
    }
}

/// `m1` is at least as specific as `m2` when `m2`'s conclusion
/// matches `m1`'s (the conclusion of `m1` is an instance of `m2`'s).
fn member_at_least_as_specific(m1: &RuleType, m2: &RuleType) -> bool {
    let (f1, _) = freshen_rule(m1);
    let (f2, _) = freshen_rule(m2);
    let c1 = translate_rule(&f1);
    let c2 = translate_rule(&f2);
    let (_, _, a1) = c1.parts();
    let (vars2, _, a2) = c2.parts();
    unify::match_type(a2, a1, vars2).is_some()
}

fn pick_most_specific(
    inter: &Intersection,
    matches: &[(usize, Option<(RuleType, TySubst)>)],
) -> Option<usize> {
    'outer: for (i, (ixi, _)) in matches.iter().enumerate() {
        let ri = &inter.members[*ixi].source;
        for (j, (ixj, _)) in matches.iter().enumerate() {
            if i != j && !member_at_least_as_specific(ri, &inter.members[*ixj].source) {
                continue 'outer;
            }
        }
        // Tied with a non-α-equivalent rival that is also as specific
        // as everything ⇒ no *single* most specific member.
        for (j, (ixj, _)) in matches.iter().enumerate() {
            let rj = &inter.members[*ixj].source;
            if i != j && member_at_least_as_specific(rj, ri) && !alpha::alpha_eq(ri, rj) {
                return None;
            }
        }
        return Some(i);
    }
    None
}

// ---------------------------------------------------------------------------
// Termination and coherence guards on the translated forms
// ---------------------------------------------------------------------------

/// Appendix A termination conditions, recomputed on a translated
/// member: every premise conclusion strictly smaller than the
/// member's conclusion, no variable occurring more often in a premise
/// conclusion than in the member's, recursively. Reports the same
/// [`TerminationViolation`] payloads as
/// [`crate::termination::check_rule`] on the member's source.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_member(member: &Member) -> Result<(), TerminationViolation> {
    check_itype(&member.itype, &member.source)
}

fn check_itype(it: &IType, source: &RuleType) -> Result<(), TerminationViolation> {
    let (vars, premises, concl) = it.parts();
    let head_size = concl.size();
    // Condition-1 variable set: the binders plus anything free, in
    // the same order as the source-level check (binders first).
    let mut all_vars: Vec<TyVar> = vars.to_vec();
    for v in it.ftv() {
        if !all_vars.contains(&v) {
            all_vars.push(v);
        }
    }
    for p in premises {
        let (pvars, _, patom) = p.parts();
        if patom.size() >= head_size {
            return Err(TerminationViolation::PremiseNotSmaller {
                rule: source.clone(),
                premise: itype_to_rule(p),
                premise_size: patom.size(),
                head_size,
            });
        }
        for &v in &all_vars {
            let p_occ = if pvars.contains(&v) {
                0 // the premise's own binders mask
            } else {
                patom.occurrences(v)
            };
            if p_occ > concl.occurrences(v) {
                return Err(TerminationViolation::VariableGrows {
                    rule: source.clone(),
                    premise: itype_to_rule(p),
                    var: v,
                });
            }
        }
        check_itype(p, &itype_to_rule(p))?;
    }
    Ok(())
}

/// [`check_member`] over every member of every intersection,
/// innermost intersection first — the analog of
/// [`crate::termination::check_env`].
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_translation(sigma: &[Intersection]) -> Result<(), TerminationViolation> {
    for inter in sigma {
        for m in &inter.members {
            check_member(m)?;
        }
    }
    Ok(())
}

/// The most general common instance of two member conclusions, if
/// their conclusions unify once freshened apart — the analog of
/// [`crate::coherence::common_instance`].
pub fn member_meet(m1: &Member, m2: &Member) -> Option<Type> {
    let (f1, _) = freshen_rule(&m1.source);
    let (f2, _) = freshen_rule(&m2.source);
    let c1 = translate_rule(&f1);
    let c2 = translate_rule(&f2);
    let (_, _, a1) = c1.parts();
    let (_, _, a2) = c2.parts();
    let theta = unify::mgu(a1, a2)?;
    Some(theta.apply_type(a1))
}

/// Pairwise non-overlap of an intersection's member conclusions —
/// the analog of [`crate::coherence::unique_instances`], with
/// identical error payloads.
///
/// # Errors
///
/// Returns the first overlapping pair with a witness instance.
pub fn unique_members(inter: &Intersection) -> Result<(), CoherenceError> {
    for (i, m1) in inter.members.iter().enumerate() {
        for m2 in &inter.members[i + 1..] {
            if let Some(witness) = member_meet(m1, m2) {
                return Err(CoherenceError::OverlappingInstances {
                    left: m1.source.clone(),
                    right: m2.source.clone(),
                    witness,
                });
            }
        }
    }
    Ok(())
}

/// Every overlapping member pair is covered by a member whose
/// conclusion is a renaming of their meet — the analog of
/// [`crate::coherence::exists_most_specific`], with identical error
/// payloads.
///
/// # Errors
///
/// Returns the first uncovered pair with their meet.
pub fn most_specific_members(inter: &Intersection) -> Result<(), CoherenceError> {
    for (i, m1) in inter.members.iter().enumerate() {
        for m2 in &inter.members[i + 1..] {
            let Some(meet) = member_meet(m1, m2) else {
                continue;
            };
            let covered = inter
                .members
                .iter()
                .any(|m| conclusion_is_variant_of(m, &meet));
            if !covered {
                return Err(CoherenceError::NoMostSpecific {
                    left: m1.source.clone(),
                    right: m2.source.clone(),
                    meet,
                });
            }
        }
    }
    Ok(())
}

/// The member's conclusion matches `ty` by a renaming only (every
/// quantifier maps to a distinct variable).
fn conclusion_is_variant_of(m: &Member, ty: &Type) -> bool {
    let (f, _) = freshen_rule(&m.source);
    let fit = translate_rule(&f);
    let (fvars, _, fconcl) = fit.parts();
    let Some(theta) = unify::match_type(fconcl, ty, fvars) else {
        return false;
    };
    let mut seen = BTreeSet::new();
    fvars.iter().all(|v| match theta.get(*v) {
        None => true,
        Some(Type::Var(w)) => seen.insert(*w),
        Some(_) => false,
    })
}

/// Query stability over the translated environment — the analog of
/// [`crate::coherence::query_stability`], with identical error
/// payloads: a non-ground query whose statically selected member
/// could be stolen by a unifiable conclusion in a *strictly nearer*
/// intersection is unstable.
///
/// # Errors
///
/// Returns [`CoherenceError::UnstableQuery`] naming the static winner
/// and the nearer rival.
pub fn stable_query(
    sigma: &[Intersection],
    query: &RuleType,
    policy: &ResolutionPolicy,
) -> Result<(), CoherenceError> {
    // The statically chosen member, by the same committed scan the
    // prover uses (environment scopes only, as in the source-level
    // check). Unresolvable or ambiguous queries are reported by
    // resolution itself.
    let mut winner: Option<(usize, RuleType)> = None;
    for (frame_ix, inter) in sigma.iter().enumerate() {
        match select_in(inter, query.head(), policy.overlap, true) {
            Ok(Some((_, source, _, _))) => {
                winner = Some((frame_ix, source));
                break;
            }
            Ok(None) => continue,
            Err(_) => return Ok(()),
        }
    }
    let Some((winner_frame, winner_rule)) = winner else {
        return Ok(());
    };
    if query.head().ftv().is_empty() {
        return Ok(()); // ground queries cannot be destabilized
    }
    for (frame_ix, inter) in sigma.iter().enumerate() {
        if frame_ix >= winner_frame {
            break;
        }
        for m in &inter.members {
            let (f, _) = freshen_rule(&m.source);
            let fit = translate_rule(&f);
            let (_, _, fconcl) = fit.parts();
            if unify::mgu(fconcl, query.head()).is_some() {
                return Err(CoherenceError::UnstableQuery {
                    query: query.clone(),
                    winner: winner_rule,
                    rival: m.source.clone(),
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Query-site walking and engine cross-checking
// ---------------------------------------------------------------------------

/// Visits every `?(ρ)` query site of a term, maintaining the implicit
/// environment exactly as the type checker does (each `RuleAbs`
/// pushes its rule's context as the nearest frame for its body). The
/// callback receives the environment in force at the site and the
/// queried rule type.
///
/// This is the shared substrate of the differential fifth oracle leg:
/// the conformance harness, `implicitc --xcheck`, and the agreement
/// property tests all walk programs with it and [`cross_check`] each
/// site.
pub fn walk_query_sites(expr: &Expr, f: &mut impl FnMut(&ImplicitEnv, &RuleType)) {
    fn walk(env: &mut ImplicitEnv, e: &Expr, f: &mut impl FnMut(&ImplicitEnv, &RuleType)) {
        match e {
            Expr::Query(rho) => f(env, rho),
            Expr::RuleAbs(rho, body) => {
                env.push(rho.context().to_vec());
                walk(env, body, f);
                env.pop();
            }
            Expr::Lam(_, _, b) | Expr::UnOp(_, b) | Expr::Fst(b) | Expr::Snd(b) => {
                walk(env, b, f);
            }
            Expr::App(a, b) | Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Cons(a, b) => {
                walk(env, a, f);
                walk(env, b, f);
            }
            Expr::TyApp(a, _) => walk(env, a, f),
            Expr::RuleApp(g, args) => {
                walk(env, g, f);
                for (a, _) in args {
                    walk(env, a, f);
                }
            }
            Expr::If(a, b, c) => {
                walk(env, a, f);
                walk(env, b, f);
                walk(env, c, f);
            }
            Expr::ListCase {
                scrut, nil, cons, ..
            } => {
                walk(env, scrut, f);
                walk(env, nil, f);
                walk(env, cons, f);
            }
            Expr::Fix(_, _, b) => walk(env, b, f),
            Expr::Make(_, _, fields) => {
                for (_, fe) in fields {
                    walk(env, fe, f);
                }
            }
            Expr::Proj(a, _) => walk(env, a, f),
            Expr::Inject(_, _, args) => {
                for a in args {
                    walk(env, a, f);
                }
            }
            Expr::Match(scrut, arms) => {
                walk(env, scrut, f);
                for arm in arms {
                    walk(env, &arm.body, f);
                }
            }
            Expr::Int(_)
            | Expr::Bool(_)
            | Expr::Str(_)
            | Expr::Unit
            | Expr::Var(_)
            | Expr::Nil(_) => {}
        }
    }
    let mut env = ImplicitEnv::new();
    walk(&mut env, expr, f);
}

/// Cross-checks the logic resolver against the subtyping resolver on
/// one query: both must succeed with structurally identical evidence
/// (via [`MpStep::to_resolution`]) or fail with identical errors.
///
/// Callers should use ample `max_depth`: the logic resolver's
/// derivation cache can conserve fuel on repeated sub-queries, so the
/// engines are only fuel-equivalent when neither runs out (or the
/// cache is off).
///
/// # Errors
///
/// Returns a human-readable description of the disagreement.
pub fn cross_check(
    env: &ImplicitEnv,
    query: &RuleType,
    policy: &ResolutionPolicy,
) -> Result<(), String> {
    let logic = crate::resolve::resolve(env, query, policy);
    let sub = subtype_resolve(env, query, policy);
    match (logic, sub) {
        (Ok(r), Ok(s)) => {
            let converted = s.to_resolution();
            if r == converted {
                Ok(())
            } else {
                Err(format!(
                    "evidence differs for `{query}`:\n{}\nvs subtyping\n{}",
                    r.explain(),
                    converted.explain()
                ))
            }
        }
        (Err(le), Err(se)) => {
            if le == se {
                Ok(())
            } else {
                Err(format!(
                    "errors differ for `{query}`: logic `{le}` vs subtyping `{se}`"
                ))
            }
        }
        (Ok(r), Err(se)) => Err(format!(
            "logic resolves `{query}` ({} steps) but subtyping fails: {se}",
            r.steps()
        )),
        (Err(le), Ok(s)) => Err(format!(
            "subtyping resolves `{query}` ({} steps) but logic fails: {le}",
            s.steps()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve;
    use crate::symbol::Symbol;
    use crate::{coherence, termination};

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    fn check_agreement(env: &ImplicitEnv, query: &RuleType, policy: &ResolutionPolicy) {
        let logic = resolve(env, query, policy);
        let sub = subtype_resolve(env, query, policy);
        match (logic, sub) {
            (Ok(r), Ok(s)) => assert_eq!(r, s.to_resolution(), "evidence mismatch for {query}"),
            (Err(le), Err(se)) => assert_eq!(le, se, "error mismatch for {query}"),
            (l, s) => panic!("outcome mismatch for {query}: logic {l:?} vs subtyping {s:?}"),
        }
    }

    #[test]
    fn translation_round_trips() {
        let rules = vec![
            Type::Int.promote(),
            RuleType::mono(vec![Type::Int.promote()], Type::Bool),
            RuleType::new(
                vec![v("a")],
                vec![Type::var(v("a")).promote()],
                Type::prod(tv("a"), tv("a")),
            ),
            // Higher-order premise: {{Int} ⇒ Bool} ⇒ Str
            RuleType::mono(
                vec![RuleType::mono(vec![Type::Int.promote()], Type::Bool)],
                Type::Str,
            ),
        ];
        for rho in &rules {
            assert_eq!(&itype_to_rule(&translate_rule(rho)), rho);
        }
    }

    #[test]
    fn simple_and_recursive_queries_agree() {
        let env = ImplicitEnv::with_frame(vec![
            Type::Int.promote(),
            RuleType::mono(vec![Type::Int.promote()], Type::Bool),
            RuleType::mono(vec![Type::Bool.promote()], Type::Str),
        ]);
        for policy in [
            ResolutionPolicy::paper(),
            ResolutionPolicy::paper().without_cache(),
            ResolutionPolicy::paper().with_most_specific(),
        ] {
            check_agreement(&env, &Type::Str.promote(), &policy);
            check_agreement(&env, &Type::Bool.promote(), &policy);
            check_agreement(&env, &Type::Unit.promote(), &policy); // NoMatch
        }
    }

    #[test]
    fn polymorphic_instantiation_agrees() {
        // ∀a. {a} ⇒ a × a, plus Int — the paper's pair example.
        let env = ImplicitEnv::with_frame(vec![
            Type::Int.promote(),
            RuleType::new(
                vec![v("a")],
                vec![Type::var(v("a")).promote()],
                Type::prod(tv("a"), tv("a")),
            ),
        ]);
        let query = Type::prod(Type::Int, Type::Int).promote();
        let policy = ResolutionPolicy::paper();
        check_agreement(&env, &query, &policy);
        let proof = subtype_resolve(&env, &query, &policy).unwrap();
        assert_eq!(proof.type_args, vec![Type::Int]);
        assert_eq!(proof.steps(), 2);
    }

    #[test]
    fn partial_resolution_closes_by_axiom() {
        // Query {Int} ⇒ Bool against {Int} ⇒ Bool: the Int premise is
        // α-present in the query's own context and stays abstract.
        let env =
            ImplicitEnv::with_frame(vec![RuleType::mono(vec![Type::Int.promote()], Type::Bool)]);
        let query = RuleType::mono(vec![Type::Int.promote()], Type::Bool);
        let policy = ResolutionPolicy::paper();
        check_agreement(&env, &query, &policy);
        let proof = subtype_resolve(&env, &query, &policy).unwrap();
        assert!(matches!(
            proof.premises[0],
            SubProof::Axiom { index: 0, .. }
        ));
    }

    #[test]
    fn no_backtracking_commits_and_gets_stuck() {
        // Nearest frame's {Bool} ⇒ Str shadows the resolvable outer
        // one; Bool is unresolvable, and neither engine backtracks.
        let mut env = ImplicitEnv::with_frame(vec![Type::Str.promote()]);
        env.push(vec![RuleType::mono(vec![Type::Bool.promote()], Type::Str)]);
        let policy = ResolutionPolicy::paper();
        check_agreement(&env, &Type::Str.promote(), &policy);
        let err = subtype_resolve(&env, &Type::Str.promote(), &policy).unwrap_err();
        match err {
            ResolveError::Lookup { query, error } => {
                assert_eq!(query, Type::Bool.promote());
                assert_eq!(error, LookupError::NoMatch(Type::Bool));
            }
            other => panic!("expected stuck lookup, got {other}"),
        }
    }

    #[test]
    fn env_extension_agrees_including_assumption_levels() {
        // {Bool} ⇒ Int resolvable as the *rule query* {Bool} ⇒ Int
        // only by assuming Bool during recursion.
        let env =
            ImplicitEnv::with_frame(vec![RuleType::mono(vec![Type::Bool.promote()], Type::Int)]);
        let query = RuleType::mono(vec![Type::Bool.promote()], Type::Int);
        let ext = ResolutionPolicy::paper().with_env_extension();
        check_agreement(&env, &query, &ext);
        // And a two-level variant through an intermediate rule.
        let env2 = ImplicitEnv::with_frame(vec![
            RuleType::mono(vec![Type::Bool.promote()], Type::Int),
            RuleType::mono(vec![Type::Int.promote()], Type::Str),
        ]);
        let query2 = RuleType::mono(vec![Type::Bool.promote()], Type::Str);
        check_agreement(&env2, &query2, &ext);
        let proof = subtype_resolve(&env2, &query2, &ext).unwrap();
        assert!(proof.uses_assumption());
    }

    #[test]
    fn fuel_exhaustion_reports_the_same_subquery() {
        // {Int} ⇒ Int loops; both engines burn fuel identically
        // (compare cache-off, since a cache hit conserves fuel).
        let env =
            ImplicitEnv::with_frame(vec![RuleType::mono(vec![Type::Int.promote()], Type::Int)]);
        let policy = ResolutionPolicy::paper().without_cache().with_max_depth(7);
        check_agreement(&env, &Type::Int.promote(), &policy);
    }

    #[test]
    fn overlap_and_ambiguity_payloads_agree() {
        let overlapping = ImplicitEnv::with_frame(vec![
            RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int)),
            RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a"))),
        ]);
        let q = Type::arrow(Type::Int, Type::Int).promote();
        check_agreement(&overlapping, &q, &ResolutionPolicy::paper());
        check_agreement(
            &overlapping,
            &q,
            &ResolutionPolicy::paper().with_most_specific(),
        );
        // Underdetermined quantifier: ∀a. Int (a unused).
        let ambiguous =
            ImplicitEnv::with_frame(vec![RuleType::new(vec![v("a")], vec![], Type::Int)]);
        check_agreement(&ambiguous, &Type::Int.promote(), &ResolutionPolicy::paper());
    }

    #[test]
    fn guards_match_source_level_checks() {
        // Termination: {Int × Int} ⇒ Int violates the size measure.
        let bad = RuleType::mono(vec![Type::prod(Type::Int, Type::Int).promote()], Type::Int);
        let member = Member {
            itype: translate_rule(&bad),
            source: bad.clone(),
        };
        assert_eq!(
            check_member(&member).unwrap_err(),
            termination::check_rule(&bad).unwrap_err()
        );
        // Variable growth: ∀a. {a × a} ⇒ (a × Int) × Int.
        let grows = RuleType::new(
            vec![v("a")],
            vec![Type::prod(tv("a"), tv("a")).promote()],
            Type::prod(Type::prod(tv("a"), Type::Int), Type::Int),
        );
        let gm = Member {
            itype: translate_rule(&grows),
            source: grows.clone(),
        };
        assert_eq!(
            check_member(&gm).unwrap_err(),
            termination::check_rule(&grows).unwrap_err()
        );
        // Coherence: overlapping conclusions with a witness.
        let r1 = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        let r2 = RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a")));
        let inter = Intersection::from_context(&[r1.clone(), r2.clone()]);
        assert_eq!(
            unique_members(&inter).unwrap_err(),
            coherence::unique_instances(&[r1.clone(), r2.clone()]).unwrap_err()
        );
        assert_eq!(
            most_specific_members(&inter).unwrap_err(),
            coherence::exists_most_specific(&[r1, r2]).unwrap_err()
        );
    }

    #[test]
    fn indexed_prefilter_agrees_with_full_scan() {
        // A frame mixing rigid heads, a variable-headed (wildcard)
        // member, and an unresolvable premise chain, plus an outer
        // frame — exercises bucket hits, bucket misses with wildcard
        // fallback, and merged candidate ordering.
        let mut env = ImplicitEnv::with_frame(vec![
            Type::Str.promote(),
            RuleType::new(vec![v("a")], vec![Type::var(v("a")).promote()], tv("a")),
        ]);
        env.push(vec![
            Type::Int.promote(),
            RuleType::mono(vec![Type::Int.promote()], Type::Bool),
            RuleType::new(
                vec![v("a")],
                vec![Type::var(v("a")).promote()],
                Type::prod(tv("a"), tv("a")),
            ),
            RuleType::mono(vec![Type::Unit.promote()], Type::list(Type::Int)),
        ]);
        let sigma = translate_env(&env);
        let queries = [
            Type::Int.promote(),
            Type::Bool.promote(),
            Type::Str.promote(),
            Type::prod(Type::Int, Type::Int).promote(),
            Type::prod(Type::Bool, Type::Bool).promote(),
            Type::list(Type::Int).promote(), // stuck on Unit
            Type::arrow(Type::Int, Type::Bool).promote(), // wildcard only
            tv("zz_free").promote(),         // variable-headed target
        ];
        // Depth-capped: the wildcard member loops on variable-headed
        // targets, and the default 512 frames of `prove` outgrow the
        // debug-profile test stack.
        for policy in [
            ResolutionPolicy::paper().with_max_depth(64),
            ResolutionPolicy::paper()
                .with_most_specific()
                .with_max_depth(64),
            ResolutionPolicy::paper()
                .with_env_extension()
                .with_max_depth(64),
            ResolutionPolicy::paper().with_max_depth(3),
        ] {
            for q in &queries {
                let indexed = subtype_resolve_translated(&sigma, q, &policy);
                let scan = subtype_resolve_translated_scan(&sigma, q, &policy);
                assert_eq!(indexed, scan, "indexed/scan divergence for {q}");
            }
        }
        // Overlap error payloads (candidate order) must also agree.
        let overlapping = translate_env(&ImplicitEnv::with_frame(vec![
            RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int)),
            RuleType::new(vec![v("a")], vec![], Type::arrow(Type::Int, tv("a"))),
        ]));
        let q = Type::arrow(Type::Int, Type::Int).promote();
        let policy = ResolutionPolicy::paper();
        assert_eq!(
            subtype_resolve_translated(&overlapping, &q, &policy),
            subtype_resolve_translated_scan(&overlapping, &q, &policy),
        );
    }

    #[test]
    fn stability_guard_matches_source_level_check() {
        let mut env = ImplicitEnv::with_frame(vec![RuleType::new(
            vec![v("b")],
            vec![],
            Type::prod(tv("b"), Type::Int),
        )]);
        env.push(vec![Type::prod(Type::Int, Type::Int).promote()]);
        let sigma = translate_env(&env);
        let policy = ResolutionPolicy::paper();
        // Free query a × Int: unstable, same payload both ways.
        let free = Type::prod(tv("zz_free"), Type::Int).promote();
        assert_eq!(
            stable_query(&sigma, &free, &policy).unwrap_err(),
            coherence::query_stability(&env, &free, &policy).unwrap_err()
        );
        // Ground query: stable both ways.
        let ground = Type::prod(Type::Int, Type::Int).promote();
        assert!(stable_query(&sigma, &ground, &policy).is_ok());
        assert!(coherence::query_stability(&env, &ground, &policy).is_ok());
    }
}
