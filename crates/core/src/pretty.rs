//! Pretty printing (`Display`) for types, rule types and expressions.
//!
//! The output follows the paper's concrete notation, ASCII-fied the
//! way the bundled parser reads it back:
//!
//! * rule types: `forall a b. {rho1, rho2} => tau` (empty quantifiers
//!   and contexts omitted);
//! * queries: `?(rho)`;
//! * rule abstractions: `rule (rho) (e)`;
//! * rule application: `e with {e1 : rho1, ...}`;
//! * type application: `e [tau1, tau2]`.
//!
//! `parse(format!("{e}"))` round-trips for all expressible programs;
//! this is property-tested in the `parse` module.

use std::fmt;

use crate::symbol::base_name;
use crate::syntax::{BinOp, Expr, RuleType, Type, UnOp};

/// Precedence levels for types: arrow < prod < app < atom.
fn type_prec(ty: &Type) -> u8 {
    match ty {
        Type::Rule(_) => 0,
        Type::Arrow(_, _) => 1,
        Type::Prod(_, _) => 2,
        Type::Con(_, args) if !args.is_empty() => 3,
        Type::VarApp(_, _) => 3,
        _ => 4,
    }
}

fn fmt_type(ty: &Type, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = type_prec(ty);
    let parens = prec < min_prec;
    if parens {
        f.write_str("(")?;
    }
    match ty {
        Type::Var(v) => write!(f, "{}", base_name(*v))?,
        Type::Int => f.write_str("Int")?,
        Type::Bool => f.write_str("Bool")?,
        Type::Str => f.write_str("String")?,
        Type::Unit => f.write_str("Unit")?,
        Type::Arrow(a, b) => {
            fmt_type(a, 2, f)?;
            f.write_str(" -> ")?;
            fmt_type(b, 1, f)?;
        }
        Type::Prod(a, b) => {
            fmt_type(a, 3, f)?;
            f.write_str(" * ")?;
            fmt_type(b, 3, f)?;
        }
        Type::List(a) => {
            f.write_str("[")?;
            fmt_type(a, 0, f)?;
            f.write_str("]")?;
        }
        Type::Con(name, args) => {
            write!(f, "{name}")?;
            for a in args {
                f.write_str(" ")?;
                fmt_type(a, 4, f)?;
            }
        }
        Type::VarApp(head, args) => {
            write!(f, "{}", base_name(*head))?;
            for a in args {
                f.write_str(" ")?;
                fmt_type(a, 4, f)?;
            }
        }
        Type::Ctor(c) => write!(f, "{c}")?,
        Type::Rule(r) => fmt_rule(r, f)?,
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

fn fmt_rule(rho: &RuleType, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !rho.vars().is_empty() {
        f.write_str("forall")?;
        for v in rho.vars() {
            write!(f, " {}", base_name(*v))?;
        }
        f.write_str(". ")?;
    }
    if !rho.context().is_empty() {
        f.write_str("{")?;
        for (i, r) in rho.context().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            fmt_rule(r, f)?;
        }
        f.write_str("} => ")?;
    }
    fmt_type(rho.head(), 1, f)
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_type(self, 0, f)
    }
}

impl fmt::Display for RuleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_rule(self, f)
    }
}

/// Precedence levels for expressions.
fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Lam(..) | Expr::Fix(..) | Expr::If(..) | Expr::ListCase { .. } => 0,
        Expr::RuleApp(..) => 1,
        Expr::BinOp(op, ..) => match op {
            BinOp::Or => 2,
            BinOp::And => 3,
            BinOp::Eq | BinOp::Lt | BinOp::Le => 4,
            BinOp::Concat => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 7,
        },
        Expr::Cons(..) => 5,
        Expr::App(..) | Expr::TyApp(..) | Expr::Proj(..) | Expr::UnOp(..) => 8,
        Expr::Inject(..) | Expr::Match(..) => 8,
        _ => 9,
    }
}

fn fmt_expr(e: &Expr, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = expr_prec(e);
    let parens = prec < min_prec;
    if parens {
        f.write_str("(")?;
    }
    match e {
        Expr::Int(n) => write!(f, "{n}")?,
        Expr::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" })?,
        Expr::Str(s) => write!(f, "{s:?}")?,
        Expr::Unit => f.write_str("unit")?,
        Expr::Var(x) => write!(f, "{}", base_name(*x))?,
        Expr::Lam(x, t, b) => {
            write!(f, "\\{} : ", base_name(*x))?;
            fmt_type(t, 1, f)?;
            f.write_str(". ")?;
            fmt_expr(b, 0, f)?;
        }
        Expr::App(g, a) => {
            fmt_expr(g, 8, f)?;
            f.write_str(" ")?;
            fmt_expr(a, 9, f)?;
        }
        Expr::Query(r) => {
            f.write_str("?(")?;
            fmt_rule(r, f)?;
            f.write_str(")")?;
        }
        Expr::RuleAbs(r, b) => {
            f.write_str("rule (")?;
            fmt_rule(r, f)?;
            f.write_str(") (")?;
            fmt_expr(b, 0, f)?;
            f.write_str(")")?;
        }
        Expr::TyApp(g, ts) => {
            fmt_expr(g, 8, f)?;
            f.write_str(" [")?;
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_type(t, 0, f)?;
            }
            f.write_str("]")?;
        }
        Expr::RuleApp(g, args) => {
            fmt_expr(g, 2, f)?;
            f.write_str(" with {")?;
            for (i, (a, r)) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(a, 2, f)?;
                f.write_str(" : ")?;
                fmt_rule(r, f)?;
            }
            f.write_str("}")?;
        }
        Expr::If(c, t, el) => {
            f.write_str("if ")?;
            fmt_expr(c, 1, f)?;
            f.write_str(" then ")?;
            fmt_expr(t, 1, f)?;
            f.write_str(" else ")?;
            fmt_expr(el, 0, f)?;
        }
        Expr::BinOp(op, a, b) => {
            let p = expr_prec(e);
            // All binary operators print left-associatively.
            fmt_expr(a, p, f)?;
            write!(f, " {} ", op.symbol())?;
            fmt_expr(b, p + 1, f)?;
        }
        Expr::UnOp(op, a) => {
            match op {
                UnOp::Not => f.write_str("not ")?,
                UnOp::Neg => f.write_str("neg ")?,
                UnOp::IntToStr => f.write_str("showInt ")?,
            }
            fmt_expr(a, 9, f)?;
        }
        Expr::Pair(a, b) => {
            f.write_str("(")?;
            fmt_expr(a, 0, f)?;
            f.write_str(", ")?;
            fmt_expr(b, 0, f)?;
            f.write_str(")")?;
        }
        Expr::Fst(a) => {
            f.write_str("fst ")?;
            fmt_expr(a, 9, f)?;
        }
        Expr::Snd(a) => {
            f.write_str("snd ")?;
            fmt_expr(a, 9, f)?;
        }
        Expr::Nil(t) => {
            f.write_str("nil [")?;
            fmt_type(t, 0, f)?;
            f.write_str("]")?;
        }
        Expr::Cons(h, t) => {
            fmt_expr(h, 6, f)?;
            f.write_str(" :: ")?;
            fmt_expr(t, 5, f)?;
        }
        Expr::ListCase {
            scrut,
            nil,
            head,
            tail,
            cons,
        } => {
            f.write_str("case ")?;
            fmt_expr(scrut, 1, f)?;
            f.write_str(" of nil -> ")?;
            fmt_expr(nil, 1, f)?;
            write!(f, " | {} :: {} -> ", base_name(*head), base_name(*tail))?;
            fmt_expr(cons, 0, f)?;
        }
        Expr::Fix(x, t, b) => {
            write!(f, "fix {} : ", base_name(*x))?;
            fmt_type(t, 1, f)?;
            f.write_str(". ")?;
            fmt_expr(b, 0, f)?;
        }
        Expr::Make(name, args, fields) => {
            write!(f, "{name}")?;
            if !args.is_empty() {
                f.write_str(" [")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    fmt_type(t, 0, f)?;
                }
                f.write_str("]")?;
            }
            f.write_str(" { ")?;
            for (i, (u, ev)) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{u} = ")?;
                fmt_expr(ev, 1, f)?;
            }
            f.write_str(" }")?;
        }
        Expr::Proj(a, u) => {
            fmt_expr(a, 9, f)?;
            write!(f, ".{u}")?;
        }
        Expr::Inject(c, ts, args) => {
            write!(f, "con {c}")?;
            if !ts.is_empty() {
                f.write_str(" [")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    fmt_type(t, 0, f)?;
                }
                f.write_str("]")?;
            }
            f.write_str(" (")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(a, 1, f)?;
            }
            f.write_str(")")?;
        }
        Expr::Match(scrut, arms) => {
            f.write_str("match ")?;
            fmt_expr(scrut, 1, f)?;
            f.write_str(" { ")?;
            for (i, arm) in arms.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write!(f, "{}", arm.ctor)?;
                for b in &arm.binders {
                    write!(f, " {}", base_name(*b))?;
                }
                f.write_str(" -> ")?;
                fmt_expr(&arm.body, 2, f)?;
            }
            f.write_str(" }")?;
        }
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn tv(s: &str) -> Type {
        Type::var(Symbol::intern(s))
    }

    #[test]
    fn types_print_with_expected_precedence() {
        assert_eq!(
            Type::arrow(Type::Int, Type::Bool).to_string(),
            "Int -> Bool"
        );
        assert_eq!(
            Type::arrow(Type::arrow(Type::Int, Type::Int), Type::Bool).to_string(),
            "(Int -> Int) -> Bool"
        );
        assert_eq!(
            Type::arrow(Type::Int, Type::arrow(Type::Int, Type::Bool)).to_string(),
            "Int -> Int -> Bool"
        );
        assert_eq!(
            Type::prod(Type::Int, Type::prod(Type::Bool, Type::Int)).to_string(),
            "Int * (Bool * Int)"
        );
        assert_eq!(Type::list(Type::Int).to_string(), "[Int]");
    }

    #[test]
    fn rule_types_print_like_the_paper() {
        let a = Symbol::intern("a");
        let rho = RuleType::new(
            vec![a],
            vec![Type::Var(a).promote()],
            Type::prod(Type::Var(a), Type::Var(a)),
        );
        assert_eq!(rho.to_string(), "forall a. {a} => a * a");
        assert_eq!(Type::rule(rho).to_string(), "forall a. {a} => a * a");
        assert_eq!(Type::Int.promote().to_string(), "Int");
    }

    #[test]
    fn rule_type_in_arrow_is_parenthesized() {
        let rho = RuleType::mono(vec![Type::Int.promote()], Type::Bool);
        let t = Type::arrow(Type::rule(rho), Type::Int);
        assert_eq!(t.to_string(), "({Int} => Bool) -> Int");
    }

    #[test]
    fn expressions_print_readably() {
        let e = Expr::binop(BinOp::Add, Expr::query_simple(Type::Int), Expr::Int(1));
        assert_eq!(e.to_string(), "?(Int) + 1");
        let lam = Expr::lam("x", Type::Int, Expr::var("x"));
        assert_eq!(lam.to_string(), "\\x : Int. x");
    }

    #[test]
    fn application_is_left_associative() {
        let e = Expr::app(Expr::app(Expr::var("f"), Expr::var("x")), Expr::var("y"));
        assert_eq!(e.to_string(), "f x y");
        let e2 = Expr::app(Expr::var("f"), Expr::app(Expr::var("g"), Expr::var("x")));
        assert_eq!(e2.to_string(), "f (g x)");
    }

    #[test]
    fn implicit_sugar_prints_as_rule_with() {
        let e = Expr::implicit(
            vec![(Expr::Int(1), Type::Int.promote())],
            Expr::query_simple(Type::Int),
            Type::Int,
        );
        assert_eq!(e.to_string(), "rule ({Int} => Int) (?(Int)) with {1 : Int}");
    }

    #[test]
    fn fresh_binders_print_their_base_name() {
        let a = crate::symbol::fresh("a");
        assert_eq!(tv("a").to_string(), Type::Var(a).to_string());
    }

    #[test]
    fn operator_precedence_parenthesizes_correctly() {
        // (1 + 2) * 3 vs 1 + 2 * 3
        let sum = Expr::binop(BinOp::Add, Expr::Int(1), Expr::Int(2));
        let prod = Expr::binop(BinOp::Mul, sum.clone(), Expr::Int(3));
        assert_eq!(prod.to_string(), "(1 + 2) * 3");
        let prod2 = Expr::binop(BinOp::Mul, Expr::Int(2), Expr::Int(3));
        let sum2 = Expr::binop(BinOp::Add, Expr::Int(1), prod2);
        assert_eq!(sum2.to_string(), "1 + 2 * 3");
    }
}
