//! Matching and unification (Appendix "Unification").
//!
//! Resolution needs *one-way matching*: `unify(τ′ ≐ τ; ᾱ)` finds a
//! substitution θ with support contained in `ᾱ` (the rule's quantified
//! variables) such that `θτ′ = τ`. The target `τ` is rigid — its
//! variables act as constants — which is exactly the paper's
//! `⌈τ′ ≐ τ⌉_ᾱ`.
//!
//! The coherence analysis additionally needs *two-way unification*
//! ([`mgu`]) to decide whether two rule heads can overlap under some
//! substitution.
//!
//! Both operations descend under the binders of rule types: binders
//! are matched positionally, and a solution that would let a locally
//! bound variable escape its scope is rejected. Context (rule-set)
//! matching follows the appendix's nondeterministic `⊎` rule via a
//! backtracking search: every pattern premise must match some target
//! premise and every target premise must be matched (substitution may
//! collapse several pattern premises onto one target premise).

use std::collections::BTreeMap;

use crate::subst::TySubst;
use crate::symbol::Symbol;
use crate::syntax::{RuleType, TyCon, TyVar, Type};

/// Pairs of (pattern-bound, target-bound) variables introduced by the
/// binders traversed so far.
type BinderEnv = Vec<(Symbol, Symbol)>;

struct Matcher {
    /// Variables the substitution may bind (the ᾱ of `⌈·⌉_ᾱ`).
    flexible: Vec<TyVar>,
    solution: BTreeMap<TyVar, Type>,
}

impl Matcher {
    fn new(flexible: &[TyVar]) -> Matcher {
        Matcher {
            flexible: flexible.to_vec(),
            solution: BTreeMap::new(),
        }
    }

    /// `true` if `ty` mentions any locally bound target variable (a
    /// scope-escape check for solutions).
    fn escapes(ty: &Type, binders: &BinderEnv) -> bool {
        let ftv = ty.ftv();
        binders.iter().any(|(_, t)| ftv.contains(t))
    }

    fn match_type(&mut self, pattern: &Type, target: &Type, binders: &BinderEnv) -> bool {
        match (pattern, target) {
            (Type::Var(p), _) => {
                // A pattern variable is: locally bound (rigid, must
                // correspond to the paired target binder), flexible
                // (bind or check consistency), or free-rigid (must
                // equal the same variable).
                if let Some((_, t)) = binders.iter().rev().find(|(pv, _)| pv == p) {
                    return matches!(target, Type::Var(tv) if tv == t);
                }
                if self.flexible.contains(p) {
                    if Matcher::escapes(target, binders) {
                        return false;
                    }
                    match self.solution.get(p) {
                        Some(bound) => bound == target,
                        None => {
                            self.solution.insert(*p, target.clone());
                            true
                        }
                    }
                } else {
                    matches!(target, Type::Var(tv) if tv == p
                        && !binders.iter().any(|(_, b)| b == tv))
                }
            }
            (Type::Int, Type::Int)
            | (Type::Bool, Type::Bool)
            | (Type::Str, Type::Str)
            | (Type::Unit, Type::Unit) => true,
            (Type::Arrow(p1, p2), Type::Arrow(t1, t2))
            | (Type::Prod(p1, p2), Type::Prod(t1, t2)) => {
                self.match_type(p1, t1, binders) && self.match_type(p2, t2, binders)
            }
            (Type::List(p), Type::List(t)) => self.match_type(p, t, binders),
            (Type::Con(pn, pa), Type::Con(tn, ta)) => {
                pn == tn
                    && pa.len() == ta.len()
                    && pa
                        .iter()
                        .zip(ta)
                        .all(|(p, t)| self.match_type(p, t, binders))
            }
            (Type::VarApp(pf, pargs), _) => {
                // Haskell-98-style constructor matching: decompose
                // the target's outermost constructor and bind the
                // head variable to it.
                if let Some((_, t)) = binders.iter().rev().find(|(pv, _)| pv == pf) {
                    // Locally bound head: the target must be the
                    // paired variable applied to as many arguments.
                    let Type::VarApp(tf, targs) = target else {
                        return false;
                    };
                    return tf == t
                        && pargs.len() == targs.len()
                        && pargs
                            .iter()
                            .zip(targs)
                            .all(|(p, a)| self.match_type(p, a, binders));
                }
                if self.flexible.contains(pf) {
                    let (head_image, targs): (Type, Vec<Type>) = match target {
                        Type::List(el) if pargs.len() == 1 => {
                            (Type::Ctor(TyCon::List), vec![(**el).clone()])
                        }
                        Type::Con(n, targs) if pargs.len() == targs.len() => {
                            (Type::Ctor(TyCon::Named(*n)), targs.clone())
                        }
                        Type::VarApp(g, targs) if pargs.len() == targs.len() => {
                            if binders.iter().any(|(_, b)| b == g) {
                                return false; // bound head would escape
                            }
                            (Type::Var(*g), targs.clone())
                        }
                        _ => return false,
                    };
                    match self.solution.get(pf) {
                        Some(bound) if *bound != head_image => return false,
                        Some(_) => {}
                        None => {
                            self.solution.insert(*pf, head_image);
                        }
                    }
                    return pargs
                        .iter()
                        .zip(&targs)
                        .all(|(p, a)| self.match_type(p, a, binders));
                }
                // Free-rigid head: only an identical application.
                match target {
                    Type::VarApp(tf, targs) => {
                        tf == pf
                            && !binders.iter().any(|(_, b)| b == tf)
                            && pargs.len() == targs.len()
                            && pargs
                                .iter()
                                .zip(targs)
                                .all(|(p, a)| self.match_type(p, a, binders))
                    }
                    _ => false,
                }
            }
            (Type::Ctor(a), Type::Ctor(b)) => a == b,
            // Nullary constructor applications are identified with
            // constructor references.
            (Type::Ctor(TyCon::Named(a)), Type::Con(b, bs)) if bs.is_empty() => a == b,
            (Type::Con(a, asz), Type::Ctor(TyCon::Named(b))) if asz.is_empty() => a == b,
            (Type::Rule(p), Type::Rule(t)) => self.match_rule_under(p, t, binders),
            _ => false,
        }
    }

    fn match_rule_under(
        &mut self,
        pattern: &RuleType,
        target: &RuleType,
        binders: &BinderEnv,
    ) -> bool {
        if pattern.vars().len() != target.vars().len() {
            return false;
        }
        let mut inner = binders.clone();
        inner.extend(
            pattern
                .vars()
                .iter()
                .copied()
                .zip(target.vars().iter().copied()),
        );
        if !self.match_type(pattern.head(), target.head(), &inner) {
            return false;
        }
        self.match_context(pattern.context(), target.context(), &inner)
    }

    /// Backtracking rule-set matching: a total map from pattern
    /// premises to target premises that is onto the target premises.
    fn match_context(
        &mut self,
        pattern: &[RuleType],
        target: &[RuleType],
        binders: &BinderEnv,
    ) -> bool {
        fn go(
            m: &mut Matcher,
            pattern: &[RuleType],
            target: &[RuleType],
            binders: &BinderEnv,
            used: &mut Vec<bool>,
        ) -> bool {
            let Some((first, rest)) = pattern.split_first() else {
                return used.iter().all(|u| *u);
            };
            for (i, t) in target.iter().enumerate() {
                let saved = m.solution.clone();
                let was_used = used[i];
                if m.match_rule_under(first, t, binders) {
                    used[i] = true;
                    if go(m, rest, target, binders, used) {
                        return true;
                    }
                }
                used[i] = was_used;
                m.solution = saved;
            }
            false
        }
        if pattern.is_empty() && target.is_empty() {
            return true;
        }
        if pattern.len() < target.len() {
            return false;
        }
        let mut used = vec![false; target.len()];
        go(self, pattern, target, binders, &mut used)
    }

    fn into_subst(self) -> TySubst {
        let mut s = TySubst::new();
        for (v, t) in self.solution {
            s.bind(v, t);
        }
        s
    }
}

/// One-way matching `⌈pattern ≐ target⌉_vars`: finds θ with
/// `dom(θ) ⊆ vars` and `θ(pattern) = target`, or `None`.
///
/// # Examples
///
/// ```
/// use implicit_core::symbol::Symbol;
/// use implicit_core::syntax::Type;
/// use implicit_core::unify::match_type;
///
/// let a = Symbol::intern("a");
/// let pattern = Type::prod(Type::Var(a), Type::Var(a));
/// let target = Type::prod(Type::Int, Type::Int);
/// let theta = match_type(&pattern, &target, &[a]).unwrap();
/// assert_eq!(theta.apply_type(&pattern), target);
/// ```
pub fn match_type(pattern: &Type, target: &Type, vars: &[TyVar]) -> Option<TySubst> {
    // A ground pattern has no variables to instantiate, so the match
    // is decided by (hash-consed, O(1)-amortized) identity — except
    // around first-class constructor references, whose nullary
    // `Con`/`Ctor` identification needs the full matcher.
    if crate::intern::is_ground(pattern) {
        match crate::intern::ground_head_check(pattern, target) {
            crate::intern::GroundCheck::Match => return Some(TySubst::new()),
            crate::intern::GroundCheck::NoMatch => return None,
            crate::intern::GroundCheck::Unknown => {}
        }
    }
    let mut m = Matcher::new(vars);
    if m.match_type(pattern, target, &Vec::new()) {
        Some(m.into_subst())
    } else {
        None
    }
}

/// One-way matching of whole rule types (binders matched
/// positionally).
pub fn match_rule(pattern: &RuleType, target: &RuleType, vars: &[TyVar]) -> Option<TySubst> {
    let mut m = Matcher::new(vars);
    if m.match_rule_under(pattern, target, &Vec::new()) {
        Some(m.into_subst())
    } else {
        None
    }
}

/// First-order most-general unification of two types, treating every
/// free variable as flexible. Used by the coherence analysis to ask
/// "can these two heads describe the same type under *some*
/// substitution?".
///
/// Rule types unify binder-positionally; bound variables are rigid.
/// Returns `None` when the types do not unify (including occurs-check
/// failures).
pub fn mgu(left: &Type, right: &Type) -> Option<TySubst> {
    let mut subst = TySubst::new();
    if unify_types(
        &subst.apply_type(left),
        &subst.apply_type(right),
        &mut subst,
        &Vec::new(),
    ) {
        Some(subst)
    } else {
        None
    }
}

/// Binds an arrow-kinded head variable to a constructor or another
/// head variable during unification. (By the time this is called the
/// head has already been chased through `subst`, so it is unbound.)
fn bind_head(subst: &mut TySubst, f: Symbol, image: Type) -> bool {
    if image == Type::Var(f) {
        return true;
    }
    let single = TySubst::single(f, image);
    *subst = single.compose(subst);
    true
}

fn unify_types(l: &Type, r: &Type, subst: &mut TySubst, rigid: &Vec<Symbol>) -> bool {
    let l = subst.apply_type(l);
    let r = subst.apply_type(r);
    match (&l, &r) {
        (Type::Var(a), Type::Var(b)) if a == b => true,
        (Type::Var(a), other) | (other, Type::Var(a)) if !rigid.contains(a) => {
            if matches!(other, Type::Ctor(_)) {
                return false; // kind mismatch: * variable vs constructor
            }
            if other.ftv().contains(a) {
                return false; // occurs check
            }
            // A flexible variable may not capture a rigid (locally
            // bound) variable.
            let other_ftv = other.ftv();
            if rigid.iter().any(|rv| other_ftv.contains(rv)) {
                return false;
            }
            let single = TySubst::single(*a, other.clone());
            *subst = single.compose(subst);
            true
        }
        (Type::Int, Type::Int)
        | (Type::Bool, Type::Bool)
        | (Type::Str, Type::Str)
        | (Type::Unit, Type::Unit) => true,
        (Type::Arrow(a1, b1), Type::Arrow(a2, b2)) | (Type::Prod(a1, b1), Type::Prod(a2, b2)) => {
            unify_types(a1, a2, subst, rigid) && unify_types(b1, b2, subst, rigid)
        }
        (Type::List(a), Type::List(b)) => unify_types(a, b, subst, rigid),
        (Type::Con(n1, a1), Type::Con(n2, a2)) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1
                    .iter()
                    .zip(a2)
                    .all(|(x, y)| unify_types(x, y, subst, rigid))
        }
        (Type::VarApp(f1, a1), Type::VarApp(f2, a2)) => {
            if a1.len() != a2.len() {
                return false;
            }
            let heads_ok = if f1 == f2 {
                true
            } else if !rigid.contains(f1) {
                bind_head(subst, *f1, Type::Var(*f2))
            } else if !rigid.contains(f2) {
                bind_head(subst, *f2, Type::Var(*f1))
            } else {
                false
            };
            heads_ok
                && a1
                    .iter()
                    .zip(a2)
                    .all(|(x, y)| unify_types(x, y, subst, rigid))
        }
        (Type::VarApp(f, fa), Type::List(el)) | (Type::List(el), Type::VarApp(f, fa)) => {
            fa.len() == 1
                && !rigid.contains(f)
                && bind_head(subst, *f, Type::Ctor(TyCon::List))
                && unify_types(&fa[0], el, subst, rigid)
        }
        (Type::VarApp(f, fa), Type::Con(n, na)) | (Type::Con(n, na), Type::VarApp(f, fa)) => {
            fa.len() == na.len()
                && !rigid.contains(f)
                && bind_head(subst, *f, Type::Ctor(TyCon::Named(*n)))
                && fa
                    .iter()
                    .zip(na)
                    .all(|(x, y)| unify_types(x, y, subst, rigid))
        }
        (Type::Ctor(c1), Type::Ctor(c2)) => c1 == c2,
        (Type::Ctor(TyCon::Named(a)), Type::Con(b, bs))
        | (Type::Con(b, bs), Type::Ctor(TyCon::Named(a)))
            if bs.is_empty() =>
        {
            a == b
        }
        (Type::Rule(r1), Type::Rule(r2)) => {
            if r1.vars().len() != r2.vars().len() || r1.context().len() != r2.context().len() {
                return false;
            }
            // Rename both binder lists to shared fresh rigid names.
            let shared: Vec<Symbol> = r1
                .vars()
                .iter()
                .map(|v| crate::symbol::fresh(crate::symbol::base_name(*v)))
                .collect();
            let shared_tys: Vec<Type> = shared.iter().map(|v| Type::Var(*v)).collect();
            let s1 = TySubst::bind_all(r1.vars(), &shared_tys);
            let s2 = TySubst::bind_all(r2.vars(), &shared_tys);
            let mut rigid2 = rigid.clone();
            rigid2.extend(shared.iter().copied());
            if !unify_types(
                &s1.apply_type(r1.head()),
                &s2.apply_type(r2.head()),
                subst,
                &rigid2,
            ) {
                return false;
            }
            // Contexts are canonically ordered; unify pointwise. (A
            // full set-unification would permute; pointwise is
            // sufficient for the coherence analysis, which only needs
            // a sound "may overlap" approximation, and exact for
            // contexts that are already in canonical order.)
            r1.context().iter().zip(r2.context()).all(|(c1, c2)| {
                unify_types(
                    &s1.apply_type(&c1.to_type()),
                    &s2.apply_type(&c2.to_type()),
                    subst,
                    &rigid2,
                )
            })
        }
        _ => false,
    }
}

/// Does `rho`'s head match `target` for some instantiation of its
/// quantifiers? This is the `ρ ≻ τ` relation of the operational
/// semantics (`∀ᾱ.π ⇒ τ′ ≻ τ  ⇔  ∃θ. θ = ⌈τ′ ≐ τ⌉_ᾱ`).
pub fn head_matches(rho: &RuleType, target: &Type) -> Option<TySubst> {
    match_type(rho.head(), target, rho.vars())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    #[test]
    fn matches_instantiate_flexible_vars() {
        let theta = match_type(
            &Type::arrow(tv("a"), tv("b")),
            &Type::arrow(Type::Int, Type::Bool),
            &[v("a"), v("b")],
        )
        .unwrap();
        assert_eq!(theta.get(v("a")), Some(&Type::Int));
        assert_eq!(theta.get(v("b")), Some(&Type::Bool));
    }

    #[test]
    fn inconsistent_matches_fail() {
        assert!(match_type(
            &Type::prod(tv("a"), tv("a")),
            &Type::prod(Type::Int, Type::Bool),
            &[v("a")]
        )
        .is_none());
    }

    #[test]
    fn rigid_variables_only_match_themselves() {
        // b is rigid (not in the flexible set).
        assert!(match_type(&tv("b"), &Type::Int, &[v("a")]).is_none());
        assert!(match_type(&tv("b"), &tv("b"), &[v("a")]).is_some());
    }

    #[test]
    fn target_is_rigid() {
        // Matching is one-way: Int does not match against a variable
        // target unless equal.
        assert!(match_type(&Type::Int, &tv("a"), &[v("a")]).is_none());
    }

    #[test]
    fn matching_descends_under_binders() {
        // pattern ∀c. c → a   target ∀d. d → Int  with a flexible
        let pat = RuleType::new(vec![v("c")], vec![], Type::arrow(tv("c"), tv("a")));
        let tgt = RuleType::new(vec![v("d")], vec![], Type::arrow(tv("d"), Type::Int));
        let theta = match_rule(&pat, &tgt, &[v("a")]).unwrap();
        assert_eq!(theta.get(v("a")), Some(&Type::Int));
    }

    #[test]
    fn bound_variables_may_not_escape() {
        // pattern ∀c. c → a   target ∀d. d → d : would need a ↦ d.
        let pat = RuleType::new(vec![v("c")], vec![], Type::arrow(tv("c"), tv("a")));
        let tgt = RuleType::new(vec![v("d")], vec![], Type::arrow(tv("d"), tv("d")));
        assert!(match_rule(&pat, &tgt, &[v("a")]).is_none());
    }

    #[test]
    fn context_matching_permutes() {
        // pattern {a, Bool} ⇒ a   target {Bool, Int} ⇒ Int
        let pat = RuleType::new(
            vec![],
            vec![tv("a").promote(), Type::Bool.promote()],
            tv("a"),
        );
        let tgt = RuleType::new(
            vec![],
            vec![Type::Bool.promote(), Type::Int.promote()],
            Type::Int,
        );
        let theta = match_rule(&pat, &tgt, &[v("a")]).unwrap();
        assert_eq!(theta.get(v("a")), Some(&Type::Int));
    }

    #[test]
    fn context_matching_may_collapse_premises() {
        // pattern {a, b} ⇒ a × b  target {Int} ⇒ Int × Int
        // (the appendix ⊎ rule: both a and b map to Int).
        let pat = RuleType::new(
            vec![],
            vec![tv("a").promote(), tv("b").promote()],
            Type::prod(tv("a"), tv("b")),
        );
        let tgt = RuleType::new(
            vec![],
            vec![Type::Int.promote()],
            Type::prod(Type::Int, Type::Int),
        );
        assert!(match_rule(&pat, &tgt, &[v("a"), v("b")]).is_some());
    }

    #[test]
    fn context_matching_requires_target_coverage() {
        // pattern {Int} ⇒ Int cannot match target {Int, Bool} ⇒ Int:
        // the Bool premise would be dropped.
        let pat = RuleType::new(vec![], vec![Type::Int.promote()], Type::Int);
        let tgt = RuleType::new(
            vec![],
            vec![Type::Int.promote(), Type::Bool.promote()],
            Type::Int,
        );
        assert!(match_rule(&pat, &tgt, &[]).is_none());
    }

    #[test]
    fn head_matches_is_the_succ_relation() {
        // ∀a. a → Int ≻ Int → Int
        let rho = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), Type::Int));
        assert!(head_matches(&rho, &Type::arrow(Type::Int, Type::Int)).is_some());
        assert!(head_matches(&rho, &Type::arrow(Type::Int, Type::Bool)).is_none());
    }

    #[test]
    fn mgu_unifies_both_sides() {
        let theta = mgu(
            &Type::arrow(tv("a"), Type::Int),
            &Type::arrow(Type::Bool, tv("b")),
        )
        .unwrap();
        assert_eq!(theta.apply_type(&tv("a")), Type::Bool);
        assert_eq!(theta.apply_type(&tv("b")), Type::Int);
    }

    #[test]
    fn mgu_occurs_check() {
        assert!(mgu(&tv("a"), &Type::list(tv("a"))).is_none());
    }

    #[test]
    fn mgu_detects_overlap_of_polymorphic_heads() {
        // ∀a. a → Int and ∀b. Int → b overlap at Int → Int.
        let h1 = Type::arrow(tv("a"), Type::Int);
        let h2 = Type::arrow(Type::Int, tv("b"));
        assert!(mgu(&h1, &h2).is_some());
        // ∀a. a × a and Int → Int do not overlap.
        assert!(mgu(
            &Type::prod(tv("a"), tv("a")),
            &Type::arrow(Type::Int, Type::Int)
        )
        .is_none());
    }

    #[test]
    fn mgu_solution_is_idempotent_on_examples() {
        let l = Type::prod(tv("x"), tv("y"));
        let r = Type::prod(tv("y"), Type::Int);
        let theta = mgu(&l, &r).unwrap();
        assert_eq!(theta.apply_type(&l), theta.apply_type(&r));
        let once = theta.apply_type(&l);
        assert_eq!(theta.apply_type(&once), once);
    }
}
