//! Interned identifiers.
//!
//! Names in the calculus — term variables, type variables, interface
//! names, record field names — are interned into [`Symbol`]s: cheap,
//! `Copy`, order- and hash-friendly handles into a global, append-only
//! string table. Interning the same string twice yields the same
//! symbol, so symbol equality is string equality.
//!
//! The module also provides [`fresh`], a capture-avoiding fresh-name
//! supply used when renaming bound variables apart (the paper assumes
//! "all variables in binders are distinct; if not, they can easily be
//! renamed apart").

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// `Symbol`s compare, hash and copy in O(1). The underlying string is
/// recovered with [`Symbol::as_str`] or via `Display`.
///
/// # Examples
///
/// ```
/// use implicit_core::symbol::Symbol;
///
/// let a = Symbol::intern("alpha");
/// let b = Symbol::intern("alpha");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "alpha");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    table: std::collections::HashMap<&'static str, u32>,
    fresh_counter: u64,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: std::collections::HashMap::new(),
            fresh_counter: 0,
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.table.get(name) {
            return Symbol(id);
        }
        // Leak the string: the table is global and append-only, so the
        // allocation lives for the program lifetime by design.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(i.names.len()).expect("interner overflow");
        i.names.push(leaked);
        i.table.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("interner poisoned");
        i.names[self.0 as usize]
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

/// Returns a fresh symbol whose name starts with `stem`.
///
/// Fresh names contain a `%` character, which the lexer rejects in
/// ordinary identifiers, so a fresh name can never collide with a name
/// appearing in a parsed program, and successive calls never return
/// the same symbol.
///
/// # Examples
///
/// ```
/// use implicit_core::symbol::fresh;
///
/// let a = fresh("a");
/// let b = fresh("a");
/// assert_ne!(a, b);
/// ```
pub fn fresh(stem: &str) -> Symbol {
    let n = {
        let mut i = interner().lock().expect("interner poisoned");
        i.fresh_counter += 1;
        i.fresh_counter
    };
    Symbol::intern(&format!("{stem}%{n}"))
}

/// Returns the current fresh-name counter.
///
/// Serialized session artifacts record this watermark so a process
/// that rehydrates a session can advance its own counter past every
/// fresh name the artifact may mention (see
/// [`ensure_fresh_at_least`]); without it, a newly minted `ev%3`
/// could collide with a deserialized `ev%3` bound to different
/// evidence.
pub fn fresh_watermark() -> u64 {
    let i = interner().lock().expect("interner poisoned");
    i.fresh_counter
}

/// Advances the fresh-name counter to at least `n`.
///
/// Never moves the counter backwards, so interleaved loads from
/// several artifacts compose.
pub fn ensure_fresh_at_least(n: u64) {
    let mut i = interner().lock().expect("interner poisoned");
    if i.fresh_counter < n {
        i.fresh_counter = n;
    }
}

/// Strips the freshness suffix from a symbol's name, for display.
///
/// `strip_fresh(fresh("beta"))` starts with `"beta"`.
pub fn base_name(sym: Symbol) -> &'static str {
    let s = sym.as_str();
    match s.find('%') {
        Some(ix) => &s[..ix],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("x");
        let b = Symbol::intern("x");
        let c = Symbol::intern("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "x");
        assert_eq!(c.as_str(), "y");
    }

    #[test]
    fn fresh_names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(fresh("t")));
        }
    }

    #[test]
    fn fresh_names_keep_their_stem() {
        let f = fresh("gamma");
        assert_eq!(base_name(f), "gamma");
        assert!(f.as_str().starts_with("gamma%"));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let s = Symbol::intern("show");
        assert_eq!(format!("{s}"), "show");
        assert_eq!(format!("{s:?}"), "`show`");
    }

    #[test]
    fn symbols_are_ordered_by_creation() {
        // Ordering is an implementation detail but must be total.
        let a = Symbol::intern("ord-test-1");
        let b = Symbol::intern("ord-test-2");
        assert!(a < b || b < a);
    }
}
