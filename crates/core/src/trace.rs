//! Structured tracing and unified metrics for the whole pipeline.
//!
//! Every stage of the system — resolution ([`crate::resolve`]), the
//! typechecker, elaboration, both evaluators, and the batch driver —
//! reports what it does as [`TraceEvent`]s through a [`TraceSink`].
//! The design goals, in order:
//!
//! 1. **Zero cost when disabled.** The hot resolution path is generic
//!    over the sink ([`crate::resolve::resolve_with`]); the default
//!    [`NullSink`] has an `#[inline(always)] fn enabled() -> false`,
//!    so every `if sink.enabled() { … }` guard — and the event
//!    construction behind it, including its `String` payloads — is
//!    statically dead code in the monomorphized default path used by
//!    [`crate::resolve::resolve`]. Enabled tracing goes through
//!    `&mut dyn TraceSink` (or the [`SharedSink`] handle) and pays
//!    for what it observes.
//! 2. **Deterministic streams.** Events carry *no* wall-clock data
//!    and no interner ids — payloads are pretty-printed types and
//!    structural counters — so two runs of the same program produce
//!    byte-identical event streams. Timestamps are added sink-side
//!    (see [`ChromeSink`]) where nondeterminism is expected.
//! 3. **Cache transparency.** A derivation-cache hit *replays* the
//!    cached derivation through the same emission helpers a fresh
//!    search uses, so a cache-warm stream differs from a cache-off
//!    stream only in [`TraceEvent::CacheHit`]/[`TraceEvent::CacheMiss`]
//!    markers — a property pinned by `crates/pipeline/tests/`
//!    `trace_determinism.rs`.
//!
//! [`MetricsRegistry`] is the unified counter snapshot: it subsumes
//! the per-derivation [`crate::resolve::ResolutionStats`], the
//! environment's cache counters, the opsem runtime-memo counters, the
//! pipeline `SessionStats`, the VM's fuel/tail-call/fix-unfold
//! counters, and the batch driver's job/steal counts. It can be
//! filled directly or by feeding it events ([`MetricsSink`]).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// A pipeline stage delimited by [`TraceEvent::PhaseStart`] /
/// [`TraceEvent::PhaseEnd`] spans.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Surface-syntax parsing.
    Parse,
    /// Type checking (λ⇒ judgment `Γ;Δ ⊢ e : ρ`).
    Typecheck,
    /// Elaboration to System F.
    Elaborate,
    /// The §4 preservation check on the elaborated term.
    Preservation,
    /// Bytecode compilation of the elaborated term.
    Compile,
    /// Tree-walking System F evaluation.
    Eval,
    /// Bytecode-VM execution.
    Vm,
    /// Direct operational-semantics evaluation.
    Opsem,
    /// One-off prelude construction in a warm session.
    Prelude,
}

impl Phase {
    /// Stable lower-case name, used as the Chrome-trace span name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Typecheck => "typecheck",
            Phase::Elaborate => "elaborate",
            Phase::Preservation => "preservation",
            Phase::Compile => "compile",
            Phase::Eval => "eval",
            Phase::Vm => "vm",
            Phase::Opsem => "opsem",
            Phase::Prelude => "prelude",
        }
    }
}

/// One structured observation from some pipeline stage.
///
/// Payloads are deliberately self-contained (pretty-printed types,
/// plain counters): no interner ids, no wall-clock values, nothing
/// that could differ between two runs of the same program.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent {
    /// A pipeline phase began.
    PhaseStart {
        /// The phase.
        phase: Phase,
    },
    /// A pipeline phase finished.
    PhaseEnd {
        /// The phase.
        phase: Phase,
    },
    /// Resolution entered a (sub-)query (`Δ ⊢r ρ`).
    QueryEnter {
        /// The query, pretty-printed.
        query: String,
        /// Recursion depth (0 = the original query).
        depth: usize,
        /// Termination measure: the size `|τ|` of the query head,
        /// the quantity Appendix A requires to strictly decrease.
        measure: usize,
    },
    /// The derivation cache held a derivation for this query.
    CacheHit {
        /// The query, pretty-printed.
        query: String,
    },
    /// The derivation cache had no entry for this query.
    CacheMiss {
        /// The query, pretty-printed.
        query: String,
    },
    /// Lookup match-tested an environment rule and committed to it.
    CandidateAdmitted {
        /// Frame index, innermost-first.
        frame: usize,
        /// Rule position within the frame.
        index: usize,
        /// The stored rule, pretty-printed.
        rule: String,
    },
    /// Lookup match-tested an environment rule the head index
    /// admitted, but did not commit to it (no match, or lost the
    /// most-specific comparison).
    CandidateRejected {
        /// Frame index, innermost-first.
        frame: usize,
        /// Rule position within the frame.
        index: usize,
        /// The stored rule, pretty-printed.
        rule: String,
    },
    /// Lookup used an assumption frame of the §3.2
    /// environment-extension variant.
    AssumptionUsed {
        /// Recursion level whose queried context was assumed.
        level: usize,
        /// Premise position within that context.
        index: usize,
        /// The assumed rule, pretty-printed.
        rule: String,
    },
    /// A premise stayed abstract by partial resolution.
    PremiseAssumed {
        /// Position in the queried context π.
        index: usize,
        /// The premise, pretty-printed.
        rho: String,
    },
    /// A (sub-)query resolved successfully.
    QueryResolved {
        /// The query, pretty-printed.
        query: String,
        /// `TyRes` steps in its derivation.
        steps: usize,
    },
    /// A (sub-)query failed to resolve.
    QueryFailed {
        /// The query, pretty-printed.
        query: String,
        /// The failure, rendered.
        error: String,
    },
    /// The opsem runtime memo held a value for a resolution.
    MemoHit {
        /// The resolved rule type, pretty-printed.
        query: String,
    },
    /// The opsem runtime memo had no value for a resolution.
    MemoMiss {
        /// The resolved rule type, pretty-printed.
        query: String,
    },
    /// The session's dictionary inline cache answered an
    /// implicit-query site with an already-promoted evidence global
    /// (the dynamic analogue of a derivation-cache hit).
    IcHit {
        /// The query, pretty-printed.
        query: String,
    },
    /// The dictionary inline cache had no reusable entry for this
    /// query site (cold site, non-ground query, or an entry
    /// invalidated by shadowing/rollback).
    IcMiss {
        /// The query, pretty-printed.
        query: String,
    },
    /// One bytecode compile finished its superinstruction pass.
    Fusion {
        /// Instructions scanned by the peephole pass.
        scanned: u64,
        /// Adjacent pairs fused into superinstructions.
        fused: u64,
    },
    /// One tree-walking System F evaluation finished.
    TreeEval {
        /// Fuel charged (evaluation steps).
        fuel: u64,
    },
    /// One bytecode-VM execution finished.
    VmRun {
        /// Fuel charged (frame pushes + tail calls).
        fuel: u64,
        /// Tail calls that reused the running frame.
        tail_calls: u64,
        /// `fix` unfolds answered by the per-closure unfold cache.
        fix_unfolds: u64,
        /// Match dispatches answered by the match-site inline cache.
        match_ic_hits: u64,
        /// Match dispatches that fell back to the linear arm scan.
        match_ic_misses: u64,
    },
    /// A batch-driver worker picked up a job.
    JobStart {
        /// Worker index.
        worker: usize,
        /// Job index within the batch.
        job: usize,
        /// Whether the job was stolen from a sibling's deque.
        stolen: bool,
    },
    /// A batch-driver worker finished a job.
    JobFinish {
        /// Worker index.
        worker: usize,
        /// Job index within the batch.
        job: usize,
        /// Whether the job succeeded.
        ok: bool,
    },
}

impl TraceEvent {
    /// Stable lower-snake event name (the Chrome-trace `name`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::PhaseStart { phase } | TraceEvent::PhaseEnd { phase } => phase.name(),
            TraceEvent::QueryEnter { .. } => "query_enter",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::CandidateAdmitted { .. } => "candidate_admitted",
            TraceEvent::CandidateRejected { .. } => "candidate_rejected",
            TraceEvent::AssumptionUsed { .. } => "assumption_used",
            TraceEvent::PremiseAssumed { .. } => "premise_assumed",
            TraceEvent::QueryResolved { .. } => "query_resolved",
            TraceEvent::QueryFailed { .. } => "query_failed",
            TraceEvent::MemoHit { .. } => "memo_hit",
            TraceEvent::MemoMiss { .. } => "memo_miss",
            TraceEvent::IcHit { .. } => "ic_hit",
            TraceEvent::IcMiss { .. } => "ic_miss",
            TraceEvent::Fusion { .. } => "fusion",
            TraceEvent::TreeEval { .. } => "tree_eval",
            TraceEvent::VmRun { .. } => "vm_run",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobFinish { .. } => "job_finish",
        }
    }

    /// Stable event category (the Chrome-trace `cat`).
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::PhaseStart { .. } | TraceEvent::PhaseEnd { .. } => "phase",
            TraceEvent::QueryEnter { .. }
            | TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::CandidateAdmitted { .. }
            | TraceEvent::CandidateRejected { .. }
            | TraceEvent::AssumptionUsed { .. }
            | TraceEvent::PremiseAssumed { .. }
            | TraceEvent::QueryResolved { .. }
            | TraceEvent::QueryFailed { .. } => "resolution",
            TraceEvent::MemoHit { .. } | TraceEvent::MemoMiss { .. } => "memo",
            TraceEvent::IcHit { .. } | TraceEvent::IcMiss { .. } => "ic",
            TraceEvent::Fusion { .. } => "compile",
            TraceEvent::TreeEval { .. } | TraceEvent::VmRun { .. } => "eval",
            TraceEvent::JobStart { .. } | TraceEvent::JobFinish { .. } => "driver",
        }
    }

    /// `true` for the cache markers a warm stream adds over a
    /// cache-off stream (`cache_hit` / `cache_miss`, and the
    /// dictionary-IC `ic_hit` / `ic_miss` pair, which likewise only
    /// report cache state without changing observable semantics).
    pub fn is_cache_marker(&self) -> bool {
        matches!(
            self,
            TraceEvent::CacheHit { .. }
                | TraceEvent::CacheMiss { .. }
                | TraceEvent::IcHit { .. }
                | TraceEvent::IcMiss { .. }
        )
    }

    /// The event's payload as (key, value) argument pairs, used for
    /// the Chrome-trace `args` object.
    fn args(&self) -> Vec<(&'static str, ArgValue)> {
        use ArgValue::{Flag, Num, Text};
        match self {
            TraceEvent::PhaseStart { .. } | TraceEvent::PhaseEnd { .. } => vec![],
            TraceEvent::QueryEnter {
                query,
                depth,
                measure,
            } => vec![
                ("query", Text(query.clone())),
                ("depth", Num(*depth as u64)),
                ("measure", Num(*measure as u64)),
            ],
            TraceEvent::CacheHit { query } | TraceEvent::CacheMiss { query } => {
                vec![("query", Text(query.clone()))]
            }
            TraceEvent::CandidateAdmitted { frame, index, rule }
            | TraceEvent::CandidateRejected { frame, index, rule } => vec![
                ("frame", Num(*frame as u64)),
                ("index", Num(*index as u64)),
                ("rule", Text(rule.clone())),
            ],
            TraceEvent::AssumptionUsed { level, index, rule } => vec![
                ("level", Num(*level as u64)),
                ("index", Num(*index as u64)),
                ("rule", Text(rule.clone())),
            ],
            TraceEvent::PremiseAssumed { index, rho } => {
                vec![("index", Num(*index as u64)), ("rho", Text(rho.clone()))]
            }
            TraceEvent::QueryResolved { query, steps } => vec![
                ("query", Text(query.clone())),
                ("steps", Num(*steps as u64)),
            ],
            TraceEvent::QueryFailed { query, error } => vec![
                ("query", Text(query.clone())),
                ("error", Text(error.clone())),
            ],
            TraceEvent::MemoHit { query }
            | TraceEvent::MemoMiss { query }
            | TraceEvent::IcHit { query }
            | TraceEvent::IcMiss { query } => {
                vec![("query", Text(query.clone()))]
            }
            TraceEvent::Fusion { scanned, fused } => {
                vec![("scanned", Num(*scanned)), ("fused", Num(*fused))]
            }
            TraceEvent::TreeEval { fuel } => vec![("fuel", Num(*fuel))],
            TraceEvent::VmRun {
                fuel,
                tail_calls,
                fix_unfolds,
                match_ic_hits,
                match_ic_misses,
            } => vec![
                ("fuel", Num(*fuel)),
                ("tail_calls", Num(*tail_calls)),
                ("fix_unfolds", Num(*fix_unfolds)),
                ("match_ic_hits", Num(*match_ic_hits)),
                ("match_ic_misses", Num(*match_ic_misses)),
            ],
            TraceEvent::JobStart {
                worker,
                job,
                stolen,
            } => vec![
                ("worker", Num(*worker as u64)),
                ("job", Num(*job as u64)),
                ("stolen", Flag(*stolen)),
            ],
            TraceEvent::JobFinish { worker, job, ok } => vec![
                ("worker", Num(*worker as u64)),
                ("job", Num(*job as u64)),
                ("ok", Flag(*ok)),
            ],
        }
    }
}

/// A Chrome-trace argument value.
enum ArgValue {
    Text(String),
    Num(u64),
    Flag(bool),
}

/// Receiver of [`TraceEvent`]s.
///
/// Instrumented code guards every emission with
/// `if sink.enabled() { sink.event(…) }`, so a sink whose `enabled`
/// is statically `false` ([`NullSink`]) costs nothing — including the
/// payload construction, which happens inside the guard.
pub trait TraceSink {
    /// Whether this sink wants events at all. Implementations should
    /// make this trivially inlinable.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. Only called when [`enabled`](Self::enabled)
    /// is `true`.
    fn event(&mut self, ev: TraceEvent);
}

/// The default sink: statically disabled, compiles to nothing.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn event(&mut self, _ev: TraceEvent) {}
}

/// A sink that appends every event to a vector — the test workhorse.
#[derive(Clone, Default, Debug)]
pub struct CollectSink {
    /// Events in arrival order.
    pub events: Vec<TraceEvent>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// The collected events with cache markers removed — the shape
    /// the cache-off/cache-warm equivalence property compares.
    pub fn without_cache_markers(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| !e.is_cache_marker())
            .cloned()
            .collect()
    }
}

impl TraceSink for CollectSink {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Forwards each event to both halves.
#[derive(Clone, Default, Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn event(&mut self, ev: TraceEvent) {
        match (self.0.enabled(), self.1.enabled()) {
            (true, true) => {
                self.0.event(ev.clone());
                self.1.event(ev);
            }
            (true, false) => self.0.event(ev),
            (false, true) => self.1.event(ev),
            (false, false) => {}
        }
    }
}

/// A cheap clonable handle on a shared sink, for components that hold
/// a sink across calls (the typechecker, the elaborator, a warm
/// `Session`) rather than threading `&mut` through deep recursion.
#[derive(Clone)]
pub struct SharedSink {
    inner: Rc<RefCell<dyn TraceSink>>,
}

impl SharedSink {
    /// Wraps a sink in a fresh shared handle.
    pub fn new(sink: impl TraceSink + 'static) -> SharedSink {
        SharedSink {
            inner: Rc::new(RefCell::new(sink)),
        }
    }

    /// Wraps an existing shared cell, letting the caller keep its own
    /// typed handle to read results back out.
    pub fn from_rc<T: TraceSink + 'static>(rc: Rc<RefCell<T>>) -> SharedSink {
        SharedSink { inner: rc }
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink").finish_non_exhaustive()
    }
}

impl TraceSink for SharedSink {
    fn enabled(&self) -> bool {
        self.inner.borrow().enabled()
    }

    fn event(&mut self, ev: TraceEvent) {
        self.inner.borrow_mut().event(ev);
    }
}

/// Fans events out to any number of shared sinks.
#[derive(Clone, Default, Debug)]
pub struct FanSink {
    /// The receiving sinks.
    pub sinks: Vec<SharedSink>,
}

impl TraceSink for FanSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn event(&mut self, ev: TraceEvent) {
        for s in &mut self.sinks {
            if s.enabled() {
                s.event(ev.clone());
            }
        }
    }
}

/// A timestamped event row: `(tid, microseconds, event)`.
pub type ChromeRow = (u64, u64, TraceEvent);

/// A sink that timestamps events against a shared clock, for export
/// in Chrome trace-event format. Wall-clock data lives only here —
/// the events themselves stay deterministic.
#[derive(Debug)]
pub struct ChromeSink {
    start: Instant,
    tid: u64,
    /// `(microseconds since clock start, event)` in arrival order.
    pub rows: Vec<(u64, TraceEvent)>,
}

impl ChromeSink {
    /// A sink with its own clock, on Chrome thread id 1.
    pub fn new() -> ChromeSink {
        ChromeSink::with_clock(Instant::now(), 1)
    }

    /// A sink stamping against `start` and tagging rows with `tid` —
    /// batch workers share one clock and use their worker index.
    pub fn with_clock(start: Instant, tid: u64) -> ChromeSink {
        ChromeSink {
            start,
            tid,
            rows: Vec::new(),
        }
    }

    /// The rows as `(tid, ts, event)` triples for
    /// [`chrome_trace_json`].
    pub fn into_rows(self) -> Vec<ChromeRow> {
        let tid = self.tid;
        self.rows
            .into_iter()
            .map(|(ts, ev)| (tid, ts, ev))
            .collect()
    }
}

impl Default for ChromeSink {
    fn default() -> ChromeSink {
        ChromeSink::new()
    }
}

impl TraceSink for ChromeSink {
    fn event(&mut self, ev: TraceEvent) {
        let ts = self.start.elapsed().as_micros() as u64;
        self.rows.push((ts, ev));
    }
}

/// Escapes a string for a JSON literal (mirrors the conformance
/// report's writer; kept local so `implicit-core` stays dep-free).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders timestamped rows as a Chrome trace-event JSON document
/// (the `{"traceEvents": […]}` object format understood by
/// `about:tracing` and Perfetto).
///
/// Phase events become `B`/`E` duration spans; everything else
/// becomes a thread-scoped instant (`"ph":"i"`, `"s":"t"`) with the
/// payload under `args`.
pub fn chrome_trace_json(rows: &[ChromeRow]) -> String {
    let mut out = String::with_capacity(rows.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, (tid, ts, ev)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match ev {
            TraceEvent::PhaseStart { .. } => "B",
            TraceEvent::PhaseEnd { .. } => "E",
            _ => "i",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}",
            ev.name(),
            ev.category()
        );
        if ph == "i" {
            out.push_str(",\"s\":\"t\"");
        }
        let args = ev.args();
        if !args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":");
                match v {
                    ArgValue::Text(s) => {
                        out.push('"');
                        escape_json(s, &mut out);
                        out.push('"');
                    }
                    ArgValue::Num(n) => {
                        let _ = write!(out, "{n}");
                    }
                    ArgValue::Flag(b) => {
                        let _ = write!(out, "{b}");
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// The unified counter snapshot: one place for every number the
/// pipeline used to scatter across `ResolutionStats`, the derivation
/// cache's counters, the opsem memo, `SessionStats`, and the VM.
///
/// Fill it by feeding events through a [`MetricsSink`], by the
/// `add_*` absorbers, or both; [`merge`](Self::merge) combines
/// snapshots (e.g. across batch workers).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MetricsRegistry {
    /// Resolution (sub-)queries entered.
    pub queries: u64,
    /// Queries that resolved.
    pub queries_resolved: u64,
    /// Queries that failed.
    pub queries_failed: u64,
    /// Deepest query recursion observed.
    pub max_query_depth: usize,
    /// Candidate rules match-tested and committed to.
    pub candidates_admitted: u64,
    /// Candidate rules match-tested and passed over.
    pub candidates_rejected: u64,
    /// Premises discharged by partial resolution.
    pub premises_assumed: u64,
    /// Derivation-cache hits.
    pub cache_hits: u64,
    /// Derivation-cache misses.
    pub cache_misses: u64,
    /// Derivation-cache evictions.
    pub cache_evictions: u64,
    /// Opsem runtime-memo hits.
    pub memo_hits: u64,
    /// Opsem runtime-memo misses.
    pub memo_misses: u64,
    /// Dictionary inline-cache hits at implicit-query sites.
    pub ic_hits: u64,
    /// Dictionary inline-cache misses at implicit-query sites.
    pub ic_misses: u64,
    /// Instructions scanned by the superinstruction pass.
    pub instrs_scanned: u64,
    /// Adjacent instruction pairs fused into superinstructions.
    pub instrs_fused: u64,
    /// Tree-walking evaluations completed.
    pub tree_runs: u64,
    /// Fuel charged across tree-walking evaluations.
    pub tree_fuel: u64,
    /// Bytecode-VM executions completed.
    pub vm_runs: u64,
    /// Fuel charged across VM executions.
    pub vm_fuel: u64,
    /// VM tail calls that reused the running frame.
    pub vm_tail_calls: u64,
    /// VM `fix` unfolds answered by the unfold cache.
    pub vm_fix_unfolds: u64,
    /// VM match dispatches answered by the match-site inline cache.
    pub vm_match_ic_hits: u64,
    /// VM match dispatches that fell back to the linear arm scan.
    pub vm_match_ic_misses: u64,
    /// Programs a session ran.
    pub programs: u64,
    /// Programs additionally run under the operational semantics.
    pub opsem_programs: u64,
    /// Programs run on the bytecode VM.
    pub compiled_programs: u64,
    /// Session arena trims.
    pub trims: u64,
    /// Batch jobs completed.
    pub jobs: u64,
    /// Batch jobs obtained by stealing.
    pub steals: u64,
    /// Session artifacts that failed to load (truncated, corrupted,
    /// or key/version mismatch) and fell back to a cold build.
    pub artifact_fallbacks: u64,
}

impl MetricsRegistry {
    /// An all-zero snapshot.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Folds one event into the counters.
    pub fn record(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::PhaseStart { .. } | TraceEvent::PhaseEnd { .. } => {}
            TraceEvent::QueryEnter { depth, .. } => {
                self.queries += 1;
                self.max_query_depth = self.max_query_depth.max(*depth);
            }
            TraceEvent::CacheHit { .. } => self.cache_hits += 1,
            TraceEvent::CacheMiss { .. } => self.cache_misses += 1,
            TraceEvent::CandidateAdmitted { .. } | TraceEvent::AssumptionUsed { .. } => {
                self.candidates_admitted += 1;
            }
            TraceEvent::CandidateRejected { .. } => self.candidates_rejected += 1,
            TraceEvent::PremiseAssumed { .. } => self.premises_assumed += 1,
            TraceEvent::QueryResolved { .. } => self.queries_resolved += 1,
            TraceEvent::QueryFailed { .. } => self.queries_failed += 1,
            TraceEvent::MemoHit { .. } => self.memo_hits += 1,
            TraceEvent::MemoMiss { .. } => self.memo_misses += 1,
            TraceEvent::IcHit { .. } => self.ic_hits += 1,
            TraceEvent::IcMiss { .. } => self.ic_misses += 1,
            TraceEvent::Fusion { scanned, fused } => {
                self.instrs_scanned += scanned;
                self.instrs_fused += fused;
            }
            TraceEvent::TreeEval { fuel } => {
                self.tree_runs += 1;
                self.tree_fuel += fuel;
            }
            TraceEvent::VmRun {
                fuel,
                tail_calls,
                fix_unfolds,
                match_ic_hits,
                match_ic_misses,
            } => {
                self.vm_runs += 1;
                self.vm_fuel += fuel;
                self.vm_tail_calls += tail_calls;
                self.vm_fix_unfolds += fix_unfolds;
                self.vm_match_ic_hits += match_ic_hits;
                self.vm_match_ic_misses += match_ic_misses;
            }
            TraceEvent::JobStart { stolen, .. } => {
                if *stolen {
                    self.steals += 1;
                }
            }
            TraceEvent::JobFinish { .. } => self.jobs += 1,
        }
    }

    /// Adds every counter of `other` into `self` (depths take the
    /// max).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.queries += other.queries;
        self.queries_resolved += other.queries_resolved;
        self.queries_failed += other.queries_failed;
        self.max_query_depth = self.max_query_depth.max(other.max_query_depth);
        self.candidates_admitted += other.candidates_admitted;
        self.candidates_rejected += other.candidates_rejected;
        self.premises_assumed += other.premises_assumed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.ic_hits += other.ic_hits;
        self.ic_misses += other.ic_misses;
        self.instrs_scanned += other.instrs_scanned;
        self.instrs_fused += other.instrs_fused;
        self.tree_runs += other.tree_runs;
        self.tree_fuel += other.tree_fuel;
        self.vm_runs += other.vm_runs;
        self.vm_fuel += other.vm_fuel;
        self.vm_tail_calls += other.vm_tail_calls;
        self.vm_fix_unfolds += other.vm_fix_unfolds;
        self.vm_match_ic_hits += other.vm_match_ic_hits;
        self.vm_match_ic_misses += other.vm_match_ic_misses;
        self.programs += other.programs;
        self.opsem_programs += other.opsem_programs;
        self.compiled_programs += other.compiled_programs;
        self.trims += other.trims;
        self.jobs += other.jobs;
        self.steals += other.steals;
        self.artifact_fallbacks += other.artifact_fallbacks;
    }

    /// Absorbs a per-derivation [`crate::resolve::ResolutionStats`]
    /// (its cumulative `cache_*` mirror fields are *not* taken — use
    /// [`set_cache_counters`](Self::set_cache_counters) with the
    /// environment's own counters instead, to avoid double counting).
    pub fn add_resolution_stats(&mut self, stats: &crate::resolve::ResolutionStats) {
        self.queries += stats.steps as u64;
        self.queries_resolved += stats.steps as u64;
        self.candidates_admitted += stats.steps as u64;
        self.candidates_rejected += (stats.rules_tried - stats.steps) as u64;
        self.premises_assumed += stats.assumed as u64;
    }

    /// Overwrites the cache counters from an environment snapshot.
    pub fn set_cache_counters(&mut self, counters: crate::env::CacheCounters) {
        self.cache_hits = counters.hits;
        self.cache_misses = counters.misses;
        self.cache_evictions = counters.evictions;
    }

    /// Every counter as `(name, value)` pairs in declaration order
    /// (`max_query_depth` widened to `u64`) — the machine-readable
    /// mirror of [`render_table`](Self::render_table), used by JSON
    /// reports.
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("queries", self.queries),
            ("queries_resolved", self.queries_resolved),
            ("queries_failed", self.queries_failed),
            ("max_query_depth", self.max_query_depth as u64),
            ("candidates_admitted", self.candidates_admitted),
            ("candidates_rejected", self.candidates_rejected),
            ("premises_assumed", self.premises_assumed),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
            ("memo_hits", self.memo_hits),
            ("memo_misses", self.memo_misses),
            ("ic_hits", self.ic_hits),
            ("ic_misses", self.ic_misses),
            ("instrs_scanned", self.instrs_scanned),
            ("instrs_fused", self.instrs_fused),
            ("tree_runs", self.tree_runs),
            ("tree_fuel", self.tree_fuel),
            ("vm_runs", self.vm_runs),
            ("vm_fuel", self.vm_fuel),
            ("vm_tail_calls", self.vm_tail_calls),
            ("vm_fix_unfolds", self.vm_fix_unfolds),
            ("vm_match_ic_hits", self.vm_match_ic_hits),
            ("vm_match_ic_misses", self.vm_match_ic_misses),
            ("programs", self.programs),
            ("opsem_programs", self.opsem_programs),
            ("compiled_programs", self.compiled_programs),
            ("trims", self.trims),
            ("jobs", self.jobs),
            ("steals", self.steals),
            ("artifact_fallbacks", self.artifact_fallbacks),
        ]
    }

    /// Renders the snapshot as the aligned human table behind
    /// `implicitc --metrics`. Zero sections are skipped.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| {
            let _ = writeln!(out, "  {k:<24} {v:>12}");
        };
        if self.queries > 0 || self.queries_failed > 0 {
            row("queries", self.queries.to_string());
            row("  resolved", self.queries_resolved.to_string());
            row("  failed", self.queries_failed.to_string());
            row("  max depth", self.max_query_depth.to_string());
            row("candidates admitted", self.candidates_admitted.to_string());
            row("candidates rejected", self.candidates_rejected.to_string());
            row("premises assumed", self.premises_assumed.to_string());
        }
        if self.cache_hits + self.cache_misses > 0 {
            row("cache hits", self.cache_hits.to_string());
            row("cache misses", self.cache_misses.to_string());
            row("cache evictions", self.cache_evictions.to_string());
            let rate =
                100.0 * self.cache_hits as f64 / (self.cache_hits + self.cache_misses) as f64;
            row("cache hit rate", format!("{rate:.1}%"));
        }
        if self.memo_hits + self.memo_misses > 0 {
            row("memo hits", self.memo_hits.to_string());
            row("memo misses", self.memo_misses.to_string());
        }
        if self.ic_hits + self.ic_misses > 0 {
            row("ic hits", self.ic_hits.to_string());
            row("ic misses", self.ic_misses.to_string());
            let rate = 100.0 * self.ic_hits as f64 / (self.ic_hits + self.ic_misses) as f64;
            row("ic hit rate", format!("{rate:.1}%"));
        }
        if self.instrs_scanned > 0 {
            row("instrs scanned", self.instrs_scanned.to_string());
            row("instrs fused", self.instrs_fused.to_string());
        }
        if self.tree_runs > 0 {
            row("tree runs", self.tree_runs.to_string());
            row("tree fuel", self.tree_fuel.to_string());
        }
        if self.vm_runs > 0 {
            row("vm runs", self.vm_runs.to_string());
            row("vm fuel", self.vm_fuel.to_string());
            row("vm tail calls", self.vm_tail_calls.to_string());
            row("vm fix unfolds", self.vm_fix_unfolds.to_string());
            row("vm match ic hits", self.vm_match_ic_hits.to_string());
            row("vm match ic misses", self.vm_match_ic_misses.to_string());
        }
        if self.programs > 0 {
            row("programs", self.programs.to_string());
            row("  opsem", self.opsem_programs.to_string());
            row("  compiled", self.compiled_programs.to_string());
            row("trims", self.trims.to_string());
        }
        if self.jobs > 0 {
            row("jobs", self.jobs.to_string());
            row("steals", self.steals.to_string());
        }
        if self.artifact_fallbacks > 0 {
            row("artifact fallbacks", self.artifact_fallbacks.to_string());
        }
        if out.is_empty() {
            out.push_str("  (no activity recorded)\n");
        }
        out
    }
}

/// A sink that folds every event into a [`MetricsRegistry`].
#[derive(Clone, Copy, Default, Debug)]
pub struct MetricsSink {
    /// The accumulated counters.
    pub metrics: MetricsRegistry,
}

impl MetricsSink {
    /// A sink with zeroed counters.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }
}

impl TraceSink for MetricsSink {
    fn event(&mut self, ev: TraceEvent) {
        self.metrics.record(&ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn collect_sink_orders_events() {
        let mut s = CollectSink::new();
        s.event(TraceEvent::PhaseStart {
            phase: Phase::Parse,
        });
        s.event(TraceEvent::PhaseEnd {
            phase: Phase::Parse,
        });
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].name(), "parse");
    }

    #[test]
    fn cache_marker_filter() {
        let mut s = CollectSink::new();
        s.event(TraceEvent::CacheMiss {
            query: "Int".into(),
        });
        s.event(TraceEvent::QueryResolved {
            query: "Int".into(),
            steps: 1,
        });
        assert_eq!(s.without_cache_markers().len(), 1);
    }

    #[test]
    fn tee_and_fan_deliver_to_all() {
        let a = Rc::new(RefCell::new(CollectSink::new()));
        let b = Rc::new(RefCell::new(MetricsSink::new()));
        let mut fan = FanSink {
            sinks: vec![
                SharedSink::from_rc(a.clone()),
                SharedSink::from_rc(b.clone()),
            ],
        };
        fan.event(TraceEvent::QueryResolved {
            query: "Int".into(),
            steps: 3,
        });
        assert_eq!(a.borrow().events.len(), 1);
        assert_eq!(b.borrow().metrics.queries_resolved, 1);

        let mut tee = TeeSink(CollectSink::new(), MetricsSink::new());
        tee.event(TraceEvent::MemoHit {
            query: "Bool".into(),
        });
        assert_eq!(tee.0.events.len(), 1);
        assert_eq!(tee.1.metrics.memo_hits, 1);
    }

    #[test]
    fn metrics_record_and_merge() {
        let mut m = MetricsRegistry::new();
        m.record(&TraceEvent::QueryEnter {
            query: "Int".into(),
            depth: 3,
            measure: 1,
        });
        m.record(&TraceEvent::VmRun {
            fuel: 10,
            tail_calls: 4,
            fix_unfolds: 2,
            match_ic_hits: 3,
            match_ic_misses: 1,
        });
        m.record(&TraceEvent::IcHit {
            query: "Int".into(),
        });
        m.record(&TraceEvent::Fusion {
            scanned: 30,
            fused: 6,
        });
        m.record(&TraceEvent::JobStart {
            worker: 0,
            job: 7,
            stolen: true,
        });
        m.record(&TraceEvent::JobFinish {
            worker: 0,
            job: 7,
            ok: true,
        });
        let mut total = MetricsRegistry::new();
        total.merge(&m);
        total.merge(&m);
        assert_eq!(total.queries, 2);
        assert_eq!(total.max_query_depth, 3);
        assert_eq!(total.vm_fuel, 20);
        assert_eq!(total.vm_match_ic_hits, 6);
        assert_eq!(total.ic_hits, 2);
        assert_eq!(total.instrs_fused, 12);
        assert_eq!(total.steals, 2);
        assert_eq!(total.jobs, 2);
        let table = total.render_table();
        assert!(table.contains("queries"), "got: {table}");
        assert!(table.contains("vm fuel"), "got: {table}");
    }

    #[test]
    fn chrome_json_shape() {
        let rows = vec![
            (
                1,
                0,
                TraceEvent::PhaseStart {
                    phase: Phase::Typecheck,
                },
            ),
            (
                1,
                5,
                TraceEvent::QueryResolved {
                    query: "Int \"x\"".into(),
                    steps: 1,
                },
            ),
            (
                1,
                9,
                TraceEvent::PhaseEnd {
                    phase: Phase::Typecheck,
                },
            ),
        ];
        let json = chrome_trace_json(&rows);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""), "got: {json}");
        assert!(json.contains("\"ph\":\"E\""), "got: {json}");
        assert!(json.contains("\"ph\":\"i\""), "got: {json}");
        assert!(json.contains("\\\"x\\\""), "escaping: {json}");
        assert!(json.contains("\"ts\":5"), "got: {json}");
    }
}
