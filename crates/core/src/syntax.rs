//! Abstract syntax of the implicit calculus λ⇒.
//!
//! The grammar follows §3.1 of the paper:
//!
//! ```text
//! Types       τ ::= α | Int | τ₁ → τ₂ | ρ                (+ host types)
//! Rule types  ρ ::= ∀ᾱ. π ⇒ τ
//! Contexts    π ::= {ρ₁, …, ρₙ}
//! Expressions e ::= n | x | λx:τ.e | e₁ e₂
//!                 | ?ρ | rule(ρ)(e) | e[τ̄] | e with {ē:ρ̄}
//! ```
//!
//! plus the "additional syntax" the paper assumes for examples
//! (booleans, strings, pairs, lists, `if`, primitive operators,
//! general recursion, and the nominal record/interface types used by
//! the source-language encoding of §5).
//!
//! # Representation invariants
//!
//! * [`Type::Rule`] never wraps a *trivial* rule type (no quantifiers
//!   and an empty context): the paper identifies `∀∅.{} ⇒ τ` with `τ`
//!   itself. Use [`RuleType::to_type`] / [`Type::promote`] to convert.
//! * A [`RuleType`] context is stored sorted by α-canonical key and
//!   deduplicated, so contexts behave as the sets the paper intends
//!   and elaboration is deterministic ("we assume that the types in a
//!   context are lexicographically ordered").

use std::collections::BTreeSet;
use std::rc::Rc;

use crate::symbol::Symbol;

/// A type variable.
pub type TyVar = Symbol;

/// A λ⇒ type τ.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// A type variable `α`.
    Var(TyVar),
    /// The integer type.
    Int,
    /// The boolean type.
    Bool,
    /// The string type.
    Str,
    /// The unit type.
    Unit,
    /// A function type `τ₁ → τ₂`.
    Arrow(Rc<Type>, Rc<Type>),
    /// A product type `τ₁ × τ₂`.
    Prod(Rc<Type>, Rc<Type>),
    /// A list type `[τ]`.
    List(Rc<Type>),
    /// A nominal interface/record type `I τ̄` (see [`InterfaceDecl`]).
    Con(Symbol, Vec<Type>),
    /// An *applied type variable* `f τ̄` — the type-constructor
    /// polymorphism extension of §5.2 ("basically, we need to add a
    /// kind system and move to System F_ω"). The head variable has
    /// kind `* → … → *` (Haskell-98 style: all arguments are proper
    /// types) and can be instantiated with a [`TyCon`].
    ///
    /// Invariant: the argument list is non-empty; build with
    /// [`Type::var_app`].
    VarApp(TyVar, Vec<Type>),
    /// A reference to a type *constructor* (kind `* → … → *`). This
    /// is not a proper type: it may appear only as an instantiation
    /// argument for an arrow-kinded quantifier (`e[List]`) or as a
    /// substitution image; the well-formedness check rejects it in
    /// type position.
    Ctor(TyCon),
    /// A rule type `∀ᾱ. π ⇒ τ`.
    ///
    /// Invariant: the wrapped rule type is not trivial; build with
    /// [`Type::rule`].
    Rule(Rc<RuleType>),
}

/// A first-class type constructor (the possible instantiations of an
/// arrow-kinded type variable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TyCon {
    /// The built-in list constructor (arity 1).
    List,
    /// A declared interface constructor (arity = its parameter
    /// count).
    Named(Symbol),
}

impl TyCon {
    /// The constructor's arity, consulting `decls` for named
    /// interfaces. `None` when the interface is undeclared.
    pub fn arity(&self, decls: &Declarations) -> Option<usize> {
        match self {
            TyCon::List => Some(1),
            TyCon::Named(n) => decls.con_arity(*n),
        }
    }

    /// Applies the constructor to arguments.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` disagrees with the built-in list arity;
    /// named constructors are applied without arity validation (the
    /// type checker validates against the declaration).
    pub fn apply(&self, args: Vec<Type>) -> Type {
        match self {
            TyCon::List => {
                assert_eq!(args.len(), 1, "List takes exactly one argument");
                Type::list(args.into_iter().next().expect("len checked"))
            }
            TyCon::Named(n) => Type::Con(*n, args),
        }
    }
}

impl std::fmt::Display for TyCon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TyCon::List => f.write_str("List"),
            TyCon::Named(n) => write!(f, "{n}"),
        }
    }
}

impl Type {
    /// Builds an arrow type.
    pub fn arrow(from: Type, to: Type) -> Type {
        Type::Arrow(Rc::new(from), Rc::new(to))
    }

    /// Builds a product type.
    pub fn prod(left: Type, right: Type) -> Type {
        Type::Prod(Rc::new(left), Rc::new(right))
    }

    /// Builds a list type.
    pub fn list(elem: Type) -> Type {
        Type::List(Rc::new(elem))
    }

    /// Builds a type variable.
    pub fn var(name: impl Into<Symbol>) -> Type {
        Type::Var(name.into())
    }

    /// Builds an applied type variable `f τ̄`.
    ///
    /// # Panics
    ///
    /// Panics if `args` is empty (a bare variable is [`Type::Var`]).
    pub fn var_app(f: impl Into<Symbol>, args: Vec<Type>) -> Type {
        assert!(!args.is_empty(), "applied type variable needs arguments");
        Type::VarApp(f.into(), args)
    }

    /// Wraps a rule type as a type, collapsing trivial rule types.
    ///
    /// `∀∅.{} ⇒ τ` is identified with `τ`, so this returns `τ.head`
    /// when the rule type has no quantifiers and an empty context.
    pub fn rule(rho: RuleType) -> Type {
        if rho.is_trivial() {
            rho.head().clone()
        } else {
            Type::Rule(Rc::new(rho))
        }
    }

    /// Promotes the type to a rule type (`τ` becomes `∀∅.{} ⇒ τ`).
    ///
    /// If the type already is a rule type, it is returned unwrapped.
    /// This is the promotion §3.2 uses to run [`TyRes`] on simple
    /// types.
    ///
    /// [`TyRes`]: mod@crate::resolve
    pub fn promote(&self) -> RuleType {
        match self {
            Type::Rule(r) => (**r).clone(),
            other => RuleType::unchecked(Vec::new(), Vec::new(), other.clone()),
        }
    }

    /// Free type variables.
    pub fn ftv(&self) -> BTreeSet<TyVar> {
        let mut acc = BTreeSet::new();
        self.ftv_into(&mut acc);
        acc
    }

    pub(crate) fn ftv_into(&self, acc: &mut BTreeSet<TyVar>) {
        match self {
            Type::Var(a) => {
                acc.insert(*a);
            }
            Type::Int | Type::Bool | Type::Str | Type::Unit => {}
            Type::Arrow(a, b) | Type::Prod(a, b) => {
                a.ftv_into(acc);
                b.ftv_into(acc);
            }
            Type::List(a) => a.ftv_into(acc),
            Type::Con(_, args) => {
                for t in args {
                    t.ftv_into(acc);
                }
            }
            Type::VarApp(f, args) => {
                acc.insert(*f);
                for t in args {
                    t.ftv_into(acc);
                }
            }
            Type::Ctor(_) => {}
            Type::Rule(r) => r.ftv_into(acc),
        }
    }

    /// Structural size of the type (number of constructors).
    ///
    /// Used by the termination conditions of Appendix A, which compare
    /// the sizes of rule heads and context types.
    pub fn size(&self) -> usize {
        match self {
            Type::Var(_) | Type::Int | Type::Bool | Type::Str | Type::Unit => 1,
            Type::Arrow(a, b) | Type::Prod(a, b) => 1 + a.size() + b.size(),
            Type::List(a) => 1 + a.size(),
            Type::Con(_, args) => 1 + args.iter().map(Type::size).sum::<usize>(),
            Type::VarApp(_, args) => 1 + args.iter().map(Type::size).sum::<usize>(),
            Type::Ctor(_) => 1,
            Type::Rule(r) => {
                1 + r.context().iter().map(RuleType::size).sum::<usize>() + r.head().size()
            }
        }
    }

    /// Number of occurrences of the type variable `a`.
    pub fn occurrences(&self, a: TyVar) -> usize {
        match self {
            Type::Var(b) => usize::from(*b == a),
            Type::Int | Type::Bool | Type::Str | Type::Unit => 0,
            Type::Arrow(l, r) | Type::Prod(l, r) => l.occurrences(a) + r.occurrences(a),
            Type::List(l) => l.occurrences(a),
            Type::Con(_, args) => args.iter().map(|t| t.occurrences(a)).sum(),
            Type::VarApp(f, args) => {
                usize::from(*f == a) + args.iter().map(|t| t.occurrences(a)).sum::<usize>()
            }
            Type::Ctor(_) => 0,
            Type::Rule(rt) => rt.occurrences(a),
        }
    }
}

/// A rule type `∀ᾱ. π ⇒ τ`.
///
/// The quantifier sequence `ᾱ` is ordered (instantiation `e[τ̄]` is
/// positional); the context `π` is a *set* of rule types, stored in a
/// canonical order.
///
/// # Examples
///
/// ```
/// use implicit_core::syntax::{RuleType, Type};
///
/// // ∀α. {α} ⇒ α × α
/// let a = implicit_core::symbol::Symbol::intern("a");
/// let rho = RuleType::new(
///     vec![a],
///     vec![Type::Var(a).promote()],
///     Type::prod(Type::Var(a), Type::Var(a)),
/// );
/// assert_eq!(rho.vars(), &[a]);
/// assert!(!rho.is_trivial());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RuleType {
    vars: Vec<TyVar>,
    context: Vec<RuleType>,
    head: Type,
}

impl RuleType {
    /// Builds a rule type, canonicalizing the context.
    ///
    /// The context is sorted by α-canonical key and deduplicated
    /// modulo α-equivalence, so logically equal contexts compare
    /// equal and elaborate identically.
    pub fn new(vars: Vec<TyVar>, context: Vec<RuleType>, head: Type) -> RuleType {
        let mut rt = RuleType {
            vars,
            context,
            head,
        };
        rt.canonicalize_context();
        rt
    }

    /// Builds a rule type without canonicalizing (internal fast path
    /// for contexts already known to be canonical, e.g. promotions).
    pub(crate) fn unchecked(vars: Vec<TyVar>, context: Vec<RuleType>, head: Type) -> RuleType {
        RuleType {
            vars,
            context,
            head,
        }
    }

    /// A monomorphic, context-free rule type `∀∅.{} ⇒ τ`.
    pub fn simple(head: Type) -> RuleType {
        RuleType::unchecked(Vec::new(), Vec::new(), head)
    }

    /// A monomorphic rule `{π} ⇒ τ`.
    pub fn mono(context: Vec<RuleType>, head: Type) -> RuleType {
        RuleType::new(Vec::new(), context, head)
    }

    fn canonicalize_context(&mut self) {
        let mut keyed: Vec<(String, RuleType)> = std::mem::take(&mut self.context)
            .into_iter()
            .map(|r| (crate::alpha::canonical_key(&r), r))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.dedup_by(|a, b| a.0 == b.0);
        self.context = keyed.into_iter().map(|(_, r)| r).collect();
    }

    /// The ordered quantified variables `ᾱ`.
    pub fn vars(&self) -> &[TyVar] {
        &self.vars
    }

    /// The context `π` in canonical order.
    pub fn context(&self) -> &[RuleType] {
        &self.context
    }

    /// The head (right-hand side) `τ`.
    pub fn head(&self) -> &Type {
        &self.head
    }

    /// `true` when the rule type is a promoted simple type
    /// (`∀∅.{} ⇒ τ`).
    pub fn is_trivial(&self) -> bool {
        self.vars.is_empty() && self.context.is_empty()
    }

    /// Converts back to a type, collapsing trivial rule types.
    pub fn to_type(&self) -> Type {
        if self.is_trivial() {
            self.head.clone()
        } else {
            Type::Rule(Rc::new(self.clone()))
        }
    }

    /// Free type variables (quantified variables are bound).
    pub fn ftv(&self) -> BTreeSet<TyVar> {
        let mut acc = BTreeSet::new();
        self.ftv_into(&mut acc);
        acc
    }

    pub(crate) fn ftv_into(&self, acc: &mut BTreeSet<TyVar>) {
        let mut inner = BTreeSet::new();
        for r in &self.context {
            r.ftv_into(&mut inner);
        }
        self.head.ftv_into(&mut inner);
        for v in &self.vars {
            inner.remove(v);
        }
        acc.extend(inner);
    }

    /// Structural size (used by termination checking).
    pub fn size(&self) -> usize {
        1 + self.context.iter().map(RuleType::size).sum::<usize>() + self.head.size()
    }

    /// Occurrences of the *free* variable `a`.
    pub fn occurrences(&self, a: TyVar) -> usize {
        if self.vars.contains(&a) {
            return 0;
        }
        self.context.iter().map(|r| r.occurrences(a)).sum::<usize>() + self.head.occurrences(a)
    }

    /// The `unambiguous` condition of §3.3: every quantified variable
    /// occurs in the head, recursively for the context.
    ///
    /// Rule types violating this (e.g. `∀α.{α} ⇒ Int`) can be
    /// instantiated ambiguously and are rejected at rule abstractions
    /// and queries.
    pub fn is_unambiguous(&self) -> bool {
        let head_ftv = self.head.ftv();
        self.vars.iter().all(|v| head_ftv.contains(v))
            && self.context.iter().all(RuleType::is_unambiguous)
    }
}

/// Primitive binary operators of the host fragment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating). Division by zero is a runtime
    /// error.
    Div,
    /// Integer remainder. Remainder by zero is a runtime error.
    Mod,
    /// Equality on a base type (`Int`, `Bool` or `String`).
    Eq,
    /// Integer `<`.
    Lt,
    /// Integer `≤`.
    Le,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// String concatenation.
    Concat,
}

impl BinOp {
    /// Concrete-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Concat => "++",
        }
    }
}

/// Primitive unary operators of the host fragment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Integer negation.
    Neg,
    /// Renders an integer as a string (the `showInt` primitive used
    /// by the §5 pretty-printing example).
    IntToStr,
}

/// A λ⇒ expression.
///
/// The four implicit-calculus constructs are [`Expr::Query`],
/// [`Expr::RuleAbs`], [`Expr::TyApp`] and [`Expr::RuleApp`]; the rest
/// is the conventional simply-typed host fragment.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Unit literal.
    Unit,
    /// Term variable.
    Var(Symbol),
    /// `λx:τ. e`
    Lam(Symbol, Type, Rc<Expr>),
    /// Application `e₁ e₂`.
    App(Rc<Expr>, Rc<Expr>),
    /// A query `?ρ`: fetch a value of type `ρ` from the implicit
    /// environment.
    Query(RuleType),
    /// A rule abstraction `rule(ρ)(e)`: a value of rule type `ρ`
    /// whose body `e` may query the assumed context.
    RuleAbs(Rc<RuleType>, Rc<Expr>),
    /// Type application `e[τ̄]`, eliminating the quantifiers of a rule
    /// type.
    TyApp(Rc<Expr>, Vec<Type>),
    /// Rule application `e with {e₁:ρ₁, …}`, supplying the context of
    /// a rule type.
    RuleApp(Rc<Expr>, Vec<(Expr, RuleType)>),
    /// `if e₁ then e₂ else e₃`
    If(Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// Primitive binary operation.
    BinOp(BinOp, Rc<Expr>, Rc<Expr>),
    /// Primitive unary operation.
    UnOp(UnOp, Rc<Expr>),
    /// Pair introduction `(e₁, e₂)`.
    Pair(Rc<Expr>, Rc<Expr>),
    /// First projection.
    Fst(Rc<Expr>),
    /// Second projection.
    Snd(Rc<Expr>),
    /// Empty list at element type `τ`.
    Nil(Type),
    /// List cons.
    Cons(Rc<Expr>, Rc<Expr>),
    /// List elimination:
    /// `case e of { [] -> e₁ ; x :: xs -> e₂ }`.
    ListCase {
        /// Scrutinee.
        scrut: Rc<Expr>,
        /// Branch for the empty list.
        nil: Rc<Expr>,
        /// Name bound to the head in the cons branch.
        head: Symbol,
        /// Name bound to the tail in the cons branch.
        tail: Symbol,
        /// Branch for a cons cell.
        cons: Rc<Expr>,
    },
    /// General recursion `fix x:τ. e` (value recursion restricted to
    /// function types by the type checker).
    Fix(Symbol, Type, Rc<Expr>),
    /// Record construction `I [τ̄] { u₁ = e₁, … }` for a declared
    /// interface `I`.
    Make(Symbol, Vec<Type>, Vec<(Symbol, Expr)>),
    /// Field projection `e.u`.
    Proj(Rc<Expr>, Symbol),
    /// Data-constructor application `con C [τ̄] (e₁, …, eₙ)` for a
    /// constructor of a declared data type.
    Inject(Symbol, Vec<Type>, Vec<Expr>),
    /// Data elimination
    /// `match e { C₁ x̄₁ -> e₁ | … | Cₖ x̄ₖ -> eₖ }`; arms must cover
    /// the scrutinee's constructors exactly.
    Match(Rc<Expr>, Vec<MatchArm>),
}

/// One arm of a [`Expr::Match`].
#[derive(Clone, PartialEq, Debug)]
pub struct MatchArm {
    /// Constructor name.
    pub ctor: Symbol,
    /// Binders for the constructor's arguments.
    pub binders: Vec<Symbol>,
    /// Arm body.
    pub body: Expr,
}

impl Expr {
    /// `λx:τ. e`
    pub fn lam(x: impl Into<Symbol>, ty: Type, body: Expr) -> Expr {
        Expr::Lam(x.into(), ty, Rc::new(body))
    }

    /// `e₁ e₂`
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Rc::new(f), Rc::new(a))
    }

    /// Term variable.
    pub fn var(x: impl Into<Symbol>) -> Expr {
        Expr::Var(x.into())
    }

    /// A query for a simple type: `?τ` is `?(∀∅.{} ⇒ τ)`.
    pub fn query_simple(ty: Type) -> Expr {
        Expr::Query(ty.promote())
    }

    /// `rule(ρ)(e)`
    ///
    /// # Panics
    ///
    /// Panics if `ρ` is trivial (no quantifiers and empty context):
    /// trivial rule abstractions are identified with their bodies and
    /// must not be constructed.
    pub fn rule_abs(rho: RuleType, body: Expr) -> Expr {
        assert!(
            !rho.is_trivial(),
            "trivial rule abstraction; use the body directly"
        );
        Expr::RuleAbs(Rc::new(rho), Rc::new(body))
    }

    /// `e with {ēᵢ:ρ̄ᵢ}`
    pub fn with(e: Expr, args: Vec<(Expr, RuleType)>) -> Expr {
        Expr::RuleApp(Rc::new(e), args)
    }

    /// The `implicit {ē:ρ̄} in e : τ` sugar of §3.1:
    /// `rule({ρ̄} ⇒ τ)(e) with {ē:ρ̄}`.
    ///
    /// When `args` is empty the body is returned unchanged.
    pub fn implicit(args: Vec<(Expr, RuleType)>, body: Expr, body_ty: Type) -> Expr {
        if args.is_empty() {
            return body;
        }
        let context: Vec<RuleType> = args.iter().map(|(_, r)| r.clone()).collect();
        let rho = RuleType::mono(context, body_ty);
        Expr::with(Expr::rule_abs(rho, body), args)
    }

    /// Pair introduction.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Rc::new(a), Rc::new(b))
    }

    /// `if c then t else e`
    pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Rc::new(c), Rc::new(t), Rc::new(e))
    }

    /// Primitive binary operation.
    pub fn binop(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::BinOp(op, Rc::new(a), Rc::new(b))
    }

    /// A list literal with the given element type (needed when the
    /// list is empty).
    pub fn list(elem_ty: Type, items: Vec<Expr>) -> Expr {
        items.into_iter().rev().fold(Expr::Nil(elem_ty), |acc, e| {
            Expr::Cons(Rc::new(e), Rc::new(acc))
        })
    }

    /// `let x : τ = e₁ in e₂` as the standard sugar `(λx:τ.e₂) e₁`.
    pub fn let_(x: impl Into<Symbol>, ty: Type, bound: Expr, body: Expr) -> Expr {
        Expr::app(Expr::lam(x, ty, body), bound)
    }
}

/// Declaration of a nominal interface (record) type:
/// `interface I ᾱ = { u₁ : T₁, …, uₙ : Tₙ }`.
#[derive(Clone, PartialEq, Debug)]
pub struct InterfaceDecl {
    /// Interface name `I`.
    pub name: Symbol,
    /// Type parameters `ᾱ`.
    pub vars: Vec<TyVar>,
    /// Field names and types.
    pub fields: Vec<(Symbol, Type)>,
}

impl InterfaceDecl {
    /// The type of field `u` at instantiation `args`, or `None` if
    /// the interface has no such field.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.vars.len()`.
    pub fn field_type(&self, field: Symbol, args: &[Type]) -> Option<Type> {
        assert_eq!(args.len(), self.vars.len(), "interface arity mismatch");
        let (_, ty) = self.fields.iter().find(|(u, _)| *u == field)?;
        let subst = crate::subst::TySubst::bind_all(&self.vars, args);
        Some(subst.apply_type(ty))
    }
}

/// A table of interface declarations consulted by the type checker,
/// the evaluators and the elaborator.
#[derive(Clone, Default, Debug)]
pub struct Declarations {
    interfaces: Vec<InterfaceDecl>,
    datas: Vec<DataDecl>,
}

impl Declarations {
    /// An empty declaration table.
    pub fn new() -> Declarations {
        Declarations::default()
    }

    /// Whether the table declares nothing (no interfaces, no data
    /// types).
    pub fn is_empty(&self) -> bool {
        self.interfaces.is_empty() && self.datas.is_empty()
    }

    /// Adds an interface declaration.
    ///
    /// # Errors
    ///
    /// Returns an error string if a type constructor with the same
    /// name is already declared or the declaration has duplicate
    /// fields or type parameters.
    pub fn declare(&mut self, decl: InterfaceDecl) -> Result<(), String> {
        if self.con_arity(decl.name).is_some() {
            return Err(format!("type `{}` is already declared", decl.name));
        }
        let mut seen = BTreeSet::new();
        for (u, _) in &decl.fields {
            if !seen.insert(*u) {
                return Err(format!(
                    "duplicate field `{}` in interface `{}`",
                    u, decl.name
                ));
            }
        }
        let mut vs = BTreeSet::new();
        for v in &decl.vars {
            if !vs.insert(*v) {
                return Err(format!(
                    "duplicate type parameter `{}` in interface `{}`",
                    v, decl.name
                ));
            }
        }
        self.interfaces.push(decl);
        Ok(())
    }

    /// Adds a data-type declaration, inferring its parameter kinds
    /// from their occurrences in the constructor argument types (a
    /// parameter used as an application head `f τ̄` has arity `|τ̄|`;
    /// recursive occurrences of the declared type itself are
    /// supported by iterating to a fixed point).
    ///
    /// # Errors
    ///
    /// Returns an error string on name clashes, duplicate
    /// constructors/parameters, or conflicting parameter kinds.
    pub fn declare_data(&mut self, decl: DataDecl) -> Result<(), String> {
        if self.con_arity(decl.name).is_some() {
            return Err(format!("type `{}` is already declared", decl.name));
        }
        let mut cs = BTreeSet::new();
        for (c, _) in &decl.ctors {
            if !cs.insert(*c) {
                return Err(format!(
                    "duplicate constructor `{}` in data type `{}`",
                    c, decl.name
                ));
            }
            if self.lookup_ctor(*c).is_some() {
                return Err(format!("constructor `{c}` is already declared"));
            }
        }
        let mut vs = BTreeSet::new();
        for (v, _) in &decl.params {
            if !vs.insert(*v) {
                return Err(format!(
                    "duplicate type parameter `{}` in data type `{}`",
                    v, decl.name
                ));
            }
        }
        self.datas.push(decl);
        Ok(())
    }

    /// Looks up an interface by name.
    pub fn lookup(&self, name: Symbol) -> Option<&InterfaceDecl> {
        self.interfaces.iter().find(|d| d.name == name)
    }

    /// Looks up a data type by name.
    pub fn lookup_data(&self, name: Symbol) -> Option<&DataDecl> {
        self.datas.iter().find(|d| d.name == name)
    }

    /// Finds the data type declaring constructor `ctor`.
    pub fn lookup_ctor(&self, ctor: Symbol) -> Option<(&DataDecl, &CtorDecl)> {
        self.datas.iter().find_map(|d| {
            d.ctors
                .iter()
                .find(|(c, _)| *c == ctor)
                .map(|(_, args)| (d, args))
        })
    }

    /// Arity of the named type constructor (interface or data type),
    /// or `None` when undeclared.
    pub fn con_arity(&self, name: Symbol) -> Option<usize> {
        self.lookup(name)
            .map(|d| d.vars.len())
            .or_else(|| self.lookup_data(name).map(|d| d.params.len()))
    }

    /// Kinds (arities) of the named constructor's parameters:
    /// interfaces have all-`*` parameters; data types carry inferred
    /// kinds.
    pub fn con_param_kinds(&self, name: Symbol) -> Option<Vec<usize>> {
        if let Some(d) = self.lookup(name) {
            return Some(vec![0; d.vars.len()]);
        }
        self.lookup_data(name)
            .map(|d| d.params.iter().map(|(_, k)| *k).collect())
    }

    /// Iterates over all declared interfaces.
    pub fn iter(&self) -> impl Iterator<Item = &InterfaceDecl> {
        self.interfaces.iter()
    }

    /// Iterates over all declared data types.
    pub fn iter_datas(&self) -> impl Iterator<Item = &DataDecl> {
        self.datas.iter()
    }
}

/// The argument types of one data constructor.
pub type CtorDecl = Vec<Type>;

/// A data-type declaration
/// `data D p₁ … pₙ = C₁ T̄₁ | … | Cₖ T̄ₖ`, where parameters may be
/// higher-kinded (e.g. the paper's
/// `data Perfect f a = Nil | Cons a (Perfect f (f a))`).
#[derive(Clone, PartialEq, Debug)]
pub struct DataDecl {
    /// Type name `D`.
    pub name: Symbol,
    /// Parameters with their kinds (arity; 0 = a plain type).
    pub params: Vec<(TyVar, usize)>,
    /// Constructors with their argument types.
    pub ctors: Vec<(Symbol, CtorDecl)>,
}

impl DataDecl {
    /// Builds a declaration, inferring parameter kinds from their
    /// occurrences in the constructor argument types.
    ///
    /// # Errors
    ///
    /// Returns an error string when a parameter is used at two
    /// different kinds.
    pub fn infer(
        name: Symbol,
        params: Vec<TyVar>,
        ctors: Vec<(Symbol, CtorDecl)>,
    ) -> Result<DataDecl, String> {
        // Iterate to a fixed point: occurrences as application heads
        // pin a parameter's arity directly; occurrences as arguments
        // to the type being declared inherit the (current guess of)
        // the corresponding parameter kind.
        let mut kinds: std::collections::BTreeMap<TyVar, usize> = std::collections::BTreeMap::new();
        let param_set: BTreeSet<TyVar> = params.iter().copied().collect();
        for _round in 0..8 {
            let before = kinds.clone();
            for (_, args) in &ctors {
                for t in args {
                    scan_kinds(t, name, &params, &param_set, &mut kinds).map_err(|(v, a, b)| {
                        format!("parameter `{v}` of `{name}` used at arities {a} and {b}")
                    })?;
                }
            }
            if kinds == before {
                break;
            }
        }
        Ok(DataDecl {
            name,
            params: params
                .into_iter()
                .map(|p| {
                    let k = kinds.get(&p).copied().unwrap_or(0);
                    (p, k)
                })
                .collect(),
            ctors,
        })
    }

    /// The instantiated argument types of constructor `ctor` at the
    /// given type arguments, or `None` for an unknown constructor.
    ///
    /// # Panics
    ///
    /// Panics when `args.len()` differs from the parameter count.
    pub fn ctor_arg_types(&self, ctor: Symbol, args: &[Type]) -> Option<Vec<Type>> {
        assert_eq!(args.len(), self.params.len(), "data arity mismatch");
        let (_, arg_tys) = self.ctors.iter().find(|(c, _)| *c == ctor)?;
        let vars: Vec<TyVar> = self.params.iter().map(|(v, _)| *v).collect();
        let subst = crate::subst::TySubst::bind_all(&vars, args);
        Some(arg_tys.iter().map(|t| subst.apply_type(t)).collect())
    }
}

fn scan_kinds(
    t: &Type,
    self_name: Symbol,
    params: &[TyVar],
    param_set: &BTreeSet<TyVar>,
    kinds: &mut std::collections::BTreeMap<TyVar, usize>,
) -> Result<(), (TyVar, usize, usize)> {
    let record = |v: TyVar,
                  k: usize,
                  kinds: &mut std::collections::BTreeMap<TyVar, usize>|
     -> Result<(), (TyVar, usize, usize)> {
        match kinds.insert(v, k) {
            Some(prev) if prev != k => Err((v, prev, k)),
            _ => Ok(()),
        }
    };
    match t {
        Type::Var(v) => {
            // A bare parameter occurrence is kind * only when it is
            // not (yet) known to be higher-kinded; here "bare" means
            // in type position, which pins arity 0.
            if param_set.contains(v) {
                record(*v, 0, kinds)?;
            }
            Ok(())
        }
        Type::Int | Type::Bool | Type::Str | Type::Unit | Type::Ctor(_) => Ok(()),
        Type::Arrow(a, b) | Type::Prod(a, b) => {
            scan_kinds(a, self_name, params, param_set, kinds)?;
            scan_kinds(b, self_name, params, param_set, kinds)
        }
        Type::List(a) => scan_kinds(a, self_name, params, param_set, kinds),
        Type::VarApp(f, args) => {
            if param_set.contains(f) {
                record(*f, args.len(), kinds)?;
            }
            args.iter()
                .try_for_each(|a| scan_kinds(a, self_name, params, param_set, kinds))
        }
        Type::Con(n, args) if *n == self_name => {
            // Recursive occurrence: each argument position inherits
            // the corresponding parameter's current kind.
            for (i, a) in args.iter().enumerate() {
                let slot_kind = params
                    .get(i)
                    .and_then(|p| kinds.get(p).copied())
                    .unwrap_or(0);
                match a {
                    Type::Var(v) if param_set.contains(v) && slot_kind > 0 => {
                        record(*v, slot_kind, kinds)?;
                    }
                    Type::Var(v) if param_set.contains(v) => {
                        // Unknown yet; leave for a later round.
                    }
                    _ => scan_kinds(a, self_name, params, param_set, kinds)?,
                }
            }
            Ok(())
        }
        Type::Con(_, args) => args
            .iter()
            .try_for_each(|a| scan_kinds(a, self_name, params, param_set, kinds)),
        Type::Rule(r) => {
            let mut inner = param_set.clone();
            for v in r.vars() {
                inner.remove(v);
            }
            for c in r.context() {
                scan_kinds(&c.to_type(), self_name, params, &inner, kinds)?;
            }
            scan_kinds(r.head(), self_name, params, &inner, kinds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn a() -> TyVar {
        Symbol::intern("a")
    }

    #[test]
    fn trivial_rule_types_collapse() {
        let t = Type::rule(RuleType::simple(Type::Int));
        assert_eq!(t, Type::Int);
        let promoted = Type::Int.promote();
        assert!(promoted.is_trivial());
        assert_eq!(promoted.to_type(), Type::Int);
    }

    #[test]
    fn nontrivial_rule_types_stay_wrapped() {
        let rho = RuleType::new(vec![a()], vec![], Type::var(a()));
        let t = Type::rule(rho.clone());
        assert!(matches!(t, Type::Rule(_)));
        assert_eq!(t.promote(), rho);
    }

    #[test]
    fn ftv_respects_binders() {
        // ∀a. {a} ⇒ a × b : free = {b}
        let b = Symbol::intern("b");
        let rho = RuleType::new(
            vec![a()],
            vec![Type::var(a()).promote()],
            Type::prod(Type::var(a()), Type::var(b)),
        );
        let ftv = rho.ftv();
        assert!(ftv.contains(&b));
        assert!(!ftv.contains(&a()));
    }

    #[test]
    fn context_is_sorted_and_deduped() {
        let c1 = Type::Int.promote();
        let c2 = Type::Bool.promote();
        let r1 = RuleType::new(vec![], vec![c1.clone(), c2.clone(), c1.clone()], Type::Unit);
        let r2 = RuleType::new(vec![], vec![c2, c1], Type::Unit);
        assert_eq!(r1.context(), r2.context());
        assert_eq!(r1.context().len(), 2);
    }

    #[test]
    fn context_dedups_alpha_equivalent_entries() {
        let b = Symbol::intern("b");
        let ra = RuleType::new(
            vec![a()],
            vec![],
            Type::arrow(Type::var(a()), Type::var(a())),
        );
        let rb = RuleType::new(vec![b], vec![], Type::arrow(Type::var(b), Type::var(b)));
        let r = RuleType::new(vec![], vec![ra, rb], Type::Int);
        assert_eq!(r.context().len(), 1);
    }

    #[test]
    fn unambiguous_condition() {
        // ∀a.{a} ⇒ Int is ambiguous (a not in head).
        let bad = RuleType::new(vec![a()], vec![Type::var(a()).promote()], Type::Int);
        assert!(!bad.is_unambiguous());
        let good = RuleType::new(vec![a()], vec![Type::var(a()).promote()], Type::var(a()));
        assert!(good.is_unambiguous());
    }

    #[test]
    #[should_panic(expected = "trivial rule abstraction")]
    fn trivial_rule_abs_panics() {
        let _ = Expr::rule_abs(RuleType::simple(Type::Int), Expr::Int(1));
    }

    #[test]
    fn implicit_sugar_builds_rule_application() {
        let e = Expr::implicit(
            vec![(Expr::Int(1), Type::Int.promote())],
            Expr::query_simple(Type::Int),
            Type::Int,
        );
        match e {
            Expr::RuleApp(f, args) => {
                assert_eq!(args.len(), 1);
                assert!(matches!(&*f, Expr::RuleAbs(_, _)));
            }
            other => panic!("expected rule application, got {other:?}"),
        }
    }

    #[test]
    fn list_literal_folds_to_cons_chain() {
        let e = Expr::list(Type::Int, vec![Expr::Int(1), Expr::Int(2)]);
        match e {
            Expr::Cons(h, t) => {
                assert_eq!(*h, Expr::Int(1));
                assert!(matches!(&*t, Expr::Cons(_, _)));
            }
            other => panic!("expected cons, got {other:?}"),
        }
    }

    #[test]
    fn interface_field_types_instantiate() {
        let eq = Symbol::intern("Eq");
        let field = Symbol::intern("eq");
        let decl = InterfaceDecl {
            name: eq,
            vars: vec![a()],
            fields: vec![(
                field,
                Type::arrow(Type::var(a()), Type::arrow(Type::var(a()), Type::Bool)),
            )],
        };
        let mut decls = Declarations::new();
        decls.declare(decl).unwrap();
        let d = decls.lookup(eq).unwrap();
        let ty = d.field_type(field, &[Type::Int]).unwrap();
        assert_eq!(
            ty,
            Type::arrow(Type::Int, Type::arrow(Type::Int, Type::Bool))
        );
    }

    #[test]
    fn duplicate_interface_rejected() {
        let decl = InterfaceDecl {
            name: Symbol::intern("Dup"),
            vars: vec![],
            fields: vec![],
        };
        let mut decls = Declarations::new();
        decls.declare(decl.clone()).unwrap();
        assert!(decls.declare(decl).is_err());
    }

    #[test]
    fn type_size_counts_constructors() {
        assert_eq!(Type::Int.size(), 1);
        assert_eq!(Type::arrow(Type::Int, Type::Bool).size(), 3);
        assert_eq!(
            Type::prod(Type::Int, Type::prod(Type::Int, Type::Int)).size(),
            5
        );
    }

    #[test]
    fn occurrences_counts_variables() {
        let t = Type::prod(Type::var(a()), Type::arrow(Type::var(a()), Type::Int));
        assert_eq!(t.occurrences(a()), 2);
        assert_eq!(t.occurrences(Symbol::intern("zz")), 0);
    }
}
