//! Lexer and parser for the concrete syntax of λ⇒.
//!
//! The syntax mirrors the paper's notation, ASCII-fied:
//!
//! ```text
//! -- types
//! Int, Bool, String, Unit, a, Int -> Bool, Int * Bool, [Int], Eq a
//! forall a. {a} => a * a                  -- rule type
//!
//! -- expressions
//! ?(Int)                                  -- query
//! rule ({Int, Bool} => Int * Bool) (e)    -- rule abstraction
//! e [Int, Bool]                           -- type application
//! e with {1 : Int, true : Bool}           -- rule application
//! implicit {1 : Int} in e : Int           -- scoping sugar
//! \x : Int. e      fix f : Int -> Int. e  let x : Int = e in e
//! if c then t else e
//! case xs of nil -> e | h :: t -> e
//! Eq [Int] { eq = e }     r.eq            -- records
//! ```
//!
//! A program is a sequence of `interface` declarations followed by an
//! expression:
//!
//! ```text
//! interface Eq a = { eq : a -> a -> Bool }
//! implicit { ... } in ... : Bool
//! ```
//!
//! Comments run from `--` to end of line.

use std::fmt;
use std::rc::Rc;

use crate::symbol::Symbol;
use crate::syntax::{BinOp, Declarations, Expr, InterfaceDecl, RuleType, Type, UnOp};

/// A parsed `data` declaration before kind inference:
/// (name, parameters, constructors).
type ParsedData = (Symbol, Vec<Symbol>, Vec<(Symbol, Vec<Type>)>);

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Int(i64),
    Str(String),
    /// Lowercase identifier (term/type variable) or keyword.
    Lower(String),
    /// Capitalized identifier (interface name or base type).
    Upper(String),
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Colon,
    ColonColon,
    FatArrow,
    Arrow,
    Lambda,
    Question,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    EqEq,
    Eq,
    Lt,
    Le,
    AndAnd,
    OrOr,
    PlusPlus,
    Pipe,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Lower(s) | Tok::Upper(s) => write!(f, "{s}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Comma => f.write_str(","),
            Tok::Dot => f.write_str("."),
            Tok::Colon => f.write_str(":"),
            Tok::ColonColon => f.write_str("::"),
            Tok::FatArrow => f.write_str("=>"),
            Tok::Arrow => f.write_str("->"),
            Tok::Lambda => f.write_str("\\"),
            Tok::Question => f.write_str("?"),
            Tok::Star => f.write_str("*"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::EqEq => f.write_str("=="),
            Tok::Eq => f.write_str("="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::PlusPlus => f.write_str("++"),
            Tok::Pipe => f.write_str("|"),
            Tok::Eof => f.write_str("<end of input>"),
        }
    }
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Lexer<'s> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match b {
            b'0'..=b'9' => {
                let mut n: i64 = 0;
                while let Some(d) = self.peek_byte() {
                    if d.is_ascii_digit() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(i64::from(d - b'0')))
                            .ok_or_else(|| self.error("integer literal overflows i64"))?;
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Int(n)
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated string literal")),
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'"') => s.push('"'),
                            other => {
                                return Err(self.error(format!(
                                    "invalid escape `\\{}`",
                                    other.map(char::from).unwrap_or(' ')
                                )))
                            }
                        },
                        Some(c) => s.push(char::from(c)),
                    }
                }
                Tok::Str(s)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek_byte() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let word = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii")
                    .to_owned();
                if word.as_bytes()[0].is_ascii_uppercase() {
                    Tok::Upper(word)
                } else {
                    Tok::Lower(word)
                }
            }
            _ => {
                self.bump();
                match b {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b',' => Tok::Comma,
                    b'.' => Tok::Dot,
                    b'\\' => Tok::Lambda,
                    b'?' => Tok::Question,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b':' => {
                        if self.peek_byte() == Some(b':') {
                            self.bump();
                            Tok::ColonColon
                        } else {
                            Tok::Colon
                        }
                    }
                    b'=' => match self.peek_byte() {
                        Some(b'>') => {
                            self.bump();
                            Tok::FatArrow
                        }
                        Some(b'=') => {
                            self.bump();
                            Tok::EqEq
                        }
                        _ => Tok::Eq,
                    },
                    b'-' => {
                        if self.peek_byte() == Some(b'>') {
                            self.bump();
                            Tok::Arrow
                        } else {
                            Tok::Minus
                        }
                    }
                    b'+' => {
                        if self.peek_byte() == Some(b'+') {
                            self.bump();
                            Tok::PlusPlus
                        } else {
                            Tok::Plus
                        }
                    }
                    b'<' => {
                        if self.peek_byte() == Some(b'=') {
                            self.bump();
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    b'&' => {
                        if self.peek_byte() == Some(b'&') {
                            self.bump();
                            Tok::AndAnd
                        } else {
                            return Err(self.error("expected `&&`"));
                        }
                    }
                    b'|' => {
                        if self.peek_byte() == Some(b'|') {
                            self.bump();
                            Tok::OrOr
                        } else {
                            Tok::Pipe
                        }
                    }
                    other => {
                        return Err(
                            self.error(format!("unexpected character `{}`", char::from(other)))
                        )
                    }
                }
            }
        };
        Ok((tok, line, col))
    }
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize, usize)>, ParseError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let done = t.0 == Tok::Eof;
        out.push(t);
        if done {
            return Ok(out);
        }
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (_, line, col) = &self.toks[self.pos];
        ParseError {
            line: *line,
            col: *col,
            message: message.into(),
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Lower(w) if w == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found `{other}`"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Lower(w) if w == kw)
    }

    fn lower_ident(&mut self) -> Result<Symbol, ParseError> {
        match self.peek().clone() {
            Tok::Lower(w) if !is_keyword(&w) => {
                self.bump();
                Ok(Symbol::intern(&w))
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn upper_ident(&mut self) -> Result<Symbol, ParseError> {
        match self.peek().clone() {
            Tok::Upper(w) if !is_base_type(&w) => {
                self.bump();
                Ok(Symbol::intern(&w))
            }
            other => Err(self.error(format!("expected interface name, found `{other}`"))),
        }
    }

    // ---------- types ----------

    /// type := ['forall' ident+ '.'] ['{' ctx '}' '=>'] arrow
    fn parse_type(&mut self) -> Result<Type, ParseError> {
        Ok(Type::rule(self.parse_rule_type()?))
    }

    fn parse_rule_type(&mut self) -> Result<RuleType, ParseError> {
        let mut vars = Vec::new();
        if self.at_kw("forall") {
            self.bump();
            while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
                vars.push(self.lower_ident()?);
            }
            if vars.is_empty() {
                return Err(self.error("`forall` needs at least one variable"));
            }
            self.expect(&Tok::Dot)?;
        }
        let mut context = Vec::new();
        let has_context = *self.peek() == Tok::LBrace;
        if has_context {
            self.bump();
            if *self.peek() != Tok::RBrace {
                loop {
                    context.push(self.parse_rule_type()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RBrace)?;
            self.expect(&Tok::FatArrow)?;
        }
        let head = self.parse_arrow_type()?;
        Ok(RuleType::new(vars, context, head))
    }

    /// arrow := prod ['->' arrow]
    fn parse_arrow_type(&mut self) -> Result<Type, ParseError> {
        let left = self.parse_prod_type()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let right = self.parse_arrow_type()?;
            Ok(Type::arrow(left, right))
        } else {
            Ok(left)
        }
    }

    /// prod := app ('*' app)*
    fn parse_prod_type(&mut self) -> Result<Type, ParseError> {
        let mut left = self.parse_app_type()?;
        while *self.peek() == Tok::Star {
            self.bump();
            let right = self.parse_app_type()?;
            left = Type::prod(left, right);
        }
        Ok(left)
    }

    /// app := Upper atom* | lower atom+ | atom
    fn parse_app_type(&mut self) -> Result<Type, ParseError> {
        if let Tok::Upper(w) = self.peek().clone() {
            if w == "List" {
                // `List` is the built-in constructor: bare it is a
                // constructor reference, applied it is the list type.
                self.bump();
                if self.starts_atom_type() {
                    let arg = self.parse_atom_type()?;
                    return Ok(Type::list(arg));
                }
                return Ok(Type::Ctor(crate::syntax::TyCon::List));
            }
            if !is_base_type(&w) {
                let name = self.upper_ident()?;
                let mut args = Vec::new();
                while self.starts_atom_type() {
                    args.push(self.parse_atom_type()?);
                }
                return Ok(Type::Con(name, args));
            }
        }
        if let Tok::Lower(w) = self.peek().clone() {
            if !is_keyword(&w) {
                let head = self.lower_ident()?;
                let mut args = Vec::new();
                while self.starts_atom_type() {
                    args.push(self.parse_atom_type()?);
                }
                return Ok(if args.is_empty() {
                    Type::var(head)
                } else {
                    Type::VarApp(head, args)
                });
            }
        }
        self.parse_atom_type()
    }

    fn starts_atom_type(&self) -> bool {
        matches!(self.peek(), Tok::Upper(_) | Tok::LParen | Tok::LBracket)
            || matches!(self.peek(), Tok::Lower(w) if !is_keyword(w))
    }

    fn parse_atom_type(&mut self) -> Result<Type, ParseError> {
        match self.peek().clone() {
            Tok::Upper(w) => match w.as_str() {
                "Int" => {
                    self.bump();
                    Ok(Type::Int)
                }
                "Bool" => {
                    self.bump();
                    Ok(Type::Bool)
                }
                "String" => {
                    self.bump();
                    Ok(Type::Str)
                }
                "Unit" => {
                    self.bump();
                    Ok(Type::Unit)
                }
                "List" => {
                    self.bump();
                    Ok(Type::Ctor(crate::syntax::TyCon::List))
                }
                _ => {
                    // A bare constructor (no arguments at atom level).
                    let name = self.upper_ident()?;
                    Ok(Type::Con(name, Vec::new()))
                }
            },
            Tok::Lower(w) if !is_keyword(&w) => {
                self.bump();
                Ok(Type::var(Symbol::intern(&w)))
            }
            Tok::LBracket => {
                self.bump();
                let t = self.parse_type()?;
                self.expect(&Tok::RBracket)?;
                Ok(Type::list(t))
            }
            Tok::LParen => {
                self.bump();
                let t = self.parse_type()?;
                self.expect(&Tok::RParen)?;
                Ok(t)
            }
            other => Err(self.error(format!("expected a type, found `{other}`"))),
        }
    }

    // ---------- expressions ----------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Lambda => {
                self.bump();
                let x = self.lower_ident()?;
                self.expect(&Tok::Colon)?;
                let t = self.parse_type()?;
                self.expect(&Tok::Dot)?;
                let body = self.parse_expr()?;
                Ok(Expr::lam(x, t, body))
            }
            Tok::Lower(w) if w == "fix" => {
                self.bump();
                let x = self.lower_ident()?;
                self.expect(&Tok::Colon)?;
                let t = self.parse_type()?;
                self.expect(&Tok::Dot)?;
                let body = self.parse_expr()?;
                Ok(Expr::Fix(x, t, Rc::new(body)))
            }
            Tok::Lower(w) if w == "if" => {
                self.bump();
                let c = self.parse_with_expr()?;
                self.expect_kw("then")?;
                let t = self.parse_with_expr()?;
                self.expect_kw("else")?;
                let e = self.parse_expr()?;
                Ok(Expr::if_(c, t, e))
            }
            Tok::Lower(w) if w == "case" => {
                self.bump();
                let scrut = self.parse_with_expr()?;
                self.expect_kw("of")?;
                self.expect_kw("nil")?;
                self.expect(&Tok::Arrow)?;
                let nil = self.parse_with_expr()?;
                self.expect(&Tok::Pipe)?;
                let h = self.lower_ident()?;
                self.expect(&Tok::ColonColon)?;
                let t = self.lower_ident()?;
                self.expect(&Tok::Arrow)?;
                let cons = self.parse_expr()?;
                Ok(Expr::ListCase {
                    scrut: Rc::new(scrut),
                    nil: Rc::new(nil),
                    head: h,
                    tail: t,
                    cons: Rc::new(cons),
                })
            }
            Tok::Lower(w) if w == "let" => {
                self.bump();
                let x = self.lower_ident()?;
                self.expect(&Tok::Colon)?;
                let t = self.parse_type()?;
                self.expect(&Tok::Eq)?;
                let bound = self.parse_expr()?;
                self.expect_kw("in")?;
                let body = self.parse_expr()?;
                Ok(Expr::let_(x, t, bound, body))
            }
            Tok::Lower(w) if w == "implicit" => {
                self.bump();
                self.expect(&Tok::LBrace)?;
                let mut args = Vec::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        let e = self.parse_arg_expr()?;
                        self.expect(&Tok::Colon)?;
                        let r = self.parse_rule_type()?;
                        args.push((e, r));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                self.expect_kw("in")?;
                let body = self.parse_expr()?;
                self.expect(&Tok::Colon)?;
                let ty = self.parse_type()?;
                Ok(Expr::implicit(args, body, ty))
            }
            _ => self.parse_with_expr(),
        }
    }

    /// An argument expression in `with { e : rho }` / `implicit`
    /// lists: a full expression, except that a top-level `implicit`
    /// body annotation would swallow the `:` separator, so `implicit`
    /// arguments must be parenthesized there.
    fn parse_arg_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at_kw("implicit") {
            return Err(
                self.error("parenthesize an `implicit` expression used as a `with` argument")
            );
        }
        self.parse_expr()
    }

    /// withexpr := binary ('with' '{' args '}')*
    fn parse_with_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_binary(2)?;
        while self.at_kw("with") {
            self.bump();
            self.expect(&Tok::LBrace)?;
            let mut args = Vec::new();
            if *self.peek() != Tok::RBrace {
                loop {
                    let a = self.parse_arg_expr()?;
                    self.expect(&Tok::Colon)?;
                    let r = self.parse_rule_type()?;
                    args.push((a, r));
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RBrace)?;
            e = Expr::with(e, args);
        }
        Ok(e)
    }

    /// Precedence-climbing binary expressions; levels match the
    /// pretty printer (2 `||`, 3 `&&`, 4 comparisons, 5 `++`/`::`,
    /// 6 `+`/`-`, 7 `*`/`/`/`%`).
    fn parse_binary(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        if min_level > 7 {
            return self.parse_app();
        }
        let mut left = self.parse_binary(min_level + 1)?;
        loop {
            let op = match (min_level, self.peek()) {
                (2, Tok::OrOr) => Some(BinOp::Or),
                (3, Tok::AndAnd) => Some(BinOp::And),
                (4, Tok::EqEq) => Some(BinOp::Eq),
                (4, Tok::Lt) => Some(BinOp::Lt),
                (4, Tok::Le) => Some(BinOp::Le),
                (5, Tok::PlusPlus) => Some(BinOp::Concat),
                (6, Tok::Plus) => Some(BinOp::Add),
                (6, Tok::Minus) => Some(BinOp::Sub),
                (7, Tok::Star) => Some(BinOp::Mul),
                (7, Tok::Slash) => Some(BinOp::Div),
                (7, Tok::Percent) => Some(BinOp::Mod),
                _ => None,
            };
            if let Some(op) = op {
                self.bump();
                let right = self.parse_binary(min_level + 1)?;
                left = Expr::binop(op, left, right);
                continue;
            }
            // Cons is right-associative at level 5.
            if min_level == 5 && *self.peek() == Tok::ColonColon {
                self.bump();
                let right = self.parse_binary(5)?;
                left = Expr::Cons(Rc::new(left), Rc::new(right));
                continue;
            }
            return Ok(left);
        }
    }

    /// app := prefix postfix* (application is left-associative;
    /// postfix is type application `[τ̄]` or projection `.field`)
    fn parse_app(&mut self) -> Result<Expr, ParseError> {
        // Prefix keyword operators.
        for (kw, op) in [
            ("not", UnOp::Not),
            ("neg", UnOp::Neg),
            ("showInt", UnOp::IntToStr),
        ] {
            if self.at_kw(kw) {
                self.bump();
                let e = self.parse_postfix()?;
                return Ok(Expr::UnOp(op, Rc::new(e)));
            }
        }
        if self.at_kw("fst") {
            self.bump();
            return Ok(Expr::Fst(Rc::new(self.parse_postfix()?)));
        }
        if self.at_kw("snd") {
            self.bump();
            return Ok(Expr::Snd(Rc::new(self.parse_postfix()?)));
        }
        let mut e = self.parse_postfix()?;
        while self.starts_atom_expr() {
            let arg = self.parse_postfix()?;
            e = Expr::app(e, arg);
        }
        Ok(e)
    }

    fn starts_atom_expr(&self) -> bool {
        match self.peek() {
            Tok::Int(_) | Tok::Str(_) | Tok::LParen | Tok::Question => true,
            Tok::Upper(w) => !is_base_type(w),
            Tok::Lower(w) => {
                !is_keyword(w)
                    || matches!(
                        w.as_str(),
                        "true" | "false" | "unit" | "nil" | "rule" | "con" | "match"
                    )
            }
            _ => false,
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_atom_expr()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let mut ts = Vec::new();
                    if *self.peek() != Tok::RBracket {
                        loop {
                            ts.push(self.parse_type()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                    e = Expr::TyApp(Rc::new(e), ts);
                }
                Tok::Dot => {
                    self.bump();
                    let field = self.lower_ident()?;
                    e = Expr::Proj(Rc::new(e), field);
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_atom_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Question => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let r = self.parse_rule_type()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Query(r))
            }
            Tok::Lower(w) => match w.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false))
                }
                "unit" => {
                    self.bump();
                    Ok(Expr::Unit)
                }
                "nil" => {
                    self.bump();
                    self.expect(&Tok::LBracket)?;
                    let t = self.parse_type()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(Expr::Nil(t))
                }
                "rule" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let r = self.parse_rule_type()?;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::LParen)?;
                    let body = self.parse_expr()?;
                    self.expect(&Tok::RParen)?;
                    if r.is_trivial() {
                        return Err(
                            self.error("trivial rule abstraction (empty quantifier and context)")
                        );
                    }
                    Ok(Expr::rule_abs(r, body))
                }
                "con" => {
                    // con C [τ̄] (e₁, …, eₙ)
                    self.bump();
                    let ctor = self.upper_ident()?;
                    let mut targs = Vec::new();
                    if *self.peek() == Tok::LBracket {
                        self.bump();
                        if *self.peek() != Tok::RBracket {
                            loop {
                                targs.push(self.parse_type()?);
                                if *self.peek() == Tok::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RBracket)?;
                    }
                    self.expect(&Tok::LParen)?;
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Inject(ctor, targs, args))
                }
                "match" => {
                    // match e { C x̄ -> e | … }
                    self.bump();
                    let scrut = self.parse_binary(2)?;
                    self.expect(&Tok::LBrace)?;
                    let mut arms = Vec::new();
                    loop {
                        let ctor = self.upper_ident()?;
                        let mut binders = Vec::new();
                        while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
                            binders.push(self.lower_ident()?);
                        }
                        self.expect(&Tok::Arrow)?;
                        let body = self.parse_expr()?;
                        arms.push(crate::syntax::MatchArm {
                            ctor,
                            binders,
                            body,
                        });
                        if *self.peek() == Tok::Pipe {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Tok::RBrace)?;
                    Ok(Expr::Match(Rc::new(scrut), arms))
                }
                _ if !is_keyword(&w) => {
                    self.bump();
                    Ok(Expr::var(Symbol::intern(&w)))
                }
                _ => Err(self.error(format!("unexpected keyword `{w}`"))),
            },
            Tok::Upper(w) if !is_base_type(&w) => {
                // Record construction: I [τ̄]? { u = e, … }
                let name = self.upper_ident()?;
                let mut args = Vec::new();
                if *self.peek() == Tok::LBracket {
                    self.bump();
                    if *self.peek() != Tok::RBracket {
                        loop {
                            args.push(self.parse_type()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                }
                self.expect(&Tok::LBrace)?;
                let mut fields = Vec::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        let u = self.lower_ident()?;
                        self.expect(&Tok::Eq)?;
                        let e = self.parse_expr()?;
                        fields.push((u, e));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Expr::Make(name, args, fields))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                if *self.peek() == Tok::Comma {
                    self.bump();
                    let e2 = self.parse_expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::pair(e, e2))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(e)
                }
            }
            other => Err(self.error(format!("expected an expression, found `{other}`"))),
        }
    }

    // ---------- programs ----------

    /// data D p₁ … pₙ = C₁ T̄₁ | … | Cₖ T̄ₖ
    fn parse_data(&mut self) -> Result<ParsedData, ParseError> {
        self.expect_kw("data")?;
        let name = self.upper_ident()?;
        let mut params = Vec::new();
        while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
            params.push(self.lower_ident()?);
        }
        self.expect(&Tok::Eq)?;
        let mut ctors = Vec::new();
        loop {
            let ctor = self.upper_ident()?;
            let mut args = Vec::new();
            while self.starts_atom_type() {
                args.push(self.parse_atom_type()?);
            }
            ctors.push((ctor, args));
            if *self.peek() == Tok::Pipe {
                self.bump();
            } else {
                break;
            }
        }
        Ok((name, params, ctors))
    }

    fn parse_interface(&mut self) -> Result<InterfaceDecl, ParseError> {
        self.expect_kw("interface")?;
        let name = self.upper_ident()?;
        let mut vars = Vec::new();
        while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
            vars.push(self.lower_ident()?);
        }
        self.expect(&Tok::Eq)?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        if *self.peek() != Tok::RBrace {
            loop {
                let u = self.lower_ident()?;
                self.expect(&Tok::Colon)?;
                let t = self.parse_type()?;
                fields.push((u, t));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(InterfaceDecl { name, vars, fields })
    }
}

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "forall"
            | "rule"
            | "with"
            | "implicit"
            | "in"
            | "if"
            | "then"
            | "else"
            | "true"
            | "false"
            | "unit"
            | "nil"
            | "case"
            | "of"
            | "fix"
            | "let"
            | "not"
            | "neg"
            | "showInt"
            | "fst"
            | "snd"
            | "interface"
            | "data"
            | "con"
            | "match"
    )
}

fn is_base_type(w: &str) -> bool {
    matches!(w, "Int" | "Bool" | "String" | "Unit")
}

fn run_parser<T>(
    src: &str,
    f: impl FnOnce(&mut Parser) -> Result<T, ParseError>,
) -> Result<T, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let out = f(&mut p)?;
    if *p.peek() != Tok::Eof {
        return Err(p.error(format!("unexpected trailing `{}`", p.peek())));
    }
    Ok(out)
}

/// Parses a type.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information.
pub fn parse_type(src: &str) -> Result<Type, ParseError> {
    run_parser(src, Parser::parse_type)
}

/// Parses a rule type (`forall ā. {π} => τ`, with quantifier and
/// context optional).
///
/// # Errors
///
/// Returns a [`ParseError`] with position information.
pub fn parse_rule_type(src: &str) -> Result<RuleType, ParseError> {
    run_parser(src, Parser::parse_rule_type)
}

/// Parses an expression.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information.
///
/// # Examples
///
/// ```
/// use implicit_core::parse::parse_expr;
///
/// let e = parse_expr("implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool")?;
/// # let _ = e;
/// # Ok::<(), implicit_core::parse::ParseError>(())
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    run_parser(src, Parser::parse_expr)
}

/// Parses a whole program: `interface` declarations followed by one
/// expression.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information, or an
/// interface-redeclaration error mapped onto the declaration site.
pub fn parse_program(src: &str) -> Result<(Declarations, Expr), ParseError> {
    run_parser(src, |p| {
        let mut decls = Declarations::new();
        while p.at_kw("interface") || p.at_kw("data") {
            let (line, col) = {
                let (_, l, c) = &p.toks[p.pos];
                (*l, *c)
            };
            let fail = |message: String| ParseError { line, col, message };
            if p.at_kw("interface") {
                let d = p.parse_interface()?;
                decls.declare(d).map_err(fail)?;
            } else {
                let (name, params, ctors) = p.parse_data()?;
                let d = crate::syntax::DataDecl::infer(name, params, ctors).map_err(fail)?;
                decls.declare_data(d).map_err(fail)?;
            }
        }
        let e = p.parse_expr()?;
        Ok((decls, e))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_types() {
        assert_eq!(parse_type("Int").unwrap(), Type::Int);
        assert_eq!(
            parse_type("Int -> Bool -> Int").unwrap(),
            Type::arrow(Type::Int, Type::arrow(Type::Bool, Type::Int))
        );
        assert_eq!(
            parse_type("Int * Bool").unwrap(),
            Type::prod(Type::Int, Type::Bool)
        );
        assert_eq!(parse_type("[Int]").unwrap(), Type::list(Type::Int));
        assert_eq!(
            parse_type("(Int -> Int) -> Bool").unwrap(),
            Type::arrow(Type::arrow(Type::Int, Type::Int), Type::Bool)
        );
    }

    #[test]
    fn parses_rule_types() {
        let r = parse_rule_type("forall a. {a} => a * a").unwrap();
        assert_eq!(r.vars().len(), 1);
        assert_eq!(r.context().len(), 1);
        let r2 = parse_rule_type("{Int, Bool} => Int").unwrap();
        assert_eq!(r2.context().len(), 2);
        assert!(parse_rule_type("Int").unwrap().is_trivial());
    }

    #[test]
    fn trivial_rule_types_collapse_in_types() {
        // A parenthesized context-free "rule type" is just the type.
        assert_eq!(parse_type("(Int)").unwrap(), Type::Int);
    }

    #[test]
    fn parses_paper_example_e1() {
        let e =
            parse_expr("implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool")
                .unwrap();
        assert!(matches!(e, Expr::RuleApp(_, _)));
    }

    #[test]
    fn parses_higher_order_rule_e2() {
        let src = "implicit {3 : Int, rule ({Int} => Int * Int) ((?(Int), ?(Int) + 1)) : {Int} => Int * Int} in ?(Int * Int) : Int * Int";
        let e = parse_expr(src).unwrap();
        assert!(matches!(e, Expr::RuleApp(_, _)));
    }

    #[test]
    fn parses_lambda_and_application() {
        let e = parse_expr("(\\x : Int. x + 1) 41").unwrap();
        match &e {
            Expr::App(f, a) => {
                assert!(matches!(&**f, Expr::Lam(_, Type::Int, _)));
                assert_eq!(**a, Expr::Int(41));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_type_application_and_with() {
        let e = parse_expr("rule (forall a. {a} => a * a) ((?(a), ?(a))) [Int] with {3 : Int}")
            .unwrap();
        assert!(matches!(e, Expr::RuleApp(_, _)));
    }

    #[test]
    fn parses_interfaces_and_records() {
        let (decls, e) = parse_program(
            "interface Eq a = { eq : a -> a -> Bool }\n\
             (Eq [Int] { eq = \\x : Int. \\y : Int. x == y }).eq 1 2",
        )
        .unwrap();
        assert!(decls.lookup(Symbol::intern("Eq")).is_some());
        assert!(matches!(e, Expr::App(_, _)));
    }

    #[test]
    fn parses_case_fix_let_strings() {
        let src = r#"
            let join : [String] -> String =
              fix go : [String] -> String.
                \xs : [String]. case xs of nil -> "" | h :: t -> h ++ go t
            in join ("a" :: "b" :: nil [String])
        "#;
        let e = parse_expr(src).unwrap();
        assert!(matches!(e, Expr::App(_, _)));
    }

    #[test]
    fn comments_are_skipped() {
        let e = parse_expr("1 + -- a comment\n 2").unwrap();
        assert_eq!(e, Expr::binop(BinOp::Add, Expr::Int(1), Expr::Int(2)));
    }

    #[test]
    fn operator_precedence_matches_printer() {
        let e = parse_expr("1 + 2 * 3 == 7 && true").unwrap();
        // ((1 + (2*3)) == 7) && true
        match e {
            Expr::BinOp(BinOp::And, l, _) => match &*l {
                Expr::BinOp(BinOp::Eq, _, _) => {}
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_expr("1 +\n  )").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn roundtrip_print_parse() {
        let sources = [
            "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
            "rule (forall a. {a} => a * a) ((?(a), ?(a))) [Int] with {3 : Int}",
            "\\x : Int. if x < 2 then x else x * 2",
            "case 1 :: nil [Int] of nil -> 0 | h :: t -> h",
            "fix f : Int -> Int. \\n : Int. if n <= 0 then 1 else n * f (n - 1)",
            "(fst (1, true), snd (1, true))",
            "showInt 42 ++ \"!\"",
        ];
        for src in sources {
            let e1 = parse_expr(src).unwrap();
            let printed = e1.to_string();
            let e2 = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
            assert_eq!(e1, e2, "roundtrip mismatch for `{src}` → `{printed}`");
        }
    }

    #[test]
    fn duplicate_interfaces_error_at_position() {
        let err =
            parse_program("interface A = { x : Int }\ninterface A = { y : Int }\n1").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(parse_expr("\"abc").is_err());
    }

    #[test]
    fn integer_overflow_is_reported() {
        assert!(parse_expr("99999999999999999999999").is_err());
    }
}
