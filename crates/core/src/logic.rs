//! The logical interpretation of resolution (§3.2, Theorem 1).
//!
//! Each type is assigned a logical reading `(·)†`: simple types become
//! atomic propositions ("a value of this type is implicitly
//! available") and rule types become implications
//! `(∀ᾱ.π ⇒ τ)† = ∀ᾱ. ⋀ρ∈π ρ† ⇒ τ†`. Theorem 1 states that
//! resolution is *sound* for this reading: `Δ ⊢r ρ ⟹ Δ† ⊨ ρ†`.
//!
//! This module provides both directions of the comparison:
//!
//! * [`verify_derivation`] checks that a [`Resolution`] produced by
//!   the resolver really is a valid entailment proof — each step uses
//!   a rule present in the environment (or an assumed premise), with
//!   a correct instantiation and complete premises. This makes
//!   Theorem 1 *checkable* on every resolution the system performs.
//! * [`entails`] is an independent, backtracking hereditary-Harrop
//!   prover for the semantic judgment `Δ† ⊨ ρ†` (depth-bounded, since
//!   entailment over type atoms is only semi-decidable). It proves
//!   strictly more than `⊢r` — e.g. the §3.2 example
//!   `Char; Char⇒Int; Bool⇒Int ⊨ Int` holds semantically while
//!   resolution, which never backtracks past the nearest match, gets
//!   stuck. Tests use this gap to reproduce the paper's discussion.

use crate::alpha;
use crate::env::ImplicitEnv;
use crate::resolve::{Premise, Resolution, RuleRef};
use crate::subst::{freshen_rule, TySubst};
use crate::syntax::{RuleType, Type};
use crate::unify;

/// Checks that a resolution derivation is a valid entailment proof of
/// its query from the environment (the constructive content of
/// Theorem 1).
///
/// Verifies, at every node:
///
/// 1. the referenced rule exists at the recorded frame/index and is
///    α-equivalent to the recorded rule type;
/// 2. instantiating the rule's quantifiers with the recorded type
///    arguments makes its head equal to the query head;
/// 3. the premises line up with the instantiated context, assumed
///    premises are α-members of the query's own context, and derived
///    premises verify recursively.
///
/// Derivations using extension frames are accepted if
/// `allow_extension` and the assumed context at the recorded level
/// matches (these prove entailment from `Δ ∪ assumptions`).
pub fn verify_derivation(env: &ImplicitEnv, res: &Resolution) -> bool {
    verify_at(env, res, &mut Vec::new())
}

fn verify_at(
    env: &ImplicitEnv,
    res: &Resolution,
    assumption_stack: &mut Vec<Vec<RuleType>>,
) -> bool {
    // 1. The referenced rule must exist and match the recorded one.
    let stored: Option<RuleType> = match res.rule {
        RuleRef::Env { frame, index } => env
            .frames_innermost_first()
            .find(|(ix, _)| *ix == frame)
            .and_then(|(_, rules)| rules.get(index))
            .cloned(),
        RuleRef::Extension { level, index } => assumption_stack
            .get(level)
            .and_then(|ctx| ctx.get(index))
            .cloned(),
    };
    let Some(stored) = stored else {
        return false;
    };
    if !alpha::alpha_eq(&stored, &res.rule_type) {
        return false;
    }
    // 2. Instantiation makes the head match the query head.
    let (fresh, _) = freshen_rule(&stored);
    if fresh.vars().len() != res.type_args.len() {
        return false;
    }
    let theta = TySubst::bind_all(fresh.vars(), &res.type_args);
    if !alpha::alpha_eq_type(&theta.apply_type(fresh.head()), res.query.head()) {
        return false;
    }
    // 3. Premises align with the instantiated context.
    let inst_context = theta.apply_context(fresh.context());
    if inst_context.len() != res.premises.len() {
        return false;
    }
    for (want, premise) in inst_context.iter().zip(&res.premises) {
        if !alpha::alpha_eq(want, premise.rho()) {
            return false;
        }
        match premise {
            Premise::Assumed { index, rho } => match res.query.context().get(*index) {
                Some(q) if alpha::alpha_eq(q, rho) => {}
                _ => return false,
            },
            Premise::Derived(inner) => {
                assumption_stack.push(res.query.context().to_vec());
                let ok = verify_at(env, inner, assumption_stack);
                assumption_stack.pop();
                if !ok {
                    return false;
                }
            }
        }
    }
    true
}

/// Depth-bounded semantic entailment `Δ† ⊨ ρ†`.
///
/// A hereditary-Harrop prover with full backtracking: to prove a rule
/// type, assume its context and prove its head; to prove an atom, try
/// *every* rule (in any frame) whose head matches and prove its
/// premises. Nesting is handled by extending the assumption list.
///
/// Returns `false` both for non-theorems and when the proof search
/// exceeds `depth` — callers that need the distinction should raise
/// the bound.
pub fn entails(env: &ImplicitEnv, query: &RuleType, depth: usize) -> bool {
    let mut rules: Vec<RuleType> = Vec::new();
    for (_, frame) in env.frames_innermost_first() {
        rules.extend(frame.iter().cloned());
    }
    prove_rule(&rules, query, depth)
}

fn prove_rule(rules: &[RuleType], goal: &RuleType, depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    // Assume the goal's context, prove its head. The goal's
    // quantifiers become fresh eigenvariables (they are already
    // distinct symbols; matching treats unknown vars as rigid).
    let (goal, _) = freshen_rule(goal);
    let mut extended: Vec<RuleType> = goal.context().to_vec();
    extended.extend(rules.iter().cloned());
    prove_atom(&extended, goal.head(), depth)
}

fn prove_atom(rules: &[RuleType], goal: &Type, depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    for rule in rules {
        let (fresh, _) = freshen_rule(rule);
        if let Some(theta) = unify::match_type(fresh.head(), goal, fresh.vars()) {
            let premises = theta.apply_context(fresh.context());
            if premises.iter().all(|p| prove_rule(rules, p, depth - 1)) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{resolve, ResolutionPolicy};
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    fn pair_rule() -> RuleType {
        RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        )
    }

    #[test]
    fn successful_resolutions_verify() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![pair_rule()]);
        let query = Type::prod(Type::Int, Type::Int).promote();
        let res = resolve(&env, &query, &ResolutionPolicy::paper()).unwrap();
        assert!(verify_derivation(&env, &res));
    }

    #[test]
    fn tampered_derivations_are_rejected() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        env.push(vec![pair_rule()]);
        let query = Type::prod(Type::Int, Type::Int).promote();
        let mut res = resolve(&env, &query, &ResolutionPolicy::paper()).unwrap();
        // Wrong type argument:
        res.type_args = vec![Type::Bool];
        assert!(!verify_derivation(&env, &res));
    }

    #[test]
    fn wrong_rule_reference_is_rejected() {
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote()]);
        let res = resolve(&env, &Type::Int.promote(), &ResolutionPolicy::paper()).unwrap();
        let mut bad = res.clone();
        bad.rule = RuleRef::Env { frame: 3, index: 0 };
        assert!(!verify_derivation(&env, &bad));
        // And against a different environment:
        let other = ImplicitEnv::with_frame(vec![Type::Bool.promote()]);
        assert!(!verify_derivation(&other, &res));
    }

    #[test]
    fn resolution_implies_entailment_theorem1() {
        // Every query the resolver solves must be semantically
        // entailed.
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Int.promote(), Type::Bool.promote()]);
        env.push(vec![pair_rule()]);
        let queries = [
            Type::Int.promote(),
            Type::prod(Type::Int, Type::Int).promote(),
            Type::prod(
                Type::prod(Type::Bool, Type::Bool),
                Type::prod(Type::Bool, Type::Bool),
            )
            .promote(),
            RuleType::mono(vec![Type::Int.promote()], Type::prod(Type::Int, Type::Int)),
        ];
        let policy = ResolutionPolicy::paper();
        for q in &queries {
            if resolve(&env, q, &policy).is_ok() {
                assert!(entails(&env, q, 32), "entailment failed for {q}");
            }
        }
    }

    #[test]
    fn entailment_is_strictly_stronger_than_resolution() {
        // §3.2: Char; Char⇒Int; Bool⇒Int. Semantically Int follows
        // (via the Char rule); resolution gets stuck on the nearest
        // Bool⇒Int rule.
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Str.promote()]);
        env.push(vec![RuleType::mono(vec![Type::Str.promote()], Type::Int)]);
        env.push(vec![RuleType::mono(vec![Type::Bool.promote()], Type::Int)]);
        assert!(resolve(&env, &Type::Int.promote(), &ResolutionPolicy::paper()).is_err());
        assert!(entails(&env, &Type::Int.promote(), 16));
    }

    #[test]
    fn hypothetical_goals_extend_assumptions() {
        // ⊨ {Char} ⇒ Int from {Char ⇒ Int}: assume Char, use rule.
        let env =
            ImplicitEnv::with_frame(vec![RuleType::mono(vec![Type::Str.promote()], Type::Int)]);
        let goal = RuleType::mono(vec![Type::Str.promote()], Type::Int);
        assert!(entails(&env, &goal, 16));
        // But the bare Int is not entailed (no Char available).
        assert!(!entails(&env, &Type::Int.promote(), 16));
    }

    #[test]
    fn entailment_depth_bound_prevents_divergence() {
        let env = ImplicitEnv::with_frame(vec![
            RuleType::mono(vec![Type::Str.promote()], Type::Int),
            RuleType::mono(vec![Type::Int.promote()], Type::Str),
        ]);
        // Neither provable nor diverging: the bound cuts the search.
        assert!(!entails(&env, &Type::Int.promote(), 24));
    }

    #[test]
    fn partial_resolution_derivations_verify() {
        let rule = RuleType::new(
            vec![v("a")],
            vec![Type::Bool.promote(), tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let mut env = ImplicitEnv::new();
        env.push(vec![Type::Bool.promote()]);
        env.push(vec![rule]);
        let query = RuleType::mono(vec![Type::Int.promote()], Type::prod(Type::Int, Type::Int));
        let res = resolve(&env, &query, &ResolutionPolicy::paper()).unwrap();
        assert!(res.is_partial());
        assert!(verify_derivation(&env, &res));
        assert!(entails(&env, &query, 32));
    }
}
