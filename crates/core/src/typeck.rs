//! The type system of λ⇒ (Figure "Type System").
//!
//! The judgment `Γ ∣ Δ ⊢ e : τ` checks an expression against a type
//! environment Γ (term variables) and an implicit environment Δ (a
//! stack of contexts). The four interesting rules are:
//!
//! * `TyRule` — a rule abstraction `rule(∀ᾱ.π ⇒ τ)(e)` checks its
//!   body under `Δ;π` with `ᾱ` fresh for `Γ, Δ` (binders are renamed
//!   apart automatically when needed) and must be `unambiguous`;
//! * `TyInst` — type application instantiates quantifiers;
//! * `TyRApp` — rule application supplies evidence for an entire
//!   context;
//! * `TyQuery` — a query `?ρ` type-checks iff `Δ ⊢r ρ`
//!   ([`crate::resolve::resolve`]) and ρ is `unambiguous`.
//!
//! The remaining rules are the standard simply-typed rules for the
//! host fragment. Rule types compare modulo α-equivalence throughout.

use std::collections::BTreeSet;
use std::fmt;

use crate::alpha;
use crate::env::ImplicitEnv;
use crate::resolve::{resolve, ResolutionPolicy, ResolveError};
use crate::subst::TySubst;
use crate::symbol::Symbol;
use crate::syntax::{BinOp, Declarations, Expr, RuleType, TyVar, Type, UnOp};

/// A type-checking error.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// An unbound term variable.
    UnboundVar(Symbol),
    /// A type annotation mentions a type variable not bound by any
    /// enclosing rule abstraction.
    UnboundTypeVar(TyVar),
    /// An unknown interface name.
    UnknownInterface(Symbol),
    /// An unknown field of an interface.
    UnknownField {
        /// Interface name.
        interface: Symbol,
        /// The missing field.
        field: Symbol,
    },
    /// Wrong number of type arguments for an interface or rule type.
    ArityMismatch {
        /// What was being instantiated.
        what: String,
        /// Expected count.
        expected: usize,
        /// Found count.
        found: usize,
    },
    /// Two types that had to be equal are not.
    Mismatch {
        /// Expected type.
        expected: Type,
        /// Found type.
        found: Type,
        /// Where the mismatch happened.
        context: String,
    },
    /// A non-function was applied.
    NotAFunction(Type),
    /// A non-pair was projected.
    NotAPair(Type),
    /// A non-list was matched.
    NotAList(Type),
    /// A non-record was projected.
    NotARecord(Type),
    /// Type or rule application to a non-rule-typed expression.
    NotARule(Type),
    /// Rule application to a still-polymorphic rule; instantiate
    /// first.
    PolymorphicRuleApplication(RuleType),
    /// The `with` arguments do not cover the rule's context exactly.
    ContextMismatch {
        /// Expected context.
        expected: Vec<RuleType>,
        /// Supplied rule types.
        supplied: Vec<RuleType>,
    },
    /// The `unambiguous` condition failed (§3.3).
    Ambiguous(RuleType),
    /// A query could not be resolved.
    Resolution(ResolveError),
    /// `fix` at a non-function type.
    FixNotFunction(Type),
    /// A record literal's fields do not match the declaration.
    BadRecordLiteral {
        /// Interface name.
        interface: Symbol,
        /// Explanation.
        reason: String,
    },
    /// A type variable is used at two different kinds (arities).
    KindMismatch {
        /// The variable.
        var: TyVar,
        /// Arity of the first usage.
        first: usize,
        /// Arity of the conflicting usage.
        second: usize,
    },
    /// A type constructor reference appeared in type position
    /// (constructors may only instantiate arrow-kinded quantifiers).
    CtorInTypePosition(crate::syntax::TyCon),
    /// A type argument did not have the constructor kind its
    /// quantifier demands.
    NotAConstructor {
        /// The offending argument.
        found: Type,
        /// The arity the quantifier demands (0 = a plain type was
        /// expected but a constructor was given).
        arity: usize,
    },
    /// An unknown data constructor.
    UnknownCtor(Symbol),
    /// A `match` on a non-data type.
    NotAData(Type),
    /// A malformed `match` (wrong binders, duplicate or missing
    /// arms).
    BadMatch {
        /// The data type being matched.
        data: Symbol,
        /// Explanation.
        reason: String,
    },
    /// Strict mode: a context violates the Appendix A termination
    /// conditions.
    Termination(crate::termination::TerminationViolation),
    /// Strict mode: a coherence condition failed (companion note /
    /// extended report).
    Coherence(crate::coherence::CoherenceError),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            TypeError::UnboundTypeVar(a) => write!(f, "unbound type variable `{a}`"),
            TypeError::UnknownInterface(i) => write!(f, "unknown interface `{i}`"),
            TypeError::UnknownField { interface, field } => {
                write!(f, "interface `{interface}` has no field `{field}`")
            }
            TypeError::ArityMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "{what}: expected {expected} type argument(s), found {found}"
            ),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            TypeError::NotAFunction(t) => write!(f, "cannot apply a value of type `{t}`"),
            TypeError::NotAPair(t) => write!(f, "cannot project a value of type `{t}`"),
            TypeError::NotAList(t) => write!(f, "cannot match a value of type `{t}` as a list"),
            TypeError::NotARecord(t) => write!(f, "cannot project a field from type `{t}`"),
            TypeError::NotARule(t) => {
                write!(f, "expected a rule type, found `{t}`")
            }
            TypeError::PolymorphicRuleApplication(r) => write!(
                f,
                "rule application to polymorphic rule `{r}`; apply type arguments first"
            ),
            TypeError::ContextMismatch { expected, supplied } => write!(
                f,
                "rule application context mismatch: expected {{{}}}, supplied {{{}}}",
                join(expected),
                join(supplied)
            ),
            TypeError::Ambiguous(r) => write!(
                f,
                "rule type `{r}` is ambiguous: every quantified variable must occur in the head"
            ),
            TypeError::Resolution(e) => write!(f, "{e}"),
            TypeError::FixNotFunction(t) => {
                write!(f, "`fix` requires a function type, found `{t}`")
            }
            TypeError::BadRecordLiteral { interface, reason } => {
                write!(f, "bad record literal for `{interface}`: {reason}")
            }
            TypeError::KindMismatch { var, first, second } => write!(
                f,
                "kind mismatch: type variable `{var}` is used with {first} and {second} \
                 argument(s)"
            ),
            TypeError::CtorInTypePosition(c) => write!(
                f,
                "type constructor `{c}` used as a type; constructors may only instantiate \
                 arrow-kinded quantifiers"
            ),
            TypeError::NotAConstructor { found, arity } => {
                if *arity == 0 {
                    write!(
                        f,
                        "expected a plain type argument, found constructor `{found}`"
                    )
                } else {
                    write!(
                        f,
                        "expected an arity-{arity} type constructor argument, found `{found}`"
                    )
                }
            }
            TypeError::UnknownCtor(c) => write!(f, "unknown data constructor `{c}`"),
            TypeError::NotAData(t) => write!(f, "cannot match on non-data type `{t}`"),
            TypeError::BadMatch { data, reason } => {
                write!(f, "bad match on `{data}`: {reason}")
            }
            TypeError::Termination(v) => write!(f, "termination: {v}"),
            TypeError::Coherence(e) => write!(f, "coherence: {e}"),
        }
    }
}

fn join(rs: &[RuleType]) -> String {
    rs.iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl std::error::Error for TypeError {}

impl From<ResolveError> for TypeError {
    fn from(e: ResolveError) -> TypeError {
        TypeError::Resolution(e)
    }
}

/// Type equality modulo α-equivalence of rule types.
pub fn types_equal(a: &Type, b: &Type) -> bool {
    alpha::alpha_eq_type(a, b)
}

/// The type checker.
///
/// # Examples
///
/// ```
/// use implicit_core::syntax::{Declarations, Expr, Type};
/// use implicit_core::typeck::Typechecker;
///
/// // implicit {1 : Int} in ?Int + 1  :  Int
/// let decls = Declarations::new();
/// let e = Expr::implicit(
///     vec![(Expr::Int(1), Type::Int.promote())],
///     Expr::binop(implicit_core::syntax::BinOp::Add,
///                 Expr::query_simple(Type::Int), Expr::Int(1)),
///     Type::Int,
/// );
/// let ty = Typechecker::new(&decls).check_closed(&e).unwrap();
/// assert_eq!(ty, Type::Int);
/// ```
pub struct Typechecker<'d> {
    decls: &'d Declarations,
    policy: ResolutionPolicy,
    strict: bool,
    trace: Option<crate::trace::SharedSink>,
}

impl<'d> Typechecker<'d> {
    /// A checker with the paper's default resolution policy.
    pub fn new(decls: &'d Declarations) -> Typechecker<'d> {
        Typechecker {
            decls,
            policy: ResolutionPolicy::paper(),
            strict: false,
            trace: None,
        }
    }

    /// A checker with a custom resolution policy.
    pub fn with_policy(decls: &'d Declarations, policy: ResolutionPolicy) -> Typechecker<'d> {
        Typechecker {
            decls,
            policy,
            strict: false,
            trace: None,
        }
    }

    /// Reports every resolution this checker performs as structured
    /// trace events through `sink` (see [`crate::trace`]).
    pub fn with_trace(mut self, sink: crate::trace::SharedSink) -> Typechecker<'d> {
        self.trace = Some(sink);
        self
    }

    /// Enables *strict mode*, which additionally enforces the static
    /// well-behavedness conditions the paper develops alongside the
    /// core type system:
    ///
    /// * every rule-abstraction context must satisfy the Appendix A
    ///   **termination** conditions (so resolution cannot diverge);
    /// * contexts must pass the companion note's deferred
    ///   **existence** check ([`crate::coherence::exists_deferred`]);
    /// * rule-application sites must not supply **collapsing**
    ///   contexts whose entries a substitution can conflate
    ///   ([`crate::coherence::unique_instances`]), the note's
    ///   condition at `with`;
    /// * queries with free type variables must be **stable**: the
    ///   statically chosen rule must be the runtime choice under every
    ///   instantiation ([`crate::coherence::query_stability`]);
    /// * no resolution step may mix assumed and recursively resolved
    ///   evidence for unifiable premises (the note's condition at
    ///   `?ρ`).
    pub fn strict(mut self) -> Typechecker<'d> {
        self.strict = true;
        self
    }

    /// The active resolution policy.
    pub fn policy(&self) -> &ResolutionPolicy {
        &self.policy
    }

    /// Checks a closed expression under empty environments.
    ///
    /// # Errors
    ///
    /// Returns the first [`TypeError`] encountered.
    pub fn check_closed(&self, e: &Expr) -> Result<Type, TypeError> {
        let mut st = State {
            gamma: Vec::new(),
            delta: ImplicitEnv::new(),
            tyvars: BTreeSet::new(),
            kinds: std::collections::BTreeMap::new(),
        };
        self.check(&mut st, e)
    }

    /// Checks an expression under the given environments.
    ///
    /// `tyvars` lists the type variables in scope (free variables of
    /// Γ/Δ entries are *not* implicitly added).
    ///
    /// # Errors
    ///
    /// Returns the first [`TypeError`] encountered.
    pub fn check_open(
        &self,
        gamma: &[(Symbol, Type)],
        delta: &ImplicitEnv,
        tyvars: &BTreeSet<TyVar>,
        e: &Expr,
    ) -> Result<Type, TypeError> {
        let mut st = State {
            gamma: gamma.to_vec(),
            delta: delta.clone(),
            tyvars: tyvars.clone(),
            kinds: std::collections::BTreeMap::new(),
        };
        self.check(&mut st, e)
    }

    fn check(&self, st: &mut State, e: &Expr) -> Result<Type, TypeError> {
        match e {
            Expr::Int(_) => Ok(Type::Int),
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Str(_) => Ok(Type::Str),
            Expr::Unit => Ok(Type::Unit),
            Expr::Var(x) => st
                .gamma
                .iter()
                .rev()
                .find(|(y, _)| y == x)
                .map(|(_, t)| t.clone())
                .ok_or(TypeError::UnboundVar(*x)),
            Expr::Lam(x, t, body) => {
                self.check_wf(st, t)?;
                st.gamma.push((*x, t.clone()));
                let out = self.check(st, body)?;
                st.gamma.pop();
                Ok(Type::arrow(t.clone(), out))
            }
            Expr::App(fun, arg) => {
                let tf = self.check(st, fun)?;
                let ta = self.check(st, arg)?;
                match tf {
                    Type::Arrow(dom, cod) => {
                        if types_equal(&dom, &ta) {
                            Ok((*cod).clone())
                        } else {
                            Err(TypeError::Mismatch {
                                expected: (*dom).clone(),
                                found: ta,
                                context: "function application".into(),
                            })
                        }
                    }
                    other => Err(TypeError::NotAFunction(other)),
                }
            }
            Expr::Query(rho) => {
                self.check_wf_rule(st, rho)?;
                if !rho.is_unambiguous() {
                    return Err(TypeError::Ambiguous(rho.clone()));
                }
                let res = match &self.trace {
                    Some(sink) => {
                        let mut sink = sink.clone();
                        crate::resolve::resolve_with(&st.delta, rho, &self.policy, &mut sink)?
                    }
                    None => resolve(&st.delta, rho, &self.policy)?,
                };
                if self.strict {
                    crate::coherence::query_stability(&st.delta, rho, &self.policy)
                        .map_err(TypeError::Coherence)?;
                    check_no_mixed_supply(&res)?;
                }
                Ok(rho.to_type())
            }
            Expr::RuleAbs(rho, body) => {
                // TyRule. Binders clashing with ftv(Γ, Δ) or with
                // type variables already in scope are renamed apart.
                let used: BTreeSet<TyVar> = st
                    .tyvars
                    .iter()
                    .copied()
                    .chain(st.gamma.iter().flat_map(|(_, t)| t.ftv()))
                    .chain(st.delta.ftv())
                    .collect();
                let needs_rename = rho.vars().iter().any(|v| used.contains(v));
                let (rho, body) = if needs_rename {
                    let mut sub = TySubst::new();
                    let mut new_vars = Vec::new();
                    for v in rho.vars() {
                        if used.contains(v) {
                            let nv = crate::symbol::fresh(crate::symbol::base_name(*v));
                            sub.bind(*v, Type::Var(nv));
                            new_vars.push(nv);
                        } else {
                            new_vars.push(*v);
                        }
                    }
                    let renamed = RuleType::new(
                        new_vars,
                        sub.apply_context(rho.context()),
                        sub.apply_type(rho.head()),
                    );
                    (renamed, sub.apply_expr(body))
                } else {
                    ((**rho).clone(), (**body).clone())
                };
                if !rho.is_unambiguous() {
                    return Err(TypeError::Ambiguous(rho.clone()));
                }
                self.check_wf_rule_under(st, &rho)?;
                if self.strict {
                    crate::termination::check_context(rho.context())
                        .map_err(TypeError::Termination)?;
                    crate::coherence::exists_deferred(rho.context())
                        .map_err(TypeError::Coherence)?;
                }
                let binder_kinds = infer_binder_kinds(self.decls, &rho)?;
                for v in rho.vars() {
                    st.tyvars.insert(*v);
                    st.kinds
                        .insert(*v, binder_kinds.get(v).copied().unwrap_or(0));
                }
                st.delta.push(rho.context().to_vec());
                let got = self.check(st, &body);
                st.delta.pop();
                for v in rho.vars() {
                    st.tyvars.remove(v);
                    st.kinds.remove(v);
                }
                let got = got?;
                if !types_equal(&got, rho.head()) {
                    return Err(TypeError::Mismatch {
                        expected: rho.head().clone(),
                        found: got,
                        context: "rule abstraction body".into(),
                    });
                }
                Ok(rho.to_type())
            }
            Expr::TyApp(fun, args) => {
                let tf = self.check(st, fun)?;
                let Type::Rule(rho) = tf else {
                    return Err(TypeError::NotARule(tf));
                };
                if rho.vars().len() != args.len() {
                    return Err(TypeError::ArityMismatch {
                        what: format!("type application of `{rho}`"),
                        expected: rho.vars().len(),
                        found: args.len(),
                    });
                }
                // Kind-directed argument checking: arrow-kinded
                // quantifiers take constructor arguments.
                let kinds = infer_binder_kinds(self.decls, &rho)?;
                let mut fixed = Vec::with_capacity(args.len());
                for (v, arg) in rho.vars().iter().zip(args) {
                    let k = kinds.get(v).copied().unwrap_or(0);
                    fixed.push(self.check_type_argument(st, arg, k)?);
                }
                let theta = TySubst::bind_all(rho.vars(), &fixed);
                Ok(Type::rule(RuleType::new(
                    Vec::new(),
                    theta.apply_context(rho.context()),
                    theta.apply_type(rho.head()),
                )))
            }
            Expr::RuleApp(fun, args) => {
                let tf = self.check(st, fun)?;
                let Type::Rule(rho) = tf else {
                    return Err(TypeError::NotARule(tf));
                };
                if !rho.vars().is_empty() {
                    return Err(TypeError::PolymorphicRuleApplication((*rho).clone()));
                }
                if self.strict {
                    // The note's condition at `with`: the pushed rule
                    // set must have unique instances (a substitution
                    // must not be able to conflate two entries — the
                    // `g` counterexample).
                    crate::coherence::unique_instances(rho.context())
                        .map_err(TypeError::Coherence)?;
                }
                // Each argument must check at its annotated rule type.
                for (arg, arho) in args {
                    self.check_wf_rule(st, arho)?;
                    let got = self.check(st, arg)?;
                    let want = arho.to_type();
                    if !types_equal(&got, &want) {
                        return Err(TypeError::Mismatch {
                            expected: want,
                            found: got,
                            context: "rule application argument".into(),
                        });
                    }
                }
                // The annotated set must equal the context exactly
                // (modulo α-equivalence), with one argument per
                // context entry.
                let supplied: Vec<RuleType> = args.iter().map(|(_, r)| r.clone()).collect();
                if supplied.len() != rho.context().len()
                    || !context_sets_equal(rho.context(), &supplied)
                {
                    return Err(TypeError::ContextMismatch {
                        expected: rho.context().to_vec(),
                        supplied,
                    });
                }
                Ok(rho.head().clone())
            }
            Expr::If(c, t, f) => {
                let tc = self.check(st, c)?;
                if !types_equal(&tc, &Type::Bool) {
                    return Err(TypeError::Mismatch {
                        expected: Type::Bool,
                        found: tc,
                        context: "if condition".into(),
                    });
                }
                let tt = self.check(st, t)?;
                let tf = self.check(st, f)?;
                if !types_equal(&tt, &tf) {
                    return Err(TypeError::Mismatch {
                        expected: tt,
                        found: tf,
                        context: "if branches".into(),
                    });
                }
                Ok(tt)
            }
            Expr::BinOp(op, a, b) => {
                let ta = self.check(st, a)?;
                let tb = self.check(st, b)?;
                self.check_binop(*op, ta, tb)
            }
            Expr::UnOp(op, a) => {
                let ta = self.check(st, a)?;
                let (dom, cod) = match op {
                    UnOp::Not => (Type::Bool, Type::Bool),
                    UnOp::Neg => (Type::Int, Type::Int),
                    UnOp::IntToStr => (Type::Int, Type::Str),
                };
                if types_equal(&ta, &dom) {
                    Ok(cod)
                } else {
                    Err(TypeError::Mismatch {
                        expected: dom,
                        found: ta,
                        context: format!("operand of {op:?}"),
                    })
                }
            }
            Expr::Pair(a, b) => Ok(Type::prod(self.check(st, a)?, self.check(st, b)?)),
            Expr::Fst(a) => match self.check(st, a)? {
                Type::Prod(l, _) => Ok((*l).clone()),
                other => Err(TypeError::NotAPair(other)),
            },
            Expr::Snd(a) => match self.check(st, a)? {
                Type::Prod(_, r) => Ok((*r).clone()),
                other => Err(TypeError::NotAPair(other)),
            },
            Expr::Nil(t) => {
                self.check_wf(st, t)?;
                Ok(Type::list(t.clone()))
            }
            Expr::Cons(h, t) => {
                let th = self.check(st, h)?;
                let tt = self.check(st, t)?;
                match &tt {
                    Type::List(el) if types_equal(el, &th) => Ok(tt.clone()),
                    Type::List(el) => Err(TypeError::Mismatch {
                        expected: (**el).clone(),
                        found: th,
                        context: "cons head".into(),
                    }),
                    _ => Err(TypeError::NotAList(tt)),
                }
            }
            Expr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => {
                let ts = self.check(st, scrut)?;
                let Type::List(el) = ts else {
                    return Err(TypeError::NotAList(ts));
                };
                let tn = self.check(st, nil)?;
                st.gamma.push((*head, (*el).clone()));
                st.gamma.push((*tail, Type::List(el)));
                let tc = self.check(st, cons);
                st.gamma.pop();
                st.gamma.pop();
                let tc = tc?;
                if !types_equal(&tn, &tc) {
                    return Err(TypeError::Mismatch {
                        expected: tn,
                        found: tc,
                        context: "case branches".into(),
                    });
                }
                Ok(tn)
            }
            Expr::Fix(x, t, body) => {
                self.check_wf(st, t)?;
                // Value recursion is safe at function types and at
                // rule types (both evaluate to closures).
                if !matches!(t, Type::Arrow(_, _) | Type::Rule(_)) {
                    return Err(TypeError::FixNotFunction(t.clone()));
                }
                st.gamma.push((*x, t.clone()));
                let tb = self.check(st, body);
                st.gamma.pop();
                let tb = tb?;
                if !types_equal(&tb, t) {
                    return Err(TypeError::Mismatch {
                        expected: t.clone(),
                        found: tb,
                        context: "fix body".into(),
                    });
                }
                Ok(t.clone())
            }
            Expr::Make(name, args, fields) => {
                let decl = self
                    .decls
                    .lookup(*name)
                    .ok_or(TypeError::UnknownInterface(*name))?;
                if decl.vars.len() != args.len() {
                    return Err(TypeError::ArityMismatch {
                        what: format!("interface `{name}`"),
                        expected: decl.vars.len(),
                        found: args.len(),
                    });
                }
                for t in args {
                    self.check_wf(st, t)?;
                }
                if fields.len() != decl.fields.len() {
                    return Err(TypeError::BadRecordLiteral {
                        interface: *name,
                        reason: format!(
                            "expected {} field(s), found {}",
                            decl.fields.len(),
                            fields.len()
                        ),
                    });
                }
                for (u, fe) in fields {
                    let Some(want) = decl.field_type(*u, args) else {
                        return Err(TypeError::UnknownField {
                            interface: *name,
                            field: *u,
                        });
                    };
                    let got = self.check(st, fe)?;
                    if !types_equal(&got, &want) {
                        return Err(TypeError::Mismatch {
                            expected: want,
                            found: got,
                            context: format!("field `{u}` of `{name}`"),
                        });
                    }
                }
                Ok(Type::Con(*name, args.clone()))
            }
            Expr::Proj(rec, field) => {
                let tr = self.check(st, rec)?;
                let Type::Con(name, args) = tr else {
                    return Err(TypeError::NotARecord(tr));
                };
                let decl = self
                    .decls
                    .lookup(name)
                    .ok_or(TypeError::UnknownInterface(name))?;
                decl.field_type(*field, &args)
                    .ok_or(TypeError::UnknownField {
                        interface: name,
                        field: *field,
                    })
            }
            Expr::Inject(ctor, targs, args) => self.check_inject(st, *ctor, targs, args),
            Expr::Match(scrut, arms) => self.check_match(st, scrut, arms),
        }
    }

    /// `Expr::Inject` checking, out of line to keep the recursive
    /// checker's stack frames small.
    #[inline(never)]
    fn check_inject(
        &self,
        st: &mut State,
        ctor: Symbol,
        targs: &[Type],
        args: &[Expr],
    ) -> Result<Type, TypeError> {
        let (data, _) = self
            .decls
            .lookup_ctor(ctor)
            .ok_or(TypeError::UnknownCtor(ctor))?;
        let data = data.clone();
        if data.params.len() != targs.len() {
            return Err(TypeError::ArityMismatch {
                what: format!("data type `{}`", data.name),
                expected: data.params.len(),
                found: targs.len(),
            });
        }
        // Kind-check (and coerce) the type arguments.
        let mut fixed = Vec::with_capacity(targs.len());
        for ((_, k), t) in data.params.iter().zip(targs) {
            if *k == 0 {
                self.check_wf(st, t)?;
                fixed.push(t.clone());
            } else {
                self.check_wf_at_kind(st, t, *k)?;
                fixed.push(match t {
                    Type::Con(n, a) if a.is_empty() => Type::Ctor(crate::syntax::TyCon::Named(*n)),
                    other => other.clone(),
                });
            }
        }
        let want = data
            .ctor_arg_types(ctor, &fixed)
            .expect("ctor just looked up");
        if want.len() != args.len() {
            return Err(TypeError::ArityMismatch {
                what: format!("constructor `{ctor}`"),
                expected: want.len(),
                found: args.len(),
            });
        }
        for (w, a) in want.iter().zip(args) {
            let got = self.check(st, a)?;
            if !types_equal(&got, w) {
                return Err(TypeError::Mismatch {
                    expected: w.clone(),
                    found: got,
                    context: format!("argument of constructor `{ctor}`"),
                });
            }
        }
        Ok(Type::Con(data.name, fixed))
    }

    /// `Expr::Match` checking, out of line to keep the recursive
    /// checker's stack frames small.
    #[inline(never)]
    fn check_match(
        &self,
        st: &mut State,
        scrut: &Expr,
        arms: &[crate::syntax::MatchArm],
    ) -> Result<Type, TypeError> {
        let ts = self.check(st, scrut)?;
        let Type::Con(name, targs) = &ts else {
            return Err(TypeError::NotAData(ts));
        };
        let Some(data) = self.decls.lookup_data(*name).cloned() else {
            return Err(TypeError::NotAData(ts.clone()));
        };
        // Arms must cover the constructors exactly, each once.
        let mut remaining: Vec<Symbol> = data.ctors.iter().map(|(c, _)| *c).collect();
        let mut result: Option<Type> = None;
        for arm in arms {
            let Some(pos) = remaining.iter().position(|c| *c == arm.ctor) else {
                return Err(TypeError::BadMatch {
                    data: *name,
                    reason: format!(
                        "constructor `{}` is not a (remaining) constructor",
                        arm.ctor
                    ),
                });
            };
            remaining.remove(pos);
            let want = data
                .ctor_arg_types(arm.ctor, targs)
                .expect("arm ctor exists");
            if want.len() != arm.binders.len() {
                return Err(TypeError::BadMatch {
                    data: *name,
                    reason: format!(
                        "constructor `{}` has {} argument(s), {} binder(s) given",
                        arm.ctor,
                        want.len(),
                        arm.binders.len()
                    ),
                });
            }
            for (b, w) in arm.binders.iter().zip(&want) {
                st.gamma.push((*b, w.clone()));
            }
            let got = self.check(st, &arm.body);
            for _ in &arm.binders {
                st.gamma.pop();
            }
            let got = got?;
            match &result {
                None => result = Some(got),
                Some(prev) if types_equal(prev, &got) => {}
                Some(prev) => {
                    return Err(TypeError::Mismatch {
                        expected: prev.clone(),
                        found: got,
                        context: "match arms".into(),
                    })
                }
            }
        }
        if !remaining.is_empty() {
            return Err(TypeError::BadMatch {
                data: *name,
                reason: format!(
                    "non-exhaustive match; missing {}",
                    remaining
                        .iter()
                        .map(|c| format!("`{c}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        result.ok_or(TypeError::BadMatch {
            data: *name,
            reason: "empty match".into(),
        })
    }

    fn check_binop(&self, op: BinOp, ta: Type, tb: Type) -> Result<Type, TypeError> {
        use BinOp::*;
        let err = |expected: Type, found: Type| TypeError::Mismatch {
            expected,
            found,
            context: format!("operand of `{}`", op.symbol()),
        };
        match op {
            Add | Sub | Mul | Div | Mod => {
                if !types_equal(&ta, &Type::Int) {
                    return Err(err(Type::Int, ta));
                }
                if !types_equal(&tb, &Type::Int) {
                    return Err(err(Type::Int, tb));
                }
                Ok(Type::Int)
            }
            Lt | Le => {
                if !types_equal(&ta, &Type::Int) {
                    return Err(err(Type::Int, ta));
                }
                if !types_equal(&tb, &Type::Int) {
                    return Err(err(Type::Int, tb));
                }
                Ok(Type::Bool)
            }
            And | Or => {
                if !types_equal(&ta, &Type::Bool) {
                    return Err(err(Type::Bool, ta));
                }
                if !types_equal(&tb, &Type::Bool) {
                    return Err(err(Type::Bool, tb));
                }
                Ok(Type::Bool)
            }
            Concat => {
                if !types_equal(&ta, &Type::Str) {
                    return Err(err(Type::Str, ta));
                }
                if !types_equal(&tb, &Type::Str) {
                    return Err(err(Type::Str, tb));
                }
                Ok(Type::Str)
            }
            Eq => {
                let base = matches!(ta, Type::Int | Type::Bool | Type::Str);
                if !base {
                    return Err(TypeError::Mismatch {
                        expected: Type::Int,
                        found: ta,
                        context: "`==` requires a base type (Int, Bool or String)".into(),
                    });
                }
                if !types_equal(&ta, &tb) {
                    return Err(err(ta, tb));
                }
                Ok(Type::Bool)
            }
        }
    }

    /// Checks (and possibly coerces) one type argument of a type
    /// application against the quantifier's kind `k`: plain types for
    /// `k = 0`, constructor references for `k > 0` (a bare interface
    /// name `I` is coerced from `Con(I, [])` to a constructor).
    fn check_type_argument(&self, st: &State, arg: &Type, k: usize) -> Result<Type, TypeError> {
        use crate::syntax::TyCon;
        if k == 0 {
            if matches!(arg, Type::Ctor(_)) {
                return Err(TypeError::NotAConstructor {
                    found: arg.clone(),
                    arity: 0,
                });
            }
            self.check_wf(st, arg)?;
            return Ok(arg.clone());
        }
        match arg {
            Type::Ctor(c) => {
                let arity = c
                    .arity(self.decls)
                    .ok_or(TypeError::UnknownInterface(match c {
                        TyCon::Named(n) => *n,
                        TyCon::List => Symbol::intern("List"),
                    }))?;
                if arity != k {
                    return Err(TypeError::ArityMismatch {
                        what: format!("constructor `{c}`"),
                        expected: k,
                        found: arity,
                    });
                }
                Ok(arg.clone())
            }
            // Bare constructor name parsed as a nullary application.
            Type::Con(n, a) if a.is_empty() => {
                let arity = self
                    .decls
                    .con_arity(*n)
                    .ok_or(TypeError::UnknownInterface(*n))?;
                if arity != k {
                    return Err(TypeError::ArityMismatch {
                        what: format!("constructor `{n}`"),
                        expected: k,
                        found: arity,
                    });
                }
                Ok(Type::Ctor(TyCon::Named(*n)))
            }
            // An in-scope arrow-kinded variable.
            Type::Var(g) => {
                if !st.tyvars.contains(g) {
                    return Err(TypeError::UnboundTypeVar(*g));
                }
                match st.kinds.get(g) {
                    Some(kg) if *kg == k => Ok(arg.clone()),
                    other => Err(TypeError::KindMismatch {
                        var: *g,
                        first: other.copied().unwrap_or(0),
                        second: k,
                    }),
                }
            }
            other => Err(TypeError::NotAConstructor {
                found: other.clone(),
                arity: k,
            }),
        }
    }

    /// Well-formedness: type variables in scope, interfaces declared
    /// with correct arity.
    fn check_wf(&self, st: &State, ty: &Type) -> Result<(), TypeError> {
        match ty {
            Type::Var(a) => {
                if !st.tyvars.contains(a) {
                    return Err(TypeError::UnboundTypeVar(*a));
                }
                match st.kinds.get(a) {
                    Some(k) if *k > 0 => Err(TypeError::KindMismatch {
                        var: *a,
                        first: *k,
                        second: 0,
                    }),
                    _ => Ok(()),
                }
            }
            Type::Int | Type::Bool | Type::Str | Type::Unit => Ok(()),
            Type::Arrow(a, b) | Type::Prod(a, b) => {
                self.check_wf(st, a)?;
                self.check_wf(st, b)
            }
            Type::List(a) => self.check_wf(st, a),
            Type::Con(name, args) => {
                let param_kinds = self
                    .decls
                    .con_param_kinds(*name)
                    .ok_or(TypeError::UnknownInterface(*name))?;
                if param_kinds.len() != args.len() {
                    return Err(TypeError::ArityMismatch {
                        what: format!("type `{name}`"),
                        expected: param_kinds.len(),
                        found: args.len(),
                    });
                }
                for (k, t) in param_kinds.iter().zip(args) {
                    self.check_wf_at_kind(st, t, *k)?;
                }
                Ok(())
            }
            Type::VarApp(f, args) => {
                if !st.tyvars.contains(f) {
                    return Err(TypeError::UnboundTypeVar(*f));
                }
                match st.kinds.get(f) {
                    Some(k) if *k == args.len() => {}
                    Some(k) => {
                        return Err(TypeError::KindMismatch {
                            var: *f,
                            first: *k,
                            second: args.len(),
                        })
                    }
                    None => {
                        return Err(TypeError::KindMismatch {
                            var: *f,
                            first: 0,
                            second: args.len(),
                        })
                    }
                }
                args.iter().try_for_each(|t| self.check_wf(st, t))
            }
            Type::Ctor(c) => Err(TypeError::CtorInTypePosition(*c)),
            Type::Rule(r) => self.check_wf_rule(st, r),
        }
    }

    fn check_wf_rule(&self, st: &State, rho: &RuleType) -> Result<(), TypeError> {
        self.check_wf_rule_under(st, rho)
    }

    /// Well-formedness at a given kind: `k = 0` means a plain type;
    /// `k > 0` demands a constructor of that arity (a `Ctor`
    /// reference, a bare nullary `Con` naming an arity-`k`
    /// constructor, or an in-scope arrow-kinded variable).
    fn check_wf_at_kind(&self, st: &State, ty: &Type, k: usize) -> Result<(), TypeError> {
        use crate::syntax::TyCon;
        if k == 0 {
            return self.check_wf(st, ty);
        }
        match ty {
            Type::Ctor(c) => {
                let arity = c
                    .arity(self.decls)
                    .ok_or(TypeError::UnknownInterface(match c {
                        TyCon::Named(n) => *n,
                        TyCon::List => Symbol::intern("List"),
                    }))?;
                if arity != k {
                    return Err(TypeError::ArityMismatch {
                        what: format!("constructor `{c}`"),
                        expected: k,
                        found: arity,
                    });
                }
                Ok(())
            }
            Type::Con(n, args) if args.is_empty() => {
                let arity = self
                    .decls
                    .con_arity(*n)
                    .ok_or(TypeError::UnknownInterface(*n))?;
                if arity != k {
                    return Err(TypeError::ArityMismatch {
                        what: format!("constructor `{n}`"),
                        expected: k,
                        found: arity,
                    });
                }
                Ok(())
            }
            Type::Var(g) => {
                if !st.tyvars.contains(g) {
                    return Err(TypeError::UnboundTypeVar(*g));
                }
                match st.kinds.get(g) {
                    Some(kg) if *kg == k => Ok(()),
                    other => Err(TypeError::KindMismatch {
                        var: *g,
                        first: other.copied().unwrap_or(0),
                        second: k,
                    }),
                }
            }
            other => Err(TypeError::NotAConstructor {
                found: other.clone(),
                arity: k,
            }),
        }
    }

    fn check_wf_rule_under(&self, st: &State, rho: &RuleType) -> Result<(), TypeError> {
        let mut inner = st.clone_tyvars();
        let kinds = infer_binder_kinds(self.decls, rho)?;
        for v in rho.vars() {
            inner.tyvars.insert(*v);
            inner.kinds.insert(*v, kinds.get(v).copied().unwrap_or(0));
        }
        for r in rho.context() {
            self.check_wf_rule_under(&inner, r)?;
        }
        self.check_wf(&inner, rho.head())
    }
}

/// The note's condition at `?ρ`: within one resolution step, a
/// recursively *derived* premise must not be unifiable with an
/// *assumed* one — evidence for related premises supplied "by
/// different means" is incoherent (the note's
/// `∀ρ₁∈π₁, ρ₂∈π₂. θρ₂ ⋡ ρ₁` condition).
fn check_no_mixed_supply(res: &crate::resolve::Resolution) -> Result<(), TypeError> {
    use crate::resolve::Premise;
    for p in &res.premises {
        if let Premise::Derived(inner) = p {
            for q in &res.premises {
                if let Premise::Assumed { rho, .. } = q {
                    if crate::coherence::common_instance(&inner.query, rho).is_some() {
                        return Err(TypeError::Coherence(
                            crate::coherence::CoherenceError::OverlappingInstances {
                                left: inner.query.clone(),
                                right: rho.clone(),
                                witness: crate::coherence::common_instance(&inner.query, rho)
                                    .expect("checked"),
                            },
                        ));
                    }
                }
            }
            check_no_mixed_supply(inner)?;
        }
    }
    Ok(())
}

/// Set equality of contexts modulo α-equivalence (each side covered).
fn context_sets_equal(a: &[RuleType], b: &[RuleType]) -> bool {
    let mut ka: Vec<String> = a.iter().map(alpha::canonical_key).collect();
    let mut kb: Vec<String> = b.iter().map(alpha::canonical_key).collect();
    ka.sort();
    ka.dedup();
    kb.sort();
    kb.dedup();
    ka == kb
}

struct State {
    gamma: Vec<(Symbol, Type)>,
    delta: ImplicitEnv,
    tyvars: BTreeSet<TyVar>,
    /// Arities of in-scope type variables (absent = kind `*`).
    kinds: std::collections::BTreeMap<TyVar, usize>,
}

impl State {
    fn clone_tyvars(&self) -> State {
        State {
            gamma: Vec::new(),
            delta: ImplicitEnv::new(),
            tyvars: self.tyvars.clone(),
            kinds: self.kinds.clone(),
        }
    }
}

/// Infers the kind (arity) of each quantified variable of `rho` from
/// its occurrences: a bare occurrence in type position has arity 0, a
/// head occurrence `f τ̄` has arity `|τ̄|`, and an occurrence as the
/// argument of a declared constructor inherits the corresponding
/// parameter's declared kind. Conflicting usages are a kind error.
pub fn infer_binder_kinds(
    decls: &Declarations,
    rho: &RuleType,
) -> Result<std::collections::BTreeMap<TyVar, usize>, TypeError> {
    fn record(
        v: TyVar,
        k: usize,
        out: &mut std::collections::BTreeMap<TyVar, usize>,
    ) -> Result<(), TypeError> {
        match out.insert(v, k) {
            Some(prev) if prev != k => Err(TypeError::KindMismatch {
                var: v,
                first: prev,
                second: k,
            }),
            _ => Ok(()),
        }
    }
    fn scan_at_kind(
        decls: &Declarations,
        t: &Type,
        k: usize,
        interest: &BTreeSet<TyVar>,
        out: &mut std::collections::BTreeMap<TyVar, usize>,
    ) -> Result<(), TypeError> {
        match t {
            Type::Var(a) if interest.contains(a) => record(*a, k, out),
            _ if k == 0 => scan_type(decls, t, interest, out),
            // Constructor-kind arguments contain no further kind
            // information worth scanning.
            _ => Ok(()),
        }
    }
    fn scan_type(
        decls: &Declarations,
        t: &Type,
        interest: &BTreeSet<TyVar>,
        out: &mut std::collections::BTreeMap<TyVar, usize>,
    ) -> Result<(), TypeError> {
        match t {
            Type::Var(a) => {
                if interest.contains(a) {
                    record(*a, 0, out)?;
                }
                Ok(())
            }
            Type::Int | Type::Bool | Type::Str | Type::Unit | Type::Ctor(_) => Ok(()),
            Type::Arrow(a, b) | Type::Prod(a, b) => {
                scan_type(decls, a, interest, out)?;
                scan_type(decls, b, interest, out)
            }
            Type::List(a) => scan_type(decls, a, interest, out),
            Type::Con(n, args) => {
                let kinds = decls
                    .con_param_kinds(*n)
                    .unwrap_or_else(|| vec![0; args.len()]);
                for (i, a) in args.iter().enumerate() {
                    let k = kinds.get(i).copied().unwrap_or(0);
                    scan_at_kind(decls, a, k, interest, out)?;
                }
                Ok(())
            }
            Type::VarApp(f, args) => {
                if interest.contains(f) {
                    record(*f, args.len(), out)?;
                }
                args.iter()
                    .try_for_each(|a| scan_type(decls, a, interest, out))
            }
            Type::Rule(r) => scan_rule(decls, r, interest, out),
        }
    }
    fn scan_rule(
        decls: &Declarations,
        r: &RuleType,
        interest: &BTreeSet<TyVar>,
        out: &mut std::collections::BTreeMap<TyVar, usize>,
    ) -> Result<(), TypeError> {
        // Nested binders shadow.
        let mut inner: BTreeSet<TyVar> = interest.clone();
        for v in r.vars() {
            inner.remove(v);
        }
        for c in r.context() {
            scan_rule(decls, c, &inner, out)?;
        }
        scan_type(decls, r.head(), &inner, out)
    }
    let interest: BTreeSet<TyVar> = rho.vars().iter().copied().collect();
    let mut out = std::collections::BTreeMap::new();
    for c in rho.context() {
        scan_rule(decls, c, &interest, &mut out)?;
    }
    scan_type(decls, rho.head(), &interest, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    fn check(e: &Expr) -> Result<Type, TypeError> {
        let decls = Declarations::new();
        Typechecker::new(&decls).check_closed(e)
    }

    fn int_query_plus_one() -> Expr {
        Expr::binop(BinOp::Add, Expr::query_simple(Type::Int), Expr::Int(1))
    }

    #[test]
    fn paper_example_e1_types() {
        // implicit {1:Int, true:Bool} in (?Int + 1, ¬?Bool)
        let body = Expr::pair(
            int_query_plus_one(),
            Expr::UnOp(UnOp::Not, Expr::query_simple(Type::Bool).into()),
        );
        let e = Expr::implicit(
            vec![
                (Expr::Int(1), Type::Int.promote()),
                (Expr::Bool(true), Type::Bool.promote()),
            ],
            body,
            Type::prod(Type::Int, Type::Bool),
        );
        assert_eq!(check(&e).unwrap(), Type::prod(Type::Int, Type::Bool));
    }

    #[test]
    fn unresolved_query_fails() {
        let e = Expr::query_simple(Type::Int);
        assert!(matches!(check(&e), Err(TypeError::Resolution(_))));
    }

    #[test]
    fn ambiguous_rule_types_rejected_at_query_and_abstraction() {
        // ∀a. {a} ⇒ Int
        let bad = RuleType::new(vec![v("a")], vec![tv("a").promote()], Type::Int);
        assert!(matches!(
            check(&Expr::Query(bad.clone())),
            Err(TypeError::Ambiguous(_))
        ));
        let abs = Expr::rule_abs(bad, Expr::Int(1));
        assert!(matches!(check(&abs), Err(TypeError::Ambiguous(_))));
    }

    #[test]
    fn rule_abstraction_and_instantiation() {
        // rule(∀a.{a} ⇒ a×a)((?a, ?a)) [Int] with {3 : Int}  :  Int×Int
        let rho = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let body = Expr::pair(Expr::query_simple(tv("a")), Expr::query_simple(tv("a")));
        let abs = Expr::rule_abs(rho, body);
        let inst = Expr::TyApp(abs.into(), vec![Type::Int]);
        let app = Expr::with(inst, vec![(Expr::Int(3), Type::Int.promote())]);
        assert_eq!(check(&app).unwrap(), Type::prod(Type::Int, Type::Int));
    }

    #[test]
    fn tyapp_arity_is_checked() {
        let rho = RuleType::new(vec![v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let abs = Expr::rule_abs(rho, Expr::lam("x", tv("a"), Expr::var("x")));
        let inst = Expr::TyApp(abs.into(), vec![Type::Int, Type::Bool]);
        assert!(matches!(check(&inst), Err(TypeError::ArityMismatch { .. })));
    }

    #[test]
    fn rule_application_must_cover_context() {
        // rule({Int,Bool} ⇒ Int)(?Int) with {1 : Int}  — Bool missing.
        let rho = RuleType::mono(vec![Type::Int.promote(), Type::Bool.promote()], Type::Int);
        let abs = Expr::rule_abs(rho, Expr::query_simple(Type::Int));
        let app = Expr::with(abs, vec![(Expr::Int(1), Type::Int.promote())]);
        assert!(matches!(
            check(&app),
            Err(TypeError::ContextMismatch { .. })
        ));
    }

    #[test]
    fn rule_application_to_polymorphic_rule_rejected() {
        let rho = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let abs = Expr::rule_abs(
            rho,
            Expr::pair(Expr::query_simple(tv("a")), Expr::query_simple(tv("a"))),
        );
        let app = Expr::with(abs, vec![(Expr::Int(3), Type::Int.promote())]);
        assert!(matches!(
            check(&app),
            Err(TypeError::PolymorphicRuleApplication(_))
        ));
    }

    #[test]
    fn nested_scoping_types_e6() {
        // implicit {1} in implicit {true, rule({Bool}⇒Int)(…)} in ?Int
        let inner_rule_ty = RuleType::mono(vec![Type::Bool.promote()], Type::Int);
        let inner_rule = Expr::rule_abs(
            inner_rule_ty.clone(),
            Expr::if_(Expr::query_simple(Type::Bool), Expr::Int(2), Expr::Int(0)),
        );
        let inner = Expr::implicit(
            vec![
                (Expr::Bool(true), Type::Bool.promote()),
                (inner_rule, inner_rule_ty),
            ],
            Expr::query_simple(Type::Int),
            Type::Int,
        );
        let e = Expr::implicit(vec![(Expr::Int(1), Type::Int.promote())], inner, Type::Int);
        assert_eq!(check(&e).unwrap(), Type::Int);
    }

    #[test]
    fn unbound_type_variables_rejected() {
        let e = Expr::lam("x", tv("ghost"), Expr::var("x"));
        assert!(matches!(check(&e), Err(TypeError::UnboundTypeVar(_))));
    }

    #[test]
    fn unbound_term_variables_rejected() {
        assert!(matches!(
            check(&Expr::var("nope")),
            Err(TypeError::UnboundVar(_))
        ));
    }

    #[test]
    fn shadowing_rule_binders_are_renamed_apart() {
        // rule(∀a.{a}⇒a×a)( … rule(∀a.{a}⇒a×a)(…) … ): the inner `a`
        // must not clash with the outer one.
        let rho = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let inner = Expr::rule_abs(
            rho.clone(),
            Expr::pair(Expr::query_simple(tv("a")), Expr::query_simple(tv("a"))),
        );
        // Outer body must produce a×a; use the inner rule applied.
        let outer_body = Expr::with(
            Expr::TyApp(inner.into(), vec![tv("a")]),
            vec![(Expr::query_simple(tv("a")), tv("a").promote())],
        );
        let outer = Expr::rule_abs(rho, outer_body);
        assert!(check(&outer).is_ok());
    }

    #[test]
    fn fix_requires_function_type() {
        let e = Expr::Fix(v("x"), Type::Int, Expr::Int(1).into());
        assert!(matches!(check(&e), Err(TypeError::FixNotFunction(_))));
        let ok = Expr::Fix(
            v("f"),
            Type::arrow(Type::Int, Type::Int),
            Expr::lam("n", Type::Int, Expr::app(Expr::var("f"), Expr::var("n"))).into(),
        );
        assert_eq!(check(&ok).unwrap(), Type::arrow(Type::Int, Type::Int));
    }

    #[test]
    fn list_case_types() {
        let e = Expr::ListCase {
            scrut: Expr::list(Type::Int, vec![Expr::Int(1)]).into(),
            nil: Expr::Int(0).into(),
            head: v("h"),
            tail: v("t"),
            cons: Expr::var("h").into(),
        };
        assert_eq!(check(&e).unwrap(), Type::Int);
    }

    #[test]
    fn record_literals_and_projection() {
        let mut decls = Declarations::new();
        decls
            .declare(crate::syntax::InterfaceDecl {
                name: v("Eq"),
                vars: vec![v("a")],
                fields: vec![(
                    v("eq"),
                    Type::arrow(tv("a"), Type::arrow(tv("a"), Type::Bool)),
                )],
            })
            .unwrap();
        let tc = Typechecker::new(&decls);
        let lit = Expr::Make(
            v("Eq"),
            vec![Type::Int],
            vec![(
                v("eq"),
                Expr::lam(
                    "x",
                    Type::Int,
                    Expr::lam(
                        "y",
                        Type::Int,
                        Expr::binop(BinOp::Eq, Expr::var("x"), Expr::var("y")),
                    ),
                ),
            )],
        );
        assert_eq!(
            tc.check_closed(&lit).unwrap(),
            Type::Con(v("Eq"), vec![Type::Int])
        );
        let proj = Expr::Proj(lit.into(), v("eq"));
        assert_eq!(
            tc.check_closed(&proj).unwrap(),
            Type::arrow(Type::Int, Type::arrow(Type::Int, Type::Bool))
        );
    }

    #[test]
    fn higher_order_query_types_e16_shape() {
        // ?({Int} ⇒ Int) against f : {Int,Bool} ⇒ Int and Bool — the
        // partial resolution case.
        let f_ty = RuleType::mono(vec![Type::Int.promote(), Type::Bool.promote()], Type::Int);
        let f = Expr::rule_abs(f_ty.clone(), Expr::query_simple(Type::Int));
        let query_ty = RuleType::mono(vec![Type::Int.promote()], Type::Int);
        let e = Expr::implicit(
            vec![(f, f_ty), (Expr::Bool(true), Type::Bool.promote())],
            Expr::Query(query_ty.clone()),
            query_ty.to_type(),
        );
        assert!(matches!(check(&e).unwrap(), Type::Rule(_)));
    }

    #[test]
    fn strict_mode_rejects_nonterminating_contexts() {
        // rule({{String}⇒Int, {Int}⇒String, String} ⇒ Int)(…): the
        // context embeds the Appendix A loop.
        let looping = RuleType::mono(
            vec![
                RuleType::mono(vec![Type::Str.promote()], Type::Int),
                RuleType::mono(vec![Type::Int.promote()], Type::Str),
                Type::Str.promote(),
            ],
            Type::prod(Type::prod(Type::Int, Type::Int), Type::Int),
        );
        let e = Expr::rule_abs(
            looping,
            Expr::pair(
                Expr::pair(Expr::query_simple(Type::Int), Expr::Int(0)),
                Expr::Int(0),
            ),
        );
        let decls = Declarations::new();
        // Lenient mode accepts the definition (resolution inside is
        // cut by fuel only if actually queried to a loop)…
        // …but strict mode rejects the context outright.
        let err = Typechecker::new(&decls)
            .strict()
            .check_closed(&e)
            .unwrap_err();
        assert!(matches!(err, TypeError::Termination(_)), "got {err:?}");
    }

    #[test]
    fn strict_mode_accepts_the_pair_rule_shapes() {
        // The note's f: ∀a b. {a, b} ⇒ a × b must be *accepted* at
        // its definition (deferred checking).
        let f_ty = RuleType::new(
            vec![v("a"), v("b")],
            vec![tv("a").promote(), tv("b").promote()],
            Type::prod(tv("a"), tv("b")),
        );
        let f = Expr::rule_abs(
            f_ty,
            Expr::pair(Expr::query_simple(tv("a")), Expr::query_simple(tv("b"))),
        );
        // Used safely at distinct instances:
        let app = Expr::with(
            Expr::TyApp(f.into(), vec![Type::Int, Type::Bool]),
            vec![
                (Expr::Int(1), Type::Int.promote()),
                (Expr::Bool(true), Type::Bool.promote()),
            ],
        );
        let decls = Declarations::new();
        assert_eq!(
            Typechecker::new(&decls)
                .strict()
                .check_closed(&app)
                .unwrap(),
            Type::prod(Type::Int, Type::Bool)
        );
    }

    #[test]
    fn strict_mode_rejects_collapsing_with_contexts() {
        // The note's g: supplying {?a : a, 3 : Int} where a could be
        // instantiated to Int — unique_instances fails at `with`.
        let f_ty = RuleType::new(
            vec![v("a"), v("b")],
            vec![tv("a").promote(), tv("b").promote()],
            Type::prod(tv("a"), tv("b")),
        );
        let f = Expr::rule_abs(
            f_ty,
            Expr::pair(Expr::query_simple(tv("a")), Expr::query_simple(tv("b"))),
        );
        let g_ty = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), Type::Int),
        );
        let g_body = Expr::with(
            Expr::TyApp(f.into(), vec![tv("a"), Type::Int]),
            vec![
                (Expr::query_simple(tv("a")), tv("a").promote()),
                (Expr::Int(3), Type::Int.promote()),
            ],
        );
        let g = Expr::rule_abs(g_ty, g_body);
        let decls = Declarations::new();
        // Lenient mode accepts g…
        assert!(Typechecker::new(&decls).check_closed(&g).is_ok());
        // …strict mode rejects it at the `with` site.
        let err = Typechecker::new(&decls)
            .strict()
            .check_closed(&g)
            .unwrap_err();
        assert!(matches!(err, TypeError::Coherence(_)), "got {err:?}");
    }

    #[test]
    fn strict_mode_rejects_unstable_free_variable_queries() {
        // The extended report's incoherent program: inside
        // rule(∀b. b→b), a nearer Int→Int rule shadows the generic
        // rule once b = Int.
        let outer_ty = RuleType::new(vec![v("b")], vec![], Type::arrow(tv("b"), tv("b")));
        let id_poly_ty = RuleType::new(vec![v("c")], vec![], Type::arrow(tv("c"), tv("c")));
        let id_poly = Expr::rule_abs(id_poly_ty.clone(), Expr::lam("x", tv("c"), Expr::var("x")));
        let inc = Expr::lam(
            "n",
            Type::Int,
            Expr::binop(BinOp::Add, Expr::var("n"), Expr::Int(1)),
        );
        // implicit {id_poly} in implicit {inc} in ?(b → b)
        let inner = Expr::implicit(
            vec![(inc, Type::arrow(Type::Int, Type::Int).promote())],
            Expr::query_simple(Type::arrow(tv("b"), tv("b"))),
            Type::arrow(tv("b"), tv("b")),
        );
        let body = Expr::implicit(
            vec![(id_poly, id_poly_ty)],
            inner,
            Type::arrow(tv("b"), tv("b")),
        );
        let incoherent = Expr::rule_abs(outer_ty.clone(), body.clone());
        let decls = Declarations::new();
        // Lenient mode accepts (resolution statically picks inc? no —
        // Int→Int does not match b→b with b rigid, so the generic
        // rule in the outer frame wins).
        assert!(Typechecker::new(&decls).check_closed(&incoherent).is_ok());
        let err = Typechecker::new(&decls)
            .strict()
            .check_closed(&incoherent)
            .unwrap_err();
        assert!(
            matches!(
                err,
                TypeError::Coherence(crate::coherence::CoherenceError::UnstableQuery { .. })
            ),
            "got {err:?}"
        );
        // The *coherent* variant (no nearer monomorphic rule) passes.
        let coherent_body = Expr::implicit(
            vec![(
                Expr::rule_abs(
                    RuleType::new(vec![v("d")], vec![], Type::arrow(tv("d"), tv("d"))),
                    Expr::lam("x", tv("d"), Expr::var("x")),
                ),
                RuleType::new(vec![v("d")], vec![], Type::arrow(tv("d"), tv("d"))),
            )],
            Expr::query_simple(Type::arrow(tv("b"), tv("b"))),
            Type::arrow(tv("b"), tv("b")),
        );
        let coherent = Expr::rule_abs(outer_ty, coherent_body);
        assert!(Typechecker::new(&decls)
            .strict()
            .check_closed(&coherent)
            .is_ok());
    }

    #[test]
    fn eq_on_compound_types_rejected() {
        let e = Expr::binop(
            BinOp::Eq,
            Expr::pair(Expr::Int(1), Expr::Int(2)),
            Expr::pair(Expr::Int(1), Expr::Int(2)),
        );
        assert!(check(&e).is_err());
    }
}
