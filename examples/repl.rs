//! An interactive REPL for both languages.
//!
//! ```text
//! cargo run --example repl            # core λ⇒ syntax
//! cargo run --example repl -- source  # §5 source language
//! ```
//!
//! Each input line is parsed, type-checked (resolving all queries),
//! elaborated to System F, evaluated under both semantics, and the
//! results are printed. Commands:
//!
//! * `:type EXPR` — show the type only;
//! * `:elab EXPR` — show the System F elaboration;
//! * `:quit` — exit.

use std::io::{BufRead, Write};

use implicit_calculus::prelude::*;

fn main() {
    let mode_source = std::env::args().any(|a| a == "source");
    println!(
        "implicit-calculus REPL ({} syntax). :type e, :elab e, :quit.",
        if mode_source { "source" } else { "core λ⇒" }
    );
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("λ⇒> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        let (cmd, src) = if let Some(rest) = line.strip_prefix(":type ") {
            ("type", rest)
        } else if let Some(rest) = line.strip_prefix(":elab ") {
            ("elab", rest)
        } else {
            ("eval", line)
        };
        if mode_source {
            run_source(cmd, src);
        } else {
            run_core(cmd, src);
        }
    }
}

fn run_core(cmd: &str, src: &str) {
    let (decls, expr) = match parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return;
        }
    };
    dispatch(cmd, &decls, &expr);
}

fn run_source(cmd: &str, src: &str) {
    match implicit_source::compile(src) {
        Ok(compiled) => dispatch(cmd, &compiled.decls, &compiled.core),
        Err(e) => eprintln!("{e}"),
    }
}

fn dispatch(cmd: &str, decls: &Declarations, expr: &implicit_core::syntax::Expr) {
    match cmd {
        "type" => match Typechecker::new(decls).check_closed(expr) {
            Ok(t) => println!(" : {t}"),
            Err(e) => eprintln!("type error: {e}"),
        },
        "elab" => match elaborate(decls, expr) {
            Ok((t, fe)) => println!(" : {t}\n = {fe}"),
            Err(e) => eprintln!("elaboration error: {e}"),
        },
        _ => match implicit_elab::run(decls, expr) {
            Ok(out) => {
                let opsem = implicit_opsem::eval(decls, expr)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|e| format!("opsem error: {e}"));
                println!(" : {}", out.source_type);
                println!(" = {}   (opsem: {opsem})", out.value);
            }
            Err(e) => eprintln!("error: {e}"),
        },
    }
}
