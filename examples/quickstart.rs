//! Quickstart: the implicit calculus in five minutes.
//!
//! Builds the paper's §2 examples through the public API, shows the
//! resolution derivation, the System F elaboration, and evaluates the
//! program under both semantics.
//!
//! Run with `cargo run --example quickstart`.

use implicit_calculus::prelude::*;
use implicit_core::env::ImplicitEnv;
use implicit_core::resolve::{Premise, Resolution};

fn main() {
    let decls = Declarations::new();

    // ----------------------------------------------------------
    // 1. Fetching values by type (§2).
    // ----------------------------------------------------------
    let e1 =
        parse_expr("implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool")
            .expect("parses");
    println!("program   : {e1}");

    let ty = Typechecker::new(&decls).check_closed(&e1).expect("types");
    println!("type      : {ty}");

    let out = implicit_elab::run(&decls, &e1).expect("runs");
    println!("elaborated: {}", out.target);
    println!("value     : {}\n", out.value);

    // ----------------------------------------------------------
    // 2. Recursive resolution with a polymorphic rule (§3.2).
    // ----------------------------------------------------------
    let mut env = ImplicitEnv::new();
    env.push(vec![parse_rule_type("Int").unwrap()]);
    env.push(vec![parse_rule_type("forall a. {a} => a * a").unwrap()]);
    let query = parse_rule_type("(Int * Int) * (Int * Int)").unwrap();
    let derivation = resolve(&env, &query, &ResolutionPolicy::paper()).expect("resolves");
    println!("query     : {query}");
    println!("derivation ({} steps):", derivation.steps());
    print_derivation(&derivation, 1);

    // ----------------------------------------------------------
    // 3. Partial resolution (§3.2, Example 3).
    // ----------------------------------------------------------
    let mut env2 = ImplicitEnv::new();
    env2.push(vec![parse_rule_type("Bool").unwrap()]);
    env2.push(vec![
        parse_rule_type("forall a. {Bool, a} => a * a").unwrap()
    ]);
    let ho_query = parse_rule_type("{Int} => Int * Int").unwrap();
    let partial = resolve(&env2, &ho_query, &ResolutionPolicy::paper()).expect("resolves");
    println!("\nhigher-order query : {ho_query}");
    println!("partial resolution : {}", partial.is_partial());
    print_derivation(&partial, 1);

    // ----------------------------------------------------------
    // 4. Both semantics agree.
    // ----------------------------------------------------------
    let e2 = parse_expr(
        "implicit {3 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
         in ?((Int * Int) * (Int * Int)) : (Int * Int) * (Int * Int)",
    )
    .expect("parses");
    let via_elab = implicit_elab::run(&decls, &e2).expect("elaborates");
    let via_opsem = implicit_opsem::eval(&decls, &e2).expect("interprets");
    println!("\nelaboration semantics : {}", via_elab.value);
    println!("operational semantics : {via_opsem}");
    assert_eq!(via_elab.value.to_string(), via_opsem.to_string());
    println!("semantics agree ✓");
}

fn print_derivation(res: &Resolution, indent: usize) {
    let pad = "  ".repeat(indent);
    println!(
        "{pad}{} resolved by {:?} (type args: [{}])",
        res.query,
        res.rule,
        res.type_args
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for p in &res.premises {
        match p {
            Premise::Assumed { rho, .. } => {
                println!("{pad}  premise {rho} — assumed (partial resolution)");
            }
            Premise::Derived(inner) => print_derivation(inner, indent + 1),
        }
    }
}
