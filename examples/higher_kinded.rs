//! Type-constructor polymorphism — the §5.2 extension that §1's
//! motivating example demands.
//!
//! The paper opens with the `Perfect f a` instance
//!
//! ```text
//! instance (∀β. Show β ⇒ Show (f β), Show α) ⇒ Show (Perfect f α)
//! ```
//!
//! whose premise is *higher-order* (it assumes a rule that itself has
//! an assumption) **and** quantifies over a type *constructor* `f`.
//! Haskell rejects it; the implicit calculus was designed so that
//! such rules "arise naturally". This example runs the same shape:
//! one rule
//!
//! ```text
//! showNested : ∀f a. {∀b. {b → String} ⇒ f b → String, a → String}
//!                ⇒ f (f a) → String
//! ```
//!
//! renders *nested containers for any constructor `f`* — instantiated
//! once with the built-in `List`, once with a user interface `Box`,
//! by changing nothing but the implicit scope.
//!
//! Run with `cargo run --example higher_kinded`.

const PROGRAM: &str = r#"
interface Box a = { unbox : a }

let show : forall a. {a -> String} => a -> String = ? in
let showInt' : Int -> String = \n. showInt n in

let showList : forall a. {a -> String} => [a] -> String =
  fix go : [a] -> String. \xs.
    case xs of
      nil -> ""
    | h :: t -> (case t of nil -> show h | h2 :: t2 -> show h ++ "," ++ go t)
in
let showBox : forall a. {a -> String} => Box a -> String =
  \b. "Box(" ++ show (unbox b) ++ ")"
in

let showNested : forall f a. {forall b. {b -> String} => f b -> String, a -> String}
                   => f (f a) -> String = ? in

implicit showInt' in
  ( implicit showList in showNested ((1 :: 2 :: nil) :: (3 :: nil) :: nil)
  , implicit showBox in showNested (Box { unbox = Box { unbox = 7 } }) )
"#;

fn main() {
    println!("source program:\n{PROGRAM}");

    let compiled = implicit_source::compile(PROGRAM).expect("compiles");
    println!("program type    : {}", compiled.ty);

    // The encoding instantiates showNested's constructor quantifier
    // explicitly — find the constructor type applications in the core
    // term.
    let core_text = compiled.core.to_string();
    assert!(
        core_text.contains("[List, Int]") || core_text.contains("[List,"),
        "expected a List-constructor instantiation in the encoding"
    );
    assert!(
        core_text.contains("[Box,") || core_text.contains("[Box, Int]"),
        "expected a Box-constructor instantiation in the encoding"
    );
    println!("constructor instantiations found in the λ⇒ encoding ✓");

    let out = implicit_elab::run(&compiled.decls, &compiled.core).expect("runs");
    println!("via System F    : {}", out.value);
    let v = implicit_opsem::eval(&compiled.decls, &compiled.core).expect("interprets");
    println!("via opsem       : {v}");

    assert_eq!(out.value.to_string(), "(\"1,2,3\", \"Box(Box(7))\")");
    assert_eq!(v.to_string(), "(\"1,2,3\", \"Box(Box(7))\")");
    println!("\nresult (\"1,2,3\", \"Box(Box(7))\") — one rule, two constructors ✓");
}
