//! Scoping and overlapping rules (§2 and the companion note).
//!
//! * Nested scoping: the lexically nearest rule wins, so the same
//!   query returns different values under different scopes (the
//!   paper's `2` vs `1` example).
//! * Overlap within a single rule set is rejected under the paper's
//!   `no_overlap` condition, but the companion note's *most specific*
//!   policy can disambiguate when one rule's head is an instance of
//!   the other's.
//!
//! Run with `cargo run --example scoping_overlap`.

use implicit_calculus::prelude::*;
use implicit_core::env::{ImplicitEnv, OverlapPolicy};

fn main() {
    let decls = Declarations::new();

    // ----------------------------------------------------------
    // Lexical scoping (E6): 2, not 1.
    // ----------------------------------------------------------
    let e6 = parse_expr(
        "implicit {1 : Int} in \
           (implicit {true : Bool, rule ({Bool} => Int) (if ?(Bool) then 2 else 0) : {Bool} => Int} \
            in ?(Int) : Int) : Int",
    )
    .unwrap();
    let v6 = implicit_elab::run(&decls, &e6).unwrap().value;
    println!("nested scoping (paper §2): ?Int = {v6}  (the nearer Bool⇒Int rule wins)");
    assert_eq!(v6.to_string(), "2");

    // ----------------------------------------------------------
    // Overlap across scopes (E7): nearest match decides.
    // ----------------------------------------------------------
    let inner_specific = parse_expr(
        "implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in \
           (implicit {(\\n : Int. n + 1) : Int -> Int} in ?(Int -> Int) 1 : Int) : Int",
    )
    .unwrap();
    let inner_generic = parse_expr(
        "implicit {(\\n : Int. n + 1) : Int -> Int} in \
           (implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in ?(Int -> Int) 1 : Int) : Int",
    )
    .unwrap();
    let v_specific = implicit_elab::run(&decls, &inner_specific).unwrap().value;
    let v_generic = implicit_elab::run(&decls, &inner_generic).unwrap().value;
    println!("overlap via nesting: inc nearest → {v_specific}, id nearest → {v_generic}");
    assert_eq!(v_specific.to_string(), "2");
    assert_eq!(v_generic.to_string(), "1");

    // ----------------------------------------------------------
    // Overlap inside one rule set: forbidden by default, resolved
    // by the most-specific policy when possible.
    // ----------------------------------------------------------
    let generic = parse_rule_type("forall a. a -> a").unwrap();
    let specific = parse_rule_type("Int -> Int").unwrap();
    let env = ImplicitEnv::with_frame(vec![generic, specific]);
    let target = parse_type("Int -> Int").unwrap();

    let forbidden = env.lookup(&target, OverlapPolicy::Forbid);
    println!(
        "one set, paper policy      : {}",
        forbidden
            .as_ref()
            .map(|_| "resolved".to_owned())
            .unwrap_or_else(|e| format!("rejected — {e}"))
    );
    assert!(forbidden.is_err());

    let most_specific = env.lookup(&target, OverlapPolicy::MostSpecific).unwrap();
    println!(
        "one set, most-specific     : picked `{}` (companion note)",
        most_specific.rule
    );

    // Incomparable overlap stays rejected even under most-specific.
    let r1 = parse_rule_type("forall a. a -> Int").unwrap();
    let r2 = parse_rule_type("forall a. Int -> a").unwrap();
    let env2 = ImplicitEnv::with_frame(vec![r1, r2]);
    let still_bad = env2.lookup(&target, OverlapPolicy::MostSpecific);
    println!(
        "incomparable overlap       : {}",
        still_bad
            .as_ref()
            .map(|_| "resolved".to_owned())
            .unwrap_or_else(|e| format!("rejected — {e}"))
    );
    assert!(still_bad.is_err());

    // ----------------------------------------------------------
    // Coherence conditions (companion note).
    // ----------------------------------------------------------
    let ctx = [
        parse_rule_type("forall a. a -> Int").unwrap(),
        parse_rule_type("forall a. Int -> a").unwrap(),
    ];
    match implicit_core::coherence::unique_instances(&ctx) {
        Err(err) => println!("coherence analysis         : {err}"),
        Ok(()) => unreachable!("these rules overlap"),
    }
    println!("\nall scoping/overlap behaviors match the paper ✓");
}
