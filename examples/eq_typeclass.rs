//! The paper's Figure "Encoding the Equality Type Class" (§5), run
//! end to end through the source language.
//!
//! An `Eq` interface plays the role of Haskell's `Eq` class; nested
//! `implicit` scopes swap the `Int` instance locally — something
//! global type classes cannot do. The expected result, as in the
//! paper, is `(false, true)`:
//!
//! * with `eqInt1` (structural equality), `(4,true) ≡ (8,true)` is
//!   false;
//! * with the overriding `eqInt2` (equal parity), it is true.
//!
//! Run with `cargo run --example eq_typeclass`.

use implicit_source::compile;

const PROGRAM: &str = r#"
interface Eq a = { eq : a -> a -> Bool }

let eqv : forall a. {Eq a} => a -> a -> Bool = eq ? in
let isEven : Int -> Bool = \x. x % 2 == 0 in

let eqInt1 : Eq Int  = Eq { eq = \x. \y. x == y } in
let eqInt2 : Eq Int  = Eq { eq = \x. \y. isEven x && isEven y } in
let eqBool : Eq Bool = Eq { eq = \x. \y. x == y } in
let eqPair : forall a b. {Eq a, Eq b} => Eq (a * b) =
  Eq { eq = \x. \y. eqv (fst x) (fst y) && eqv (snd x) (snd y) } in

let p1 : Int * Bool = (4, true) in
let p2 : Int * Bool = (8, true) in

implicit eqInt1, eqBool, eqPair in
  (eqv p1 p2, implicit eqInt2 in eqv p1 p2)
"#;

fn main() {
    println!("source program:\n{PROGRAM}");

    let compiled = compile(PROGRAM).expect("the paper's program compiles");
    println!("encoded λ⇒ type : {}", compiled.ty);

    // Evaluate via the elaboration semantics…
    let out =
        implicit_elab::run(&compiled.decls, &compiled.core).expect("elaborates and evaluates");
    println!("via System F    : {}", out.value);

    // …and via the direct operational semantics.
    let v = implicit_opsem::eval(&compiled.decls, &compiled.core).expect("interprets");
    println!("via opsem       : {v}");

    assert_eq!(out.value.to_string(), "(false, true)");
    assert_eq!(v.to_string(), "(false, true)");
    println!("\nresult (false, true) matches the paper ✓");
}
