//! The paper's §1 motivating example, verbatim in shape: the
//! non-regular datatype
//!
//! ```text
//! data Perfect f a = Nil | Cons a (Perfect f (f a))
//! ```
//!
//! and the instance Haskell cannot express,
//!
//! ```text
//! instance (∀β. Show β ⇒ Show (f β), Show α) ⇒ Show (Perfect f α)
//! ```
//!
//! whose premise is **higher-order** (it assumes a rule that itself
//! has an assumption) and polymorphic in β. Here it is a `letrec`
//! with a higher-kinded scheme; the recursive call
//! `showPerfect (rest : Perfect f (f a))` is *polymorphic recursion*,
//! and its implicit context is re-derived by resolution at every
//! depth — the element shower for `f a` is built from the container
//! rule applied to the shower for `a`.
//!
//! Run with `cargo run --example perfect_tree`.

const PROGRAM: &str = r#"
data Perfect f a = PNil | PCons a (Perfect f (f a))

interface Twice a = { front : a, back : a }

let show : forall a. {a -> String} => a -> String = ? in
let showInt' : Int -> String = \n. showInt n in
let showTwice : forall a. {a -> String} => Twice a -> String =
  \t. "<" ++ show (front t) ++ "," ++ show (back t) ++ ">" in

-- §1's instance: a higher-kinded, higher-order, recursive rule.
letrec showPerfect : forall f a.
    {forall b. {b -> String} => f b -> String, a -> String}
      => Perfect f a -> String =
  \t. match t {
        PNil -> "Nil"
      | PCons x rest -> show x ++ " :: " ++ showPerfect rest
      }
in

let deep : Twice (Twice Int) =
  Twice { front = Twice { front = 2, back = 3 },
          back  = Twice { front = 4, back = 5 } } in
let t : Perfect Twice Int =
  PCons 1 (PCons (Twice { front = 6, back = 7 }) (PCons deep PNil)) in

implicit showInt', showTwice in showPerfect t
"#;

fn main() {
    println!("source program:\n{PROGRAM}");

    let compiled = implicit_source::compile(PROGRAM).expect("the §1 example compiles");
    println!("program type    : {}", compiled.ty);

    let data = compiled
        .decls
        .lookup_data(implicit_core::Symbol::intern("Perfect"))
        .expect("Perfect declared");
    let kinds: Vec<String> = data
        .params
        .iter()
        .map(|(v, k)| {
            let kind = if *k == 0 {
                "*".to_owned()
            } else {
                format!("{}*", "* -> ".repeat(*k))
            };
            format!("{v} : {kind}")
        })
        .collect();
    println!("inferred kinds  : Perfect ({})", kinds.join(", "));

    let out = implicit_elab::run(&compiled.decls, &compiled.core).expect("runs");
    println!("via System F    : {}", out.value);
    let v = implicit_opsem::eval(&compiled.decls, &compiled.core).expect("interprets");
    println!("via opsem       : {v}");

    assert_eq!(
        out.value.to_string(),
        "\"1 :: <6,7> :: <<2,3>,<4,5>> :: Nil\""
    );
    assert_eq!(v.to_string(), out.value.to_string());
    println!(
        "\nthe instance Haskell rejects (\"no higher-order rules\") runs here, \
         with polymorphic recursion re-resolving the context at every depth ✓"
    );
}
