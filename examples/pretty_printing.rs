//! The §5 higher-order-rules example: implicit instantiation working
//! for *any* type — plain functions model a structural pretty-printer
//! concept, and a **higher-order rule** (`{Int → String} ⇒ [Int] →
//! String`) is abstracted over and supplied in two different ways.
//!
//! The paper's expected result is `("1,2,3", "1 2 3")`: the contexts
//! of the two calls to `o` control how the list is rendered.
//!
//! Run with `cargo run --example pretty_printing`.

use implicit_source::compile;

const PROGRAM: &str = r#"
let show : forall a. {a -> String} => a -> String = ? in

let showInt' : Int -> String = \n. showInt n in

let comma : forall a. {a -> String} => [a] -> String =
  fix go : [a] -> String. \xs.
    case xs of
      nil -> ""
    | h :: t -> (case t of nil -> show h | h2 :: t2 -> show h ++ "," ++ go t)
in
let space : forall a. {a -> String} => [a] -> String =
  fix go : [a] -> String. \xs.
    case xs of
      nil -> ""
    | h :: t -> (case t of nil -> show h | h2 :: t2 -> show h ++ " " ++ go t)
in

let o : {Int -> String, {Int -> String} => [Int] -> String} => String =
  show (1 :: 2 :: 3 :: nil)
in

implicit showInt' in
  (implicit comma in o, implicit space in o)
"#;

fn main() {
    println!("source program:\n{PROGRAM}");

    let compiled = compile(PROGRAM).expect("the paper's program compiles");
    println!("encoded λ⇒ type : {}", compiled.ty);

    let out =
        implicit_elab::run(&compiled.decls, &compiled.core).expect("elaborates and evaluates");
    println!("via System F    : {}", out.value);

    let v = implicit_opsem::eval(&compiled.decls, &compiled.core).expect("interprets");
    println!("via opsem       : {v}");

    assert_eq!(out.value.to_string(), "(\"1,2,3\", \"1 2 3\")");
    assert_eq!(v.to_string(), "(\"1,2,3\", \"1 2 3\")");
    println!("\nresult (\"1,2,3\", \"1 2 3\") matches the paper ✓");
}
